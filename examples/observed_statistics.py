"""Observation-driven relocation: decide from cid-annotated results only.

The paper's strategies are defined over quantities a peer can observe
locally: every query result is annotated with the cluster id (cid) that
provided it, and every peer tracks how much it serves queries coming from
each cluster.  This example runs one observation period ``T`` through the
overlay simulator and then lets peers decide with the *observed* variants of
the selfish and altruistic strategies, comparing the decisions against the
exact (global-knowledge) variants.

It also shows what happens when routing is restricted (probe-k router): the
observed recall under-estimates clusters the query never reached.

Run with::

    python examples/observed_statistics.py
"""

from __future__ import annotations

from repro import (
    SCENARIO_SAME_CATEGORY,
    BroadcastRouter,
    ClusterGame,
    ExperimentConfig,
    OverlaySimulator,
    ProbeKRouter,
    build_scenario,
    initial_configuration,
)
from repro.strategies import AltruisticStrategy, SelfishStrategy, StrategyContext


def run_period(data, configuration, router_factory):
    simulator = OverlaySimulator(
        data.network, configuration, router=router_factory(data.network)
    )
    report = simulator.run_period()
    return simulator, report


def main() -> None:
    config = ExperimentConfig.quick()
    data = build_scenario(SCENARIO_SAME_CATEGORY, config.scenario)
    configuration = initial_configuration(data, "random", seed=23)
    cost_model = data.network.cost_model(theta=config.theta(), alpha=config.alpha)
    game = ClusterGame(cost_model, configuration, allow_new_clusters=False)

    simulator, report = run_period(data, configuration, lambda network: BroadcastRouter(network))
    print(
        f"period with broadcast routing: {report.queries_routed} queries routed, "
        f"{report.results_returned} results, {sum(report.messages.values())} messages"
    )

    context = StrategyContext(game=game, statistics=simulator.statistics)
    exact_selfish = SelfishStrategy(mode="exact")
    observed_selfish = SelfishStrategy(mode="observed")
    exact_altruistic = AltruisticStrategy(mode="exact")
    observed_altruistic = AltruisticStrategy(mode="observed")

    agree_selfish = 0
    agree_altruistic = 0
    peer_ids = data.peer_ids()
    for peer_id in peer_ids:
        if (
            exact_selfish.propose(peer_id, context).target_cluster
            == observed_selfish.propose(peer_id, context).target_cluster
        ):
            agree_selfish += 1
        if (
            exact_altruistic.propose(peer_id, context).target_cluster
            == observed_altruistic.propose(peer_id, context).target_cluster
        ):
            agree_altruistic += 1
    print(
        f"observed vs exact target agreement (broadcast): "
        f"selfish {agree_selfish}/{len(peer_ids)}, altruistic {agree_altruistic}/{len(peer_ids)}"
    )

    simulator_k, report_k = run_period(
        data, configuration, lambda network: ProbeKRouter(network, k=2)
    )
    context_k = StrategyContext(game=game, statistics=simulator_k.statistics)
    agree_probe = sum(
        1
        for peer_id in peer_ids
        if observed_selfish.propose(peer_id, context_k).target_cluster
        == exact_selfish.propose(peer_id, context).target_cluster
    )
    print(
        f"period with probe-2 routing: {sum(report_k.messages.values())} messages "
        f"(vs {sum(report.messages.values())} for broadcast); "
        f"selfish agreement drops to {agree_probe}/{len(peer_ids)}"
    )


if __name__ == "__main__":
    main()
