"""Alpha sensitivity: when is it worth joining a bigger cluster?

Reproduces the question behind Figure 4 interactively: a single peer's query
workload gradually drifts towards a topic hosted by a larger cluster.  The
membership-cost weight ``alpha`` controls how expensive joining that larger
cluster is, so the drift fraction at which relocation becomes worthwhile
shifts right as ``alpha`` grows.

Run with::

    python examples/alpha_sensitivity.py
"""

from __future__ import annotations

from repro.experiments import ExperimentConfig, run_figure4


def main() -> None:
    config = ExperimentConfig.quick()
    fractions = tuple(round(0.1 * step, 1) for step in range(11))
    result = run_figure4(config, alphas=(0.0, 1.0, 2.0), fractions=fractions)

    print("individual cost of the observed peer (columns: alpha)")
    header = "fraction  " + "  ".join(f"alpha={curve.alpha:g}" for curve in result.curves)
    print(header)
    for fraction in fractions:
        row = [f"{fraction:8.1f}"]
        for curve in result.curves:
            row.append(f"{curve.series()[fraction]:9.3f}")
        print("  ".join(row))

    for curve in result.curves:
        if curve.relocation_fraction is None:
            print(f"alpha={curve.alpha:g}: never relocates within the sweep")
        else:
            print(
                f"alpha={curve.alpha:g}: relocation first pays off at "
                f"{curve.relocation_fraction:.0%} workload change"
            )


if __name__ == "__main__":
    main()
