"""Cluster discovery: do the local strategies rediscover the topic structure?

The paper observes (Section 4.1) that when the data distribution permits it,
the relocation strategies can be used to *discover* clusters, not just to
maintain them.  This example starts from a random assignment of peers to
clusters and compares three ways of reorganising the overlay:

* the selfish relocation strategy,
* the altruistic relocation strategy,
* the centralised global re-clustering baseline (k-medoids over content).

For each it reports the normalised social cost, the number of clusters and
the cluster purity against the ground-truth document categories (which the
algorithms themselves never see).

Run with::

    python examples/cluster_discovery.py
"""

from __future__ import annotations

from repro import (
    SCENARIO_SAME_CATEGORY,
    ExperimentConfig,
    GlobalReclustering,
    SessionConfig,
    Simulation,
    build_scenario,
    initial_configuration,
)
from repro.analysis import cluster_purity


def main() -> None:
    config = ExperimentConfig.quick()
    data = build_scenario(SCENARIO_SAME_CATEGORY, config.scenario)
    cost_model = data.network.cost_model(theta=config.theta(), alpha=config.alpha)

    baseline_configuration = initial_configuration(data, "random", seed=3)
    print("starting point (random clusters):")
    print(
        "  social cost",
        round(cost_model.social_cost(baseline_configuration, normalized=True), 3),
        "| purity",
        round(cluster_purity(baseline_configuration, data.data_categories), 3),
    )

    for strategy_name in ("selfish", "altruistic"):
        simulation = Simulation.from_config(
            SessionConfig.from_experiment_config(config, strategy=strategy_name),
            data=data,
            configuration=initial_configuration(data, "random", seed=3),
        )
        result = simulation.run()
        print(f"{strategy_name} strategy:")
        print(
            f"  converged={result.converged} rounds={result.rounds}"
            f" clusters={result.cluster_count}"
        )
        print(
            "  social cost",
            round(result.final_social_cost, 3),
            "| purity",
            round(result.purity, 3),
        )

    reclustering = GlobalReclustering(num_clusters=config.scenario.num_categories, seed=5)
    reclustered = reclustering.recluster(data.network)
    print("global re-clustering baseline:")
    print(
        "  social cost",
        round(cost_model.social_cost(reclustered.configuration, normalized=True), 3),
        "| purity",
        round(cluster_purity(reclustered.configuration, data.data_categories), 3),
        "| messages",
        reclustered.messages,
    )


if __name__ == "__main__":
    main()
