"""Quickstart: form clusters with the selfish relocation strategy.

Builds a small synthetic scenario (peers whose data and queries fall into the
same category), starts from the worst possible overlay (every peer alone in
its own cluster) and runs the reformulation protocol with the selfish
strategy until no peer wants to move any more.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    SCENARIO_SAME_CATEGORY,
    ExperimentConfig,
    ReformulationProtocol,
    SelfishStrategy,
    build_scenario,
    initial_configuration,
)


def main() -> None:
    config = ExperimentConfig.quick()
    data = build_scenario(SCENARIO_SAME_CATEGORY, config.scenario)
    configuration = initial_configuration(data, "singletons")
    cost_model = data.network.cost_model(theta=config.theta(), alpha=config.alpha)

    print(f"peers: {len(data.network)}, categories: {config.scenario.num_categories}")
    print(
        "initial social cost:",
        round(cost_model.social_cost(configuration, normalized=True), 3),
        f"({configuration.num_nonempty_clusters()} clusters)",
    )

    protocol = ReformulationProtocol(cost_model, configuration, SelfishStrategy())
    result = protocol.run(max_rounds=config.max_rounds)

    print(f"converged: {result.converged} after {result.num_rounds} rounds")
    for round_index, cost in enumerate(result.social_cost_trace):
        print(f"  round {round_index:2d}: social cost = {cost:.3f}")
    print(
        "final:",
        configuration.num_nonempty_clusters(),
        "clusters, social cost",
        round(result.final_social_cost, 3),
        "workload cost",
        round(result.final_workload_cost, 3),
    )


if __name__ == "__main__":
    main()
