"""Quickstart: form clusters with the selfish relocation strategy.

Builds a small synthetic scenario (peers whose data and queries fall into the
same category), starts from the worst possible overlay (every peer alone in
its own cluster) and runs the reformulation protocol with the selfish
strategy until no peer wants to move any more.

The run is driven through the :class:`repro.Simulation` facade: one
declarative :class:`repro.SessionConfig` selects every component (scenario,
strategy, initial configuration, theta, scale) by registry name, and the
per-round costs are observed live through the event hooks instead of being
read from post-hoc trace lists.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import SessionConfig, Simulation


def main() -> None:
    simulation = Simulation.from_config(
        SessionConfig(
            scenario="same_category",
            strategy="selfish",
            scale="quick",
            initial="singletons",
        )
    )

    print(
        f"peers: {len(simulation.network)}, "
        f"categories: {simulation.experiment_config.scenario.num_categories}"
    )
    print(
        "initial social cost:",
        round(simulation.cost_model.social_cost(simulation.configuration, normalized=True), 3),
        f"({simulation.configuration.num_nonempty_clusters()} clusters)",
    )

    simulation.on_round_end(
        lambda event: print(f"  round {event.round_number:2d}: social cost = {event.social_cost:.3f}")
    )
    result = simulation.run()

    print(f"converged: {result.converged} after {result.rounds} rounds")
    print(
        "final:",
        result.cluster_count,
        "clusters, social cost",
        round(result.final_social_cost, 3),
        "workload cost",
        round(result.final_workload_cost, 3),
    )
    print("as JSON:", result.to_json(indent=None)[:120], "...")


# Low-level API: the facade assembles exactly this, seed for seed.
def main_low_level() -> None:
    from repro import (
        SCENARIO_SAME_CATEGORY,
        ExperimentConfig,
        ReformulationProtocol,
        SelfishStrategy,
        build_scenario,
        initial_configuration,
    )

    config = ExperimentConfig.quick()
    data = build_scenario(SCENARIO_SAME_CATEGORY, config.scenario)
    configuration = initial_configuration(data, "singletons")
    cost_model = data.network.cost_model(theta=config.theta(), alpha=config.alpha)
    protocol = ReformulationProtocol(cost_model, configuration, SelfishStrategy())
    result = protocol.run(max_rounds=config.max_rounds)
    print(f"low-level run: converged={result.converged}, "
          f"social cost={result.final_social_cost:.3f}")


if __name__ == "__main__":
    main()
    main_low_level()
