"""Maintenance under change: workload drift, content drift and churn.

Starts from the "good" clustering of the same-category scenario (one cluster
per topic), then applies three kinds of change the paper discusses:

1. a workload update — half of one cluster's peers become interested in a
   different topic,
2. a content update — another cluster's peers replace their data with
   documents of a different topic,
3. churn — a handful of peers leave and a new peer joins.

After each change it shows the social cost before maintenance, after running
the periodic reformulation protocol (selfish strategy, ε = 0.001), and what a
"do nothing" baseline would leave behind.

Run with::

    python examples/churn_adaptation.py
"""

from __future__ import annotations

import random

from repro import (
    SCENARIO_SAME_CATEGORY,
    ExperimentConfig,
    Peer,
    ReformulationProtocol,
    SelfishStrategy,
    build_scenario,
    category_configuration,
)
from repro.dynamics import add_peer, random_departures, update_content_full, update_workload_full


def social_cost(data, configuration, config):
    cost_model = data.network.cost_model(theta=config.theta(), alpha=config.alpha)
    return cost_model.social_cost(configuration, normalized=True), cost_model


def maintain(data, configuration, config):
    cost_model = data.network.cost_model(theta=config.theta(), alpha=config.alpha)
    protocol = ReformulationProtocol(
        cost_model,
        configuration,
        SelfishStrategy(),
        gain_threshold=config.maintenance_gain_threshold,
        allow_cluster_creation=False,
        restrict_to_nonempty=True,
    )
    result = protocol.run(max_rounds=config.max_rounds)
    return result


def main() -> None:
    config = ExperimentConfig.quick().with_scenario(uniform_workload=True)
    data = build_scenario(SCENARIO_SAME_CATEGORY, config.scenario)
    configuration = category_configuration(data)
    rng = random.Random(17)

    cost, _model = social_cost(data, configuration, config)
    print("initial (one cluster per topic) social cost:", round(cost, 3))

    # 1. workload drift in the first cluster.
    first_cluster = configuration.nonempty_clusters()[0]
    members = sorted(configuration.members(first_cluster), key=repr)
    victims = members[: len(members) // 2]
    categories = sorted({c for c in data.data_categories.values() if c})
    update_workload_full(data.network, victims, categories[-1], data.generator, rng=rng)
    cost_before, _model = social_cost(data, configuration, config)
    result = maintain(data, configuration, config)
    cost_after, _model = social_cost(data, configuration, config)
    print(
        "after workload drift: before maintenance",
        round(cost_before, 3),
        "| after",
        round(cost_after, 3),
        f"({result.total_moves} moves)",
    )

    # 2. content drift in the second cluster.
    second_cluster = configuration.nonempty_clusters()[1]
    members = sorted(configuration.members(second_cluster), key=repr)
    update_content_full(data.network, members[:3], categories[0], data.generator, rng=rng)
    cost_before, _model = social_cost(data, configuration, config)
    result = maintain(data, configuration, config)
    cost_after, _model = social_cost(data, configuration, config)
    print(
        "after content drift: before maintenance",
        round(cost_before, 3),
        "| after",
        round(cost_after, 3),
        f"({result.total_moves} moves)",
    )

    # 3. churn: three departures and one join.
    random_departures(data.network, configuration, 3, rng=rng)
    newcomer_workload = data.generator.generate_workload(categories[0], 4, rng=rng)
    newcomer = Peer(
        "newcomer",
        documents=data.generator.generate_documents(categories[0], 5, rng=rng),
        workload=newcomer_workload,
    )
    chosen = add_peer(data.network, configuration, newcomer)
    cost_before, _model = social_cost(data, configuration, config)
    result = maintain(data, configuration, config)
    cost_after, _model = social_cost(data, configuration, config)
    print(f"newcomer joined cluster {chosen!r}")
    print(
        "after churn: before maintenance",
        round(cost_before, 3),
        "| after",
        round(cost_after, 3),
        f"({result.total_moves} moves)",
    )


if __name__ == "__main__":
    main()
