"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
only so that editable installs work in offline environments whose setuptools
cannot build wheels (``pip install -e . --no-build-isolation --no-use-pep517``).
"""

from setuptools import setup

setup()
