"""Tests for the observation-period simulator."""

from __future__ import annotations

import pytest

from repro.core.queries import Query
from repro.overlay.routing import ProbeKRouter
from repro.overlay.simulator import OverlaySimulator


class TestRunPeriod:
    def test_routes_every_workload_occurrence(self, tiny_network, tiny_configuration):
        simulator = OverlaySimulator(tiny_network, tiny_configuration)
        report = simulator.run_period()
        assert report.queries_routed == 4  # alice 2 + bob 1 + carol 1
        assert report.messages.get("QueryMessage", 0) > 0

    def test_recall_trackers_match_exact_model_under_broadcast(
        self, tiny_network, tiny_configuration
    ):
        simulator = OverlaySimulator(tiny_network, tiny_configuration)
        simulator.run_period()
        model = tiny_network.recall_model()
        movies = Query(["movies"])
        alice_tracker = simulator.statistics["alice"].recall_tracker
        # alice's "movies" results: carol (c1) and bob (c2) hold one each.
        assert alice_tracker.cluster_recall(movies, "c1") == pytest.approx(
            model.recall(movies, "carol")
        )
        assert alice_tracker.cluster_recall(movies, "c2") == pytest.approx(
            model.recall(movies, "bob")
        )

    def test_contribution_trackers_record_issuer_clusters(
        self, tiny_network, tiny_configuration
    ):
        simulator = OverlaySimulator(tiny_network, tiny_configuration)
        simulator.run_period()
        # alice serves bob's "music" query (bob sits in c2) and nothing else.
        alice_contribution = simulator.statistics["alice"].contribution_tracker
        assert alice_contribution.contribution("c2") == pytest.approx(1.0)
        # carol serves alice's two "movies" queries (c1), her own (c1), and bob's music (c2).
        carol_contribution = simulator.statistics["carol"].contribution_tracker
        assert carol_contribution.contribution("c1") > carol_contribution.contribution("c2")

    def test_reset_statistics(self, tiny_network, tiny_configuration):
        simulator = OverlaySimulator(tiny_network, tiny_configuration)
        simulator.run_period()
        simulator.reset_statistics()
        assert simulator.statistics["alice"].recall_tracker.total_results() == 0

    def test_statistics_for_creates_on_demand(self, tiny_network, tiny_configuration):
        simulator = OverlaySimulator(tiny_network, tiny_configuration)
        stats = simulator.statistics_for("newcomer")
        assert stats.recall_tracker.total_results() == 0

    def test_custom_router_is_used(self, tiny_network, tiny_configuration):
        simulator = OverlaySimulator(
            tiny_network, tiny_configuration, router=ProbeKRouter(tiny_network, k=1)
        )
        report = simulator.run_period()
        # With k=1 every query reaches exactly one cluster.
        assert report.messages.get("QueryMessage", 0) == report.queries_routed
