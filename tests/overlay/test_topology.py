"""Tests for intra-cluster topologies and their induced theta functions."""

from __future__ import annotations

import pytest

from repro.core.theta import LinearTheta, LogarithmicTheta
from repro.overlay.topology import FullMeshTopology, RingTopology, StructuredTopology

ALL_TOPOLOGIES = [FullMeshTopology(), RingTopology(), StructuredTopology()]


class TestThetaMapping:
    def test_full_mesh_is_linear(self):
        assert isinstance(FullMeshTopology().theta(), LinearTheta)

    def test_structured_is_logarithmic(self):
        assert isinstance(StructuredTopology().theta(), LogarithmicTheta)

    def test_structured_cheaper_than_full_mesh_for_large_clusters(self):
        full = FullMeshTopology().theta()
        structured = StructuredTopology().theta()
        assert structured(128) < full(128)


class TestHopsAndMaintenance:
    @pytest.mark.parametrize("topology", ALL_TOPOLOGIES, ids=lambda t: t.name)
    def test_single_peer_cluster_needs_no_messages(self, topology):
        assert topology.lookup_hops(1) == 0
        assert topology.maintenance_messages(1) <= 1

    @pytest.mark.parametrize("topology", ALL_TOPOLOGIES, ids=lambda t: t.name)
    def test_hops_grow_with_size(self, topology):
        assert topology.lookup_hops(64) >= topology.lookup_hops(4)

    @pytest.mark.parametrize("topology", ALL_TOPOLOGIES, ids=lambda t: t.name)
    def test_negative_size_rejected(self, topology):
        with pytest.raises(ValueError):
            topology.lookup_hops(-1)

    def test_structured_lookup_is_logarithmic(self):
        assert StructuredTopology().lookup_hops(16) == 4

    def test_ring_join_touches_two_neighbours(self):
        assert RingTopology().maintenance_messages(10) == 2

    def test_full_mesh_join_touches_everyone(self):
        assert FullMeshTopology().maintenance_messages(10) == 9
