"""Tests for protocol messages and the message bus accounting."""

from __future__ import annotations

from repro.overlay.messages import (
    GainReportMessage,
    GrantMessage,
    MessageBus,
    QueryMessage,
    RelocationRequestMessage,
    ResultMessage,
)


class TestMessageKinds:
    def test_kind_is_class_name(self):
        assert QueryMessage(sender="a", receiver="b").kind == "QueryMessage"
        assert GrantMessage(sender="a", receiver="b").kind == "GrantMessage"

    def test_fields_are_carried(self):
        message = ResultMessage(
            sender="p", receiver="q", query="x", cluster_id="c1", result_count=4
        )
        assert message.cluster_id == "c1"
        assert message.result_count == 4

    def test_relocation_request_defaults(self):
        message = RelocationRequestMessage(sender="rep1", receiver="rep2")
        assert message.gain == 0.0
        assert message.peer_id is None


class TestMessageBus:
    def test_counts_by_kind(self):
        bus = MessageBus()
        bus.publish(QueryMessage(sender="a", receiver="b"))
        bus.publish(QueryMessage(sender="a", receiver="c"))
        bus.publish(GainReportMessage(sender="a", receiver="b", gain=0.5))
        assert bus.count("QueryMessage") == 2
        assert bus.count("GainReportMessage") == 1
        assert bus.count("GrantMessage") == 0
        assert bus.total() == 3

    def test_log_disabled_by_default(self):
        bus = MessageBus()
        bus.publish(QueryMessage(sender="a", receiver="b"))
        assert bus.log == []

    def test_log_when_enabled(self):
        bus = MessageBus(keep_log=True)
        message = QueryMessage(sender="a", receiver="b")
        bus.publish(message)
        assert bus.log == [message]

    def test_reset_and_snapshot(self):
        bus = MessageBus()
        bus.publish(QueryMessage(sender="a", receiver="b"))
        snapshot = bus.snapshot()
        bus.reset()
        assert snapshot == {"QueryMessage": 1}
        assert bus.total() == 0
