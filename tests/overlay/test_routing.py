"""Tests for query routing and cid-annotated results."""

from __future__ import annotations

import pytest

from repro.core.queries import Query
from repro.overlay.messages import MessageBus
from repro.overlay.routing import BroadcastRouter, ProbeKRouter, QueryRouter


class TestBroadcastRouter:
    def test_reaches_all_nonempty_clusters(self, tiny_network, tiny_configuration):
        router = BroadcastRouter(tiny_network)
        assert router.target_clusters("alice", tiny_configuration) == ["c1", "c2"]

    def test_results_are_annotated_with_cids(self, tiny_network, tiny_configuration):
        router = BroadcastRouter(tiny_network)
        results = router.route("alice", Query(["movies"]), tiny_configuration)
        by_provider = {result.provider: result for result in results}
        assert by_provider["bob"].cluster_id == "c2"
        assert by_provider["carol"].cluster_id == "c1"
        assert by_provider["bob"].result_count == 1

    def test_zero_count_results_are_omitted(self, tiny_network, tiny_configuration):
        router = BroadcastRouter(tiny_network)
        results = router.route("bob", Query(["music"]), tiny_configuration)
        providers = {result.provider for result in results}
        assert "bob" not in providers
        assert providers == {"alice", "carol"}

    def test_cluster_recall_matches_global_recall_under_broadcast(
        self, tiny_network, tiny_configuration
    ):
        router = BroadcastRouter(tiny_network)
        query = Query(["music"])
        results = router.route("bob", query, tiny_configuration)
        model = tiny_network.recall_model()
        expected_c1 = model.recall(query, "alice") + model.recall(query, "carol")
        assert QueryRouter.cluster_recall(results, "c1") == pytest.approx(expected_c1)

    def test_cluster_recall_of_empty_results_is_zero(self):
        assert QueryRouter.cluster_recall([], "c1") == 0.0

    def test_messages_are_accounted(self, tiny_network, tiny_configuration):
        bus = MessageBus()
        router = BroadcastRouter(tiny_network, bus)
        router.route("alice", Query(["movies"]), tiny_configuration)
        assert bus.count("QueryMessage") == 2  # one per non-empty cluster
        assert bus.count("ResultMessage") == 2  # bob and carol both answered


class TestProbeKRouter:
    def test_k_must_be_positive(self, tiny_network):
        with pytest.raises(ValueError):
            ProbeKRouter(tiny_network, k=0)

    def test_k1_only_reaches_own_cluster(self, tiny_network, tiny_configuration):
        router = ProbeKRouter(tiny_network, k=1)
        assert router.target_clusters("alice", tiny_configuration) == ["c1"]

    def test_k2_adds_largest_other_cluster(self, tiny_network, tiny_configuration):
        router = ProbeKRouter(tiny_network, k=2)
        assert router.target_clusters("bob", tiny_configuration) == ["c2", "c1"]

    def test_probe_results_are_subset_of_broadcast(self, tiny_network, tiny_configuration):
        query = Query(["music"])
        broadcast = BroadcastRouter(tiny_network).route("bob", query, tiny_configuration)
        probed = ProbeKRouter(tiny_network, k=1).route("bob", query, tiny_configuration)
        broadcast_pairs = {(result.provider, result.result_count) for result in broadcast}
        probed_pairs = {(result.provider, result.result_count) for result in probed}
        assert probed_pairs <= broadcast_pairs

    def test_equal_size_clusters_tie_break_by_repr(self, tiny_network):
        # Three singleton clusters: every "other" cluster ties on size, so
        # the deterministic (-size, repr) order decides which ones k probes.
        from repro.peers.configuration import ClusterConfiguration

        singletons = ClusterConfiguration(
            ["c3", "c2", "c1"], {"alice": "c3", "bob": "c2", "carol": "c1"}
        )
        router = ProbeKRouter(tiny_network, k=2)
        assert router.target_clusters("alice", singletons) == ["c3", "c1"]
        assert router.target_clusters("carol", singletons) == ["c1", "c2"]
        assert ProbeKRouter(tiny_network, k=3).target_clusters("alice", singletons) == [
            "c3",
            "c1",
            "c2",
        ]

    def test_larger_clusters_win_over_repr(self, tiny_network, tiny_configuration):
        # c1 (two members) outranks the repr-smaller singleton c2.
        router = ProbeKRouter(tiny_network, k=2)
        assert router.target_clusters("bob", tiny_configuration) == ["c2", "c1"]


class TestOrderedMembers:
    def test_route_order_matches_the_historical_repr_sort(
        self, tiny_network, tiny_configuration
    ):
        router = BroadcastRouter(tiny_network)
        results = router.route("bob", Query(["music"]), tiny_configuration)
        providers = [result.provider for result in results]
        assert providers == sorted(providers, key=repr)

    def test_rank_cache_rebuilds_after_churn(self, tiny_network, tiny_configuration):
        router = BroadcastRouter(tiny_network)
        router.route("bob", Query(["music"]), tiny_configuration)  # warm the cache
        members = ["carol", "alice", "bob"]
        assert router._ordered_members(members) == ["alice", "bob", "carol"]
        # A member the network has never seen falls back to the repr sort.
        assert router._ordered_members(["zed", "alice"]) == ["alice", "zed"]
