"""Tests for workload and content updates (the Section 4.2 change model)."""

from __future__ import annotations

import random

import pytest

from repro.dynamics.updates import (
    update_content_fraction,
    update_content_full,
    update_workload_fraction,
    update_workload_full,
)
from repro.errors import DatasetError
from tests.conftest import make_small_scenario


@pytest.fixture
def scenario():
    return make_small_scenario()


def _other_category(data, peer_id):
    current = data.data_categories[peer_id]
    return sorted(
        category
        for category in set(data.data_categories.values())
        if category is not None and category != current
    )[0]


class TestWorkloadUpdates:
    def test_full_update_redirects_every_query(self, scenario):
        peer_id = scenario.peer_ids()[0]
        new_category = _other_category(scenario, peer_id)
        volume_before = scenario.network.peer(peer_id).workload.total()
        report = update_workload_full(
            scenario.network, [peer_id], new_category, scenario.generator, rng=random.Random(1)
        )
        workload = scenario.network.peer(peer_id).workload
        assert workload.total() == volume_before
        assert report.num_peers == 1
        vocabularies = scenario.generator.vocabularies
        for query in workload:
            term = next(iter(query.attributes))
            assert vocabularies.category_of_term(term) == new_category

    def test_fraction_update_preserves_volume_and_mixes_categories(self, scenario):
        peer_id = scenario.peer_ids()[1]
        new_category = _other_category(scenario, peer_id)
        volume_before = scenario.network.peer(peer_id).workload.total()
        update_workload_fraction(
            scenario.network,
            [peer_id],
            new_category,
            scenario.generator,
            0.5,
            rng=random.Random(2),
        )
        workload = scenario.network.peer(peer_id).workload
        assert workload.total() == volume_before
        categories = {
            scenario.generator.vocabularies.category_of_term(next(iter(query.attributes)))
            for query in workload
        }
        assert new_category in categories

    def test_zero_fraction_is_a_noop(self, scenario):
        peer_id = scenario.peer_ids()[2]
        before = scenario.network.peer(peer_id).workload.copy()
        update_workload_fraction(
            scenario.network,
            [peer_id],
            _other_category(scenario, peer_id),
            scenario.generator,
            0.0,
            rng=random.Random(7),
        )
        assert scenario.network.peer(peer_id).workload == before

    def test_invalid_fraction_rejected(self, scenario):
        with pytest.raises(DatasetError):
            update_workload_fraction(
                scenario.network,
                [scenario.peer_ids()[0]],
                "cat01",
                scenario.generator,
                1.5,
                rng=random.Random(8),
            )

    def test_unknown_peer_rejected(self, scenario):
        with pytest.raises(DatasetError):
            update_workload_full(
                scenario.network, ["ghost"], "cat01", scenario.generator,
                rng=random.Random(9),
            )

    def test_explicit_rng_is_required(self, scenario):
        """Drift must be reproducible: rng=None is rejected, not defaulted."""
        peer_id = scenario.peer_ids()[0]
        with pytest.raises(DatasetError, match="explicit rng"):
            update_workload_full(
                scenario.network, [peer_id], "cat01", scenario.generator, rng=None
            )

    def test_same_rng_seed_reproduces_the_same_update(self):
        from tests.conftest import make_small_scenario

        results = []
        for _attempt in range(2):
            data = make_small_scenario()
            peer_id = data.peer_ids()[0]
            update_workload_full(
                data.network,
                [peer_id],
                _other_category(data, peer_id),
                data.generator,
                rng=random.Random(123),
            )
            workload = data.network.peer(peer_id).workload
            results.append(sorted((repr(q), c) for q, c in workload.items()))
        assert results[0] == results[1]


class TestContentUpdates:
    def test_full_update_replaces_documents(self, scenario):
        peer_id = scenario.peer_ids()[0]
        new_category = _other_category(scenario, peer_id)
        count_before = len(scenario.network.peer(peer_id).documents)
        update_content_full(
            scenario.network, [peer_id], new_category, scenario.generator, rng=random.Random(3)
        )
        documents = scenario.network.peer(peer_id).documents
        assert len(documents) == count_before
        assert {doc.category for doc in documents} == {new_category}

    def test_fraction_update_keeps_document_count(self, scenario):
        peer_id = scenario.peer_ids()[1]
        new_category = _other_category(scenario, peer_id)
        count_before = len(scenario.network.peer(peer_id).documents)
        update_content_fraction(
            scenario.network,
            [peer_id],
            new_category,
            scenario.generator,
            0.5,
            rng=random.Random(4),
        )
        documents = scenario.network.peer(peer_id).documents
        assert len(documents) == count_before
        assert new_category in {doc.category for doc in documents}

    def test_updates_invalidate_the_recall_model(self, scenario):
        peer_id = scenario.peer_ids()[0]
        new_category = _other_category(scenario, peer_id)
        query = scenario.generator.generate_query(new_category, rng=random.Random(5))
        before = scenario.network.recall_model().total_results(query)
        update_content_full(
            scenario.network,
            [peer_id],
            new_category,
            scenario.generator,
            rng=random.Random(6),
        )
        after = scenario.network.recall_model().total_results(query)
        assert after >= before
