"""Tests for the registered drift models (repro.dynamics.models)."""

from __future__ import annotations

import json
import random

import pytest

from repro.datasets.scenarios import category_configuration
from repro.dynamics.models import (
    DriftModel,
    DriftReport,
    build_drift_model,
    drift_model_from_spec,
)
from repro.errors import ConfigurationError, UnknownComponentError
from repro.registry import drift_registry, register_drift
from tests.conftest import make_small_scenario


@pytest.fixture
def scenario():
    return make_small_scenario()


@pytest.fixture
def configured(scenario):
    return scenario, category_configuration(scenario)


def apply_model(name, configured, *, seed=11, period=0, **options):
    scenario, configuration = configured
    model = build_drift_model(name, **options)
    rng = random.Random(seed)
    model.prepare(scenario, rng)
    return model.apply(scenario.network, configuration, period, rng)


class TestRegistry:
    def test_builtins_are_registered(self):
        names = drift_registry.names()
        for expected in (
            "workload-full",
            "workload-fraction",
            "content-full",
            "content-fraction",
            "churn",
            "composite",
            "none",
        ):
            assert expected in names

    def test_unknown_model_lists_available(self):
        with pytest.raises(UnknownComponentError, match="workload-full"):
            build_drift_model("quantum-drift")

    def test_invalid_options_raise_configuration_error(self):
        with pytest.raises(ConfigurationError, match="invalid options"):
            build_drift_model("workload-full", warp=9)

    def test_spec_rejects_schedule_keys(self):
        with pytest.raises(ConfigurationError, match="start"):
            drift_model_from_spec({"model": "none", "start": 1})

    def test_custom_model_plugs_in(self, configured):
        @register_drift("test-flip")
        class FlipDrift(DriftModel):
            name = "test-flip"

            def apply(self, network, configuration, period, rng):
                return DriftReport(model=self.name, period=period)

        try:
            report = apply_model("test-flip", configured)
            assert report.model == "test-flip"
        finally:
            drift_registry.unregister("test-flip")


class TestWorkloadDrift:
    def test_full_update_switches_the_selected_peers(self, configured):
        scenario, configuration = configured
        members = sorted(
            configuration.members(configuration.nonempty_clusters()[0]), key=repr
        )
        report = apply_model("workload-full", configured, peer_fraction=0.5)
        expected = members[: int(round(0.5 * len(members)))]
        assert list(report.peer_ids) == expected
        assert report.fraction == 1.0
        vocabularies = scenario.generator.vocabularies
        for peer_id in report.peer_ids:
            for query in scenario.network.peer(peer_id).workload:
                term = next(iter(query.attributes))
                assert vocabularies.category_of_term(term) == report.category

    def test_explicit_peer_count_and_category(self, configured):
        report = apply_model("workload-full", configured, peers=2, category="cat02")
        assert report.num_peers == 2
        assert report.category == "cat02"

    def test_zero_fraction_is_a_noop(self, configured):
        assert apply_model("workload-full", configured, peer_fraction=0.0) is None
        assert apply_model("workload-fraction", configured, fraction=0.0) is None

    def test_fraction_update_touches_all_members(self, configured):
        scenario, configuration = configured
        members = sorted(
            configuration.members(configuration.nonempty_clusters()[0]), key=repr
        )
        report = apply_model("workload-fraction", configured, fraction=0.5)
        assert list(report.peer_ids) == members
        assert report.fraction == 0.5

    def test_same_seed_reproduces_the_same_drift(self):
        workloads = []
        for _attempt in range(2):
            data = make_small_scenario()
            configured = (data, category_configuration(data))
            report = apply_model("workload-full", configured, peer_fraction=1.0, seed=5)
            peer_id = report.peer_ids[0]
            workload = data.network.peer(peer_id).workload
            workloads.append(sorted((repr(q), c) for q, c in workload.items()))
        assert workloads[0] == workloads[1]

    def test_cluster_index_targets_another_cluster(self, configured):
        scenario, configuration = configured
        second = configuration.nonempty_clusters()[1]
        members = sorted(configuration.members(second), key=repr)
        report = apply_model("workload-full", configured, cluster_index=1)
        assert list(report.peer_ids) == members

    def test_invalid_options_fail_fast(self):
        with pytest.raises(ConfigurationError):
            build_drift_model("workload-full", peer_fraction=1.5)
        with pytest.raises(ConfigurationError):
            build_drift_model("workload-full", peer_fraction=0.5, peers=2)
        with pytest.raises(ConfigurationError):
            build_drift_model("workload-fraction", fraction=-0.1)

    def test_requires_scenario_data(self, configured):
        _scenario, configuration = configured
        model = build_drift_model("workload-full")
        with pytest.raises(ConfigurationError, match="scenario data"):
            model.prepare(None, random.Random(1))


class TestContentDrift:
    def test_full_update_replaces_documents(self, configured):
        scenario, _configuration = configured
        report = apply_model("content-full", configured, peer_fraction=0.5)
        for peer_id in report.peer_ids:
            documents = scenario.network.peer(peer_id).documents
            assert {doc.category for doc in documents} == {report.category}

    def test_fraction_update_mixes_categories(self, configured):
        scenario, _configuration = configured
        report = apply_model("content-fraction", configured, fraction=0.5)
        peer_id = report.peer_ids[0]
        categories = {doc.category for doc in scenario.network.peer(peer_id).documents}
        assert report.category in categories


class TestChurn:
    def test_departure_count(self, configured):
        scenario, configuration = configured
        population = len(scenario.network)
        report = apply_model("churn", configured, departures=3)
        assert report.num_peers == 3
        assert len(scenario.network) == population - 3
        for peer_id in report.peer_ids:
            assert peer_id not in configuration

    def test_departure_fraction(self, configured):
        scenario, _configuration = configured
        population = len(scenario.network)
        report = apply_model("churn", configured, departure_fraction=0.25)
        assert report.num_peers == int(round(0.25 * population))

    def test_zero_departures_is_a_noop(self, configured):
        assert apply_model("churn", configured, departures=0) is None

    def test_churn_works_without_scenario_data(self, configured):
        scenario, configuration = configured
        model = build_drift_model("churn", departures=1)
        rng = random.Random(3)
        model.prepare(None, rng)  # churn does not need the corpus generator
        report = model.apply(scenario.network, configuration, 0, rng)
        assert report.num_peers == 1


class TestCompositeAndNone:
    def test_composite_applies_in_order(self, configured):
        report = apply_model(
            "composite",
            configured,
            models=[
                {"model": "workload-full", "options": {"peer_fraction": 0.5}},
                {"model": "churn", "options": {"departures": 1}},
            ],
        )
        assert report.model == "composite"
        assert [part.model for part in report.parts] == ["workload-full", "churn"]
        assert report.num_peers == report.parts[0].num_peers + 1

    def test_composite_of_noops_is_a_noop(self, configured):
        assert (
            apply_model("composite", configured, models=[{"model": "none"}]) is None
        )

    def test_composite_needs_submodels(self):
        with pytest.raises(ConfigurationError):
            build_drift_model("composite", models=[])

    def test_none_is_a_noop(self, configured):
        scenario, _configuration = configured
        before = len(scenario.network)
        assert apply_model("none", configured) is None
        assert len(scenario.network) == before


class TestDriftReport:
    def test_to_dict_is_json_serialisable(self, configured):
        report = apply_model(
            "composite",
            configured,
            models=[
                {"model": "workload-fraction", "options": {"fraction": 0.5}},
                {"model": "churn", "options": {"departures": 2}},
            ],
        )
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["model"] == "composite"
        assert payload["parts"][0]["fraction"] == 0.5
        assert len(payload["parts"][1]["peer_ids"]) == 2
