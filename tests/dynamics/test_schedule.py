"""Tests for drift rules and dynamics schedules (repro.dynamics.schedule)."""

from __future__ import annotations

import json

import pytest

from repro.datasets.scenarios import category_configuration
from repro.dynamics.schedule import DriftRule, DynamicsSchedule, _derive_rng
from repro.errors import ConfigurationError
from tests.conftest import make_small_scenario


class TestDriftRule:
    def test_every_period_by_default(self):
        rule = DriftRule(model="none")
        assert [rule.invocation_index(p) for p in range(4)] == [0, 1, 2, 3]

    def test_start_and_every(self):
        rule = DriftRule(model="none", start=1, every=2)
        assert rule.invocation_index(0) is None
        assert rule.invocation_index(1) == 0
        assert rule.invocation_index(2) is None
        assert rule.invocation_index(3) == 1

    def test_one_shot(self):
        rule = DriftRule(model="none", start=2, times=1)
        assert [rule.invocation_index(p) for p in range(5)] == [None, None, 0, None, None]

    def test_ramp_overrides_one_option_per_invocation(self):
        rule = DriftRule(
            model="workload-full",
            options={"category": "cat01"},
            ramp={"option": "peer_fraction", "values": [0.0, 0.5, 1.0]},
        )
        assert rule.options_for(1) == {"category": "cat01", "peer_fraction": 0.5}
        # the grid is exhausted after its last value
        assert rule.invocation_index(2) == 2
        assert rule.invocation_index(3) is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DriftRule(model="none", start=-1)
        with pytest.raises(ConfigurationError):
            DriftRule(model="none", every=0)
        with pytest.raises(ConfigurationError):
            DriftRule(model="none", times=0)
        with pytest.raises(ConfigurationError):
            DriftRule(model="none", ramp={"values": [1]})
        with pytest.raises(ConfigurationError):
            DriftRule(model="none", ramp={"option": "x", "values": []})

    def test_dict_round_trip(self):
        rule = DriftRule(
            model="workload-full",
            options={"peer_fraction": 0.4},
            start=1,
            every=2,
            times=3,
            ramp={"option": "peer_fraction", "values": [0.2, 0.4]},
        )
        restored = DriftRule.from_dict(json.loads(json.dumps(rule.to_dict())))
        assert restored == rule

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="cadence"):
            DriftRule.from_dict({"model": "none", "cadence": 2})
        with pytest.raises(ConfigurationError, match="model"):
            DriftRule.from_dict({"options": {}})


class TestScheduleConstruction:
    def test_single_rule_spec_round_trips(self):
        spec = {"model": "churn", "options": {"departures": 2}, "start": 1}
        schedule = DynamicsSchedule.from_dict(spec)
        assert schedule.to_dict() == spec

    def test_multi_rule_spec_round_trips(self):
        spec = {
            "rules": [
                {"model": "churn", "options": {"departures": 1}},
                {"model": "content-fraction", "options": {"fraction": 0.3}, "every": 2},
            ]
        }
        schedule = DynamicsSchedule.from_dict(spec)
        assert schedule.to_dict() == spec

    def test_from_any(self):
        schedule = DynamicsSchedule.from_dict({"model": "none", "options": {}})
        assert DynamicsSchedule.from_any(schedule) is schedule
        assert DynamicsSchedule.from_any({"model": "none"}).rules[0].model == "none"
        with pytest.raises(ConfigurationError):
            DynamicsSchedule.from_any(42)

    def test_empty_rules_rejected(self):
        with pytest.raises(ConfigurationError):
            DynamicsSchedule.from_dict({"rules": []})

    def test_validate_rejects_unknown_models_and_bad_options(self):
        with pytest.raises(Exception, match="drift model"):
            DynamicsSchedule.from_dict({"model": "quantum"}).validate()
        with pytest.raises(ConfigurationError):
            DynamicsSchedule.from_dict(
                {"model": "workload-full", "options": {"warp": 1}}
            ).validate()

    def test_callback_schedules_do_not_serialise(self):
        schedule = DynamicsSchedule.from_callbacks([None])
        assert schedule.is_callback_schedule
        with pytest.raises(ConfigurationError, match="callback"):
            schedule.to_dict()


class TestScheduleApplication:
    def _bound(self, spec, seed=7):
        data = make_small_scenario()
        configuration = category_configuration(data)
        schedule = DynamicsSchedule.from_dict(spec).bind(data=data, seed=seed)
        return data, configuration, schedule

    def test_silent_periods_produce_no_reports(self):
        data, configuration, schedule = self._bound(
            {"model": "workload-full", "options": {"peer_fraction": 0.5}, "start": 2}
        )
        assert schedule.apply_period(data.network, configuration, 0) == []
        assert schedule.apply_period(data.network, configuration, 1) == []
        reports = schedule.apply_period(data.network, configuration, 2)
        assert [report.model for report in reports] == ["workload-full"]
        assert reports[0].period == 2

    def test_ramp_walks_the_parameter_grid(self):
        data, configuration, schedule = self._bound(
            {
                "model": "workload-full",
                "ramp": {"option": "peer_fraction", "values": [0.0, 0.5, 1.0]},
            }
        )
        members = sorted(
            configuration.members(configuration.nonempty_clusters()[0]), key=repr
        )
        assert schedule.apply_period(data.network, configuration, 0) == []  # 0.0: noop
        half = schedule.apply_period(data.network, configuration, 1)
        assert half[0].num_peers == int(round(0.5 * len(members)))
        full = schedule.apply_period(data.network, configuration, 2)
        assert full[0].num_peers == len(members)
        assert schedule.apply_period(data.network, configuration, 3) == []  # exhausted

    def test_multiple_rules_apply_in_order(self):
        data, configuration, schedule = self._bound(
            {
                "rules": [
                    {"model": "workload-fraction", "options": {"fraction": 0.5}},
                    {"model": "churn", "options": {"departures": 1}},
                ]
            }
        )
        reports = schedule.apply_period(data.network, configuration, 0)
        assert [report.model for report in reports] == ["workload-fraction", "churn"]

    def test_same_seed_is_reproducible_and_seeds_differ_per_period(self):
        outcomes = []
        for _attempt in range(2):
            data, configuration, schedule = self._bound(
                {"model": "churn", "options": {"departures": 2}}, seed=13
            )
            first = schedule.apply_period(data.network, configuration, 0)
            second = schedule.apply_period(data.network, configuration, 1)
            outcomes.append((first[0].peer_ids, second[0].peer_ids))
        assert outcomes[0] == outcomes[1]  # same seed -> same drift
        first, second = outcomes[0]
        assert first != second  # periods draw from distinct streams

    def test_callback_adapter_invokes_callbacks_per_period(self):
        data = make_small_scenario()
        configuration = category_configuration(data)
        seen = []
        schedule = DynamicsSchedule.from_callbacks(
            [None, lambda network, conf: seen.append(len(network))]
        )
        assert schedule.apply_period(data.network, configuration, 0) == []
        reports = schedule.apply_period(data.network, configuration, 1)
        assert seen == [len(data.network)]
        assert reports[0].model == "callback"
        # beyond the callback list the schedule is silent
        assert schedule.apply_period(data.network, configuration, 5) == []


class TestDerivedStreams:
    def test_rng_is_a_pure_function_of_seed_period_rule(self):
        assert _derive_rng(7, 3, 0).random() == _derive_rng(7, 3, 0).random()
        assert _derive_rng(7, 3, 0).random() != _derive_rng(7, 4, 0).random()
        assert _derive_rng(7, 3, 0).random() != _derive_rng(7, 3, 1).random()
        assert _derive_rng(8, 3, 0).random() != _derive_rng(7, 3, 0).random()
