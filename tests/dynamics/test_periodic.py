"""Tests for the periodic maintenance loop (periods of observe + maintain)."""

from __future__ import annotations

import random

import pytest

from repro.datasets.scenarios import category_configuration
from repro.dynamics.periodic import PeriodicMaintenanceLoop
from repro.dynamics.updates import update_workload_full
from repro.strategies.selfish import SelfishStrategy
from tests.conftest import make_small_scenario


@pytest.fixture
def scenario():
    return make_small_scenario()


def make_loop(scenario, strategy=None, **kwargs):
    configuration = category_configuration(scenario)
    return PeriodicMaintenanceLoop(
        scenario.network,
        configuration,
        strategy if strategy is not None else SelfishStrategy(),
        **kwargs,
    )


class TestRunPeriod:
    def test_quiet_period_changes_nothing(self, scenario):
        loop = make_loop(scenario)
        record = loop.run_period()
        assert record.moves == 0
        assert record.social_cost_before == pytest.approx(record.social_cost_after)
        assert record.converged

    def test_period_with_drift_triggers_maintenance(self, scenario):
        loop = make_loop(scenario)
        categories = sorted({c for c in scenario.data_categories.values() if c})
        rng = random.Random(5)

        def drift(network, configuration):
            cluster_id = configuration.nonempty_clusters()[0]
            members = sorted(configuration.members(cluster_id), key=repr)
            update_workload_full(network, members, categories[-1], scenario.generator, rng=rng)

        baseline = loop.run_period()
        drifted = loop.run_period(drift)
        assert drifted.social_cost_before > baseline.social_cost_after
        assert drifted.social_cost_after <= drifted.social_cost_before + 1e-9
        assert drifted.period == 1

    def test_observed_mode_runs_the_query_simulation(self, scenario):
        loop = make_loop(scenario, strategy=SelfishStrategy(mode="observed"))
        record = loop.run_period()
        assert record.queries_routed > 0

    def test_exact_mode_skips_the_query_simulation_by_default(self, scenario):
        loop = make_loop(scenario)
        record = loop.run_period()
        assert record.queries_routed == 0


class TestRun:
    def test_run_produces_one_record_per_period(self, scenario):
        loop = make_loop(scenario)
        records = loop.run(3)
        assert len(records) == 3
        assert loop.social_cost_trace() == [record.social_cost_after for record in records]

    def test_updates_list_is_validated(self, scenario):
        loop = make_loop(scenario)
        with pytest.raises(ValueError):
            loop.run(3, updates=[None])
        with pytest.raises(ValueError):
            loop.run(-1)

    def test_population_is_preserved_across_periods(self, scenario):
        loop = make_loop(scenario)
        loop.run(2)
        assert sorted(loop.configuration.peer_ids()) == scenario.peer_ids()


class TestScheduledDynamics:
    def test_loop_applies_a_bound_schedule_and_emits_drift_events(self, scenario):
        from repro.dynamics.schedule import DynamicsSchedule

        schedule = DynamicsSchedule.from_dict(
            {"model": "workload-full", "options": {"peer_fraction": 1.0}, "start": 1}
        ).bind(data=scenario, seed=3)
        loop = make_loop(scenario, schedule=schedule)
        events = []
        loop.hooks.on_drift_applied(events.append)
        records = loop.run(2)
        assert [event.period for event in events] == [1]
        assert events[0].report.model == "workload-full"
        assert records[1].social_cost_before > records[0].social_cost_after

    def test_schedule_and_callback_updates_compose(self, scenario):
        from repro.dynamics.schedule import DynamicsSchedule

        schedule = DynamicsSchedule.from_dict(
            {"model": "churn", "options": {"departures": 1}}
        ).bind(data=scenario, seed=3)
        loop = make_loop(scenario, schedule=schedule)
        population = len(scenario.network)
        calls = []
        loop.run_period(lambda network, configuration: calls.append(len(network)))
        # the schedule fires first, then the explicit callback sees the result
        assert calls == [population - 1]
