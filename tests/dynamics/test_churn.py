"""Tests for peer churn (joins and departures)."""

from __future__ import annotations

import random

import pytest

from repro.dynamics.churn import add_peer, random_departures, remove_peers
from repro.errors import DatasetError
from repro.peers.peer import Peer
from tests.conftest import make_small_scenario


@pytest.fixture
def scenario_with_configuration():
    scenario = make_small_scenario()
    from repro.datasets.scenarios import category_configuration

    return scenario, category_configuration(scenario)


class TestDepartures:
    def test_remove_peers_updates_both_structures(self, scenario_with_configuration):
        scenario, configuration = scenario_with_configuration
        victims = scenario.peer_ids()[:3]
        removed = remove_peers(scenario.network, configuration, victims)
        assert [peer.peer_id for peer in removed] == victims
        assert len(scenario.network) == scenario.config.num_peers - 3
        for victim in victims:
            assert victim not in configuration

    def test_random_departures_count(self, scenario_with_configuration):
        scenario, configuration = scenario_with_configuration
        random_departures(scenario.network, configuration, 4, rng=random.Random(1))
        assert len(scenario.network) == scenario.config.num_peers - 4

    def test_random_departures_validation(self, scenario_with_configuration):
        scenario, configuration = scenario_with_configuration
        with pytest.raises(DatasetError):
            random_departures(scenario.network, configuration, -1, rng=random.Random(2))
        with pytest.raises(DatasetError):
            random_departures(scenario.network, configuration, 10_000, rng=random.Random(2))

    def test_random_departures_require_an_explicit_rng(self, scenario_with_configuration):
        scenario, configuration = scenario_with_configuration
        with pytest.raises(DatasetError, match="explicit rng"):
            random_departures(scenario.network, configuration, 1, rng=None)

    def test_same_rng_seed_removes_the_same_peers(self):
        from repro.datasets.scenarios import category_configuration

        removed_ids = []
        for _attempt in range(2):
            scenario = make_small_scenario()
            configuration = category_configuration(scenario)
            removed = random_departures(
                scenario.network, configuration, 4, rng=random.Random(99)
            )
            removed_ids.append([peer.peer_id for peer in removed])
        assert removed_ids[0] == removed_ids[1]


class TestJoins:
    def _newcomer(self, scenario, category):
        return Peer(
            "newcomer",
            documents=scenario.generator.generate_documents(category, 4, rng=random.Random(2)),
            workload=scenario.generator.generate_workload(category, 3, rng=random.Random(3)),
        )

    def test_explicit_cluster_placement(self, scenario_with_configuration):
        scenario, configuration = scenario_with_configuration
        target = configuration.nonempty_clusters()[0]
        category = sorted({c for c in scenario.data_categories.values() if c})[0]
        chosen = add_peer(
            scenario.network,
            configuration,
            self._newcomer(scenario, category),
            cluster_id=target,
        )
        assert chosen == target
        assert configuration.cluster_of("newcomer") == target

    def test_automatic_placement_prefers_the_matching_topic_cluster(
        self, scenario_with_configuration
    ):
        scenario, configuration = scenario_with_configuration
        categories = sorted({c for c in scenario.data_categories.values() if c})
        category = categories[0]
        chosen = add_peer(
            scenario.network, configuration, self._newcomer(scenario, category)
        )
        members = configuration.members(chosen)
        member_categories = {
            scenario.data_categories[m] for m in members if m != "newcomer"
        }
        assert member_categories == {category}
