"""Tests for the pluggable sweep executors: resolution, registry, event
ordering contract, cross-executor parity and the deprecation shims."""

from __future__ import annotations

import warnings

import pytest

from repro.errors import ConfigurationError, UnknownComponentError
from repro.events import EventHooks
from repro.registry import executor_registry, register_executor
from repro.sweep import SweepSpec, run_sweep
from repro.sweep.executors import (
    ChunkedStreamingExecutor,
    ExecutorContext,
    ProcessPoolSweepExecutor,
    SerialExecutor,
    SweepExecutor,
    TaskOutcome,
    execute_task,
    executor_from_any,
    resolve_executor,
)

TINY_SCENARIO = {
    "num_peers": 12,
    "num_categories": 3,
    "documents_per_peer": 4,
    "terms_per_document": 3,
    "category_vocabulary_size": 15,
    "queries_per_peer": 3,
}


def tiny_spec(**overrides) -> SweepSpec:
    values = {
        "strategies": ("selfish", "altruistic"),
        "scale": "quick",
        "overrides": {"scenario_overrides": dict(TINY_SCENARIO)},
        "seeds": (7, 11),
    }
    values.update(overrides)
    return SweepSpec(**values)


ALL_EXECUTORS = (
    SerialExecutor(),
    ProcessPoolSweepExecutor(max_workers=2),
    ChunkedStreamingExecutor(max_workers=2, window=2),
)


class TestRegistry:
    def test_builtin_executors_are_registered(self):
        names = executor_registry.names()
        for name in ("serial", "process-pool", "chunked-streaming"):
            assert name in names

    def test_aliases_resolve_to_the_same_component(self):
        assert executor_registry.canonical_name("inline") == "serial"
        assert executor_registry.canonical_name("pool") == "process-pool"
        assert executor_registry.canonical_name("chunked") == "chunked-streaming"

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownComponentError):
            executor_registry.get("quantum")

    def test_custom_executor_is_selectable_by_name(self):
        @register_executor("test-noop-executor", replace=True)
        class NoopExecutor(SerialExecutor):
            name = "test-noop-executor"

        try:
            resolved = resolve_executor("test-noop-executor")
            assert isinstance(resolved, NoopExecutor)
            result = run_sweep(tiny_spec(seeds=(7,)), executor="test-noop-executor")
            assert len(result) == 2
        finally:
            executor_registry.unregister("test-noop-executor")


class TestResolution:
    def test_default_is_serial(self):
        assert isinstance(resolve_executor(), SerialExecutor)
        assert isinstance(resolve_executor(workers=1), SerialExecutor)

    def test_workers_map_to_a_process_pool(self):
        executor = resolve_executor(workers=3)
        assert isinstance(executor, ProcessPoolSweepExecutor)
        assert executor.workers == 3

    def test_name_and_spec_forms(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        executor = resolve_executor(
            {"name": "chunked-streaming", "options": {"max_workers": 2, "window": 5}}
        )
        assert isinstance(executor, ChunkedStreamingExecutor)
        assert executor.window_size(2) == 5

    def test_instance_passes_through(self):
        executor = SerialExecutor()
        assert resolve_executor(executor) is executor

    def test_executor_and_workers_are_mutually_exclusive(self):
        with pytest.raises(ConfigurationError, match="mutually exclusive"):
            resolve_executor("serial", workers=2)

    def test_bad_spec_keys_raise(self):
        with pytest.raises(ConfigurationError, match="unknown executor spec keys"):
            resolve_executor({"name": "serial", "max_workers": 2})
        with pytest.raises(ConfigurationError, match="'name'"):
            resolve_executor({"options": {}})

    def test_bad_worker_counts_raise(self):
        with pytest.raises(ConfigurationError, match="workers"):
            resolve_executor(workers=0)
        with pytest.raises(ConfigurationError, match="max_workers"):
            ProcessPoolSweepExecutor(max_workers=0)
        with pytest.raises(ConfigurationError, match="window"):
            ChunkedStreamingExecutor(window=0)

    def test_executor_from_any_gives_executor_precedence(self):
        executor = executor_from_any("serial", 8)
        assert isinstance(executor, SerialExecutor)
        pool = executor_from_any(None, 4)
        assert isinstance(pool, ProcessPoolSweepExecutor)
        assert pool.workers == 4

    def test_describe_strings(self):
        assert SerialExecutor().describe() == "serial"
        assert ProcessPoolSweepExecutor(max_workers=3).describe() == "process-pool(3)"
        assert (
            ChunkedStreamingExecutor(max_workers=2, window=6).describe()
            == "chunked-streaming(2, window=6)"
        )

    def test_chunked_window_never_drops_below_workers(self):
        executor = ChunkedStreamingExecutor(max_workers=4, window=2)
        assert executor.window_size(4) == 4
        assert ChunkedStreamingExecutor(max_workers=4).window_size(4) == 8


class TestEventOrderingContract:
    """The five rules documented in repro.sweep.executors."""

    @staticmethod
    def _record(executor: SweepExecutor):
        spec = tiny_spec()
        events = []
        hooks = EventHooks()
        hooks.on_task_started(lambda event: events.append(("start", event.index)))
        hooks.on_task_finished(lambda event: events.append(("finish", event.index)))
        result = run_sweep(spec, executor=executor, hooks=hooks)
        return events, len(result)

    @pytest.mark.parametrize(
        "executor", ALL_EXECUTORS, ids=lambda executor: executor.name
    )
    def test_exactly_one_start_and_finish_per_task_and_start_precedes_finish(
        self, executor
    ):
        events, total = self._record(executor)
        starts = [index for kind, index in events if kind == "start"]
        finishes = [index for kind, index in events if kind == "finish"]
        assert sorted(starts) == list(range(total))
        assert sorted(finishes) == list(range(total))
        for index in range(total):
            assert events.index(("start", index)) < events.index(("finish", index))

    @pytest.mark.parametrize(
        "executor", ALL_EXECUTORS, ids=lambda executor: executor.name
    )
    def test_starts_are_in_task_index_order(self, executor):
        events, total = self._record(executor)
        starts = [index for kind, index in events if kind == "start"]
        assert starts == list(range(total))

    def test_serial_window_is_one(self):
        events, total = self._record(SerialExecutor())
        expected = []
        for index in range(total):
            expected.extend([("start", index), ("finish", index)])
        assert events == expected

    def test_chunked_in_flight_never_exceeds_the_window(self):
        window = 2
        events, _ = self._record(ChunkedStreamingExecutor(max_workers=2, window=window))
        in_flight = 0
        for kind, _index in events:
            in_flight += 1 if kind == "start" else -1
            assert 0 <= in_flight <= window

    def test_durations_are_worker_side_for_every_executor(self):
        for executor in ALL_EXECUTORS:
            result = run_sweep(tiny_spec(seeds=(7,)), executor=executor)
            assert len(result.task_durations) == len(result)
            assert all(duration > 0 for duration in result.task_durations)


class TestEventOrderingUnderFaults:
    """The amended contract: one start per *attempt*, exactly one terminal
    finish-or-quarantine per task, first-attempt starts in index order."""

    @staticmethod
    def _record(executor: SweepExecutor, *, retries: int, faults) -> dict:
        events = []
        hooks = EventHooks()
        hooks.on_task_started(
            lambda event: events.append(("start", event.index, event.attempt))
        )
        hooks.on_task_finished(
            lambda event: events.append(("finish", event.index, event.attempt))
        )
        hooks.on_task_failed(
            lambda event: events.append(("failed", event.index, event.attempt))
        )
        hooks.on_task_retried(
            lambda event: events.append(("retried", event.index, event.attempt))
        )
        hooks.on_task_quarantined(
            lambda event: events.append(("quarantined", event.index, None))
        )
        result = run_sweep(
            tiny_spec(), executor=executor, hooks=hooks, retries=retries, faults=faults
        )
        return {"events": events, "total": len(result.tasks)}

    @staticmethod
    def _assert_contract(recorded: dict) -> None:
        events, total = recorded["events"], recorded["total"]
        for index in range(total):
            starts = [e for e in events if e[0] == "start" and e[1] == index]
            retried = [e for e in events if e[0] == "retried" and e[1] == index]
            terminals = [
                e for e in events if e[0] in ("finish", "quarantined") and e[1] == index
            ]
            # One start per attempt: the first attempt plus one per re-enqueue.
            assert len(starts) == 1 + len(retried)
            assert [attempt for _kind, _index, attempt in starts] == list(
                range(1, len(starts) + 1)
            )
            # Exactly one terminal event, after the first start.
            assert len(terminals) == 1
            assert events.index(starts[0]) < events.index(terminals[0])
        first_starts = [e[1] for e in events if e[0] == "start" and e[2] == 1]
        assert first_starts == list(range(total))

    @pytest.mark.parametrize(
        "executor", ALL_EXECUTORS, ids=lambda executor: executor.name
    )
    def test_contract_holds_with_a_retried_task(self, executor):
        from repro.sweep import FaultPlan, FaultRule

        plan = FaultPlan(rules=(FaultRule(fault="task-exception", index=0, attempts=(1,)),))
        recorded = self._record(executor, retries=1, faults=plan)
        self._assert_contract(recorded)
        events = recorded["events"]
        assert ("retried", 0, 2) in events
        assert ("finish", 0, 2) in events

    @pytest.mark.parametrize(
        "executor", ALL_EXECUTORS, ids=lambda executor: executor.name
    )
    def test_contract_holds_with_a_quarantined_task(self, executor):
        from repro.sweep import FaultPlan, FaultRule

        plan = FaultPlan(rules=(FaultRule(fault="task-exception", index=2, attempts=()),))
        recorded = self._record(executor, retries=1, faults=plan)
        self._assert_contract(recorded)
        events = recorded["events"]
        assert ("quarantined", 2, None) in events
        assert ("finish", 2, 1) not in events
        assert len([e for e in events if e[0] == "failed" and e[1] == 2]) == 2

    @pytest.mark.parametrize(
        "executor", ALL_EXECUTORS, ids=lambda executor: executor.name
    )
    def test_fatal_misconfiguration_aborts_instead_of_quarantining(self, executor):
        # A ConfigurationError is a deterministic user error, not a task
        # fault: no retry budget is spent and the sweep raises.
        spec = tiny_spec(
            workloads=("uniform",),
            runner="traffic",
            runner_options={"after": "tea-break", "num_events": 50},
        )
        with pytest.raises(ConfigurationError, match="phase"):
            run_sweep(spec, executor=executor, retries=3)

    @pytest.mark.parametrize(
        "executor", ALL_EXECUTORS[1:], ids=lambda executor: executor.name
    )
    def test_contract_holds_through_a_pool_crash(self, executor):
        from repro.sweep import FaultPlan, FaultRule

        plan = FaultPlan(rules=(FaultRule(fault="worker-kill", index=1, attempts=(1,)),))
        recorded = self._record(executor, retries=0, faults=plan)
        self._assert_contract(recorded)
        crash_failed = [
            e for e in recorded["events"] if e[0] == "failed"
        ]
        assert crash_failed  # at least the killed task reported a failure


class TestParity:
    def test_all_executors_produce_byte_identical_results(self):
        spec = tiny_spec()
        reference = run_sweep(spec, executor="serial")
        for executor in ALL_EXECUTORS[1:]:
            other = run_sweep(spec, executor=executor)
            assert [r.to_dict() for r in other.results] == [
                r.to_dict() for r in reference.results
            ]

    def test_result_carries_executor_metadata(self):
        result = run_sweep(tiny_spec(seeds=(7,)), executor="serial")
        assert result.executor == "serial"
        assert result.executed == len(result)
        assert result.loaded == 0


class TestDeprecations:
    def test_run_sweep_workers_warns_but_works(self):
        with pytest.warns(DeprecationWarning, match="workers"):
            result = run_sweep(tiny_spec(seeds=(7,)), workers=1)
        assert len(result) == 2

    def test_package_level_execute_task_removed(self):
        import repro.sweep

        with pytest.raises(AttributeError):
            repro.sweep.execute_task

    def test_engine_and_executors_modules_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.sweep.engine import execute_task as from_engine
            from repro.sweep.executors import execute_task as from_executors
        assert from_engine is from_executors

    def test_unknown_package_attribute_still_raises(self):
        import repro.sweep

        with pytest.raises(AttributeError):
            repro.sweep.does_not_exist


class TestExecuteTaskDirectly:
    def test_execute_task_runs_one_task(self):
        task = tiny_spec(seeds=(7,)).validate()[0]
        result, duration = execute_task(task)
        assert result.converged in (True, False)
        assert result.protocol_result is None
        assert duration > 0

    def test_outcome_tuple_shape(self):
        task = tiny_spec(seeds=(7,)).validate()[0]
        outcomes = list(SerialExecutor().run([task], ExecutorContext()))
        assert len(outcomes) == 1
        outcome = outcomes[0]
        assert isinstance(outcome, TaskOutcome)
        assert outcome.task is task
        assert outcome.duration > 0
