"""Tests for SweepSpec expansion, seed derivation and validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, UnknownComponentError
from repro.sweep.spec import DEFAULT_RUNNER, SweepSpec, SweepTask, derive_seeds


class TestDeriveSeeds:
    def test_matches_numpy_seed_sequence_spawn(self):
        children = np.random.SeedSequence(42).spawn(4)
        expected = [int(child.generate_state(1, dtype=np.uint32)[0]) for child in children]
        assert derive_seeds(42, 4) == expected

    def test_deterministic_and_distinct(self):
        seeds = derive_seeds(7, 16)
        assert seeds == derive_seeds(7, 16)
        assert len(set(seeds)) == 16

    def test_different_base_seeds_give_different_streams(self):
        assert derive_seeds(7, 4) != derive_seeds(8, 4)

    def test_prefix_stability(self):
        # Growing the replication count keeps the existing seeds: spawn(n)
        # children are a prefix of spawn(m) children for n < m.
        assert derive_seeds(7, 8)[:3] == derive_seeds(7, 3)

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            derive_seeds(7, -1)


class TestExpansion:
    def test_grid_is_the_cartesian_product_in_declared_order(self):
        spec = SweepSpec(
            scenarios=("same-category", "uniform"),
            initials=("singletons",),
            strategies=("selfish", "altruistic"),
            scale="quick",
        )
        tasks = spec.expand()
        assert len(tasks) == 4
        assert [task.index for task in tasks] == [0, 1, 2, 3]
        combos = [(task.config["scenario"], task.config["strategy"]) for task in tasks]
        # scenario is the outer axis, strategy the inner one
        assert combos == [
            ("same-category", "selfish"),
            ("same-category", "altruistic"),
            ("uniform", "selfish"),
            ("uniform", "altruistic"),
        ]
        assert all(task.config["scale"] == "quick" for task in tasks)

    def test_empty_axes_pin_session_defaults(self):
        tasks = SweepSpec().expand()
        assert len(tasks) == 1
        assert tasks[0].config["scenario"] == "same-category"
        assert tasks[0].config["initial"] == "singletons"
        assert tasks[0].config["strategy"] == "selfish"
        assert "theta" not in tasks[0].config  # theta default is scale-dependent
        assert tasks[0].runner == DEFAULT_RUNNER
        assert tasks[0].seed is None

    def test_overrides_reach_every_grid_task_but_lose_to_axes(self):
        spec = SweepSpec(
            strategies=("altruistic",),
            overrides={"alpha": 2.0, "strategy": "selfish", "initial": "random"},
        )
        (task,) = spec.expand()
        assert task.config["alpha"] == 2.0
        assert task.config["strategy"] == "altruistic"  # the axis wins
        assert task.config["initial"] == "random"  # the override survives an empty axis

    def test_explicit_seeds_are_applied_to_session_and_scenario(self):
        spec = SweepSpec(strategies=("selfish",), seeds=(3, 5))
        tasks = spec.expand()
        assert [task.seed for task in tasks] == [3, 5]
        for task in tasks:
            assert task.config["seed"] == task.seed
            assert task.config["scenario_overrides"]["seed"] == task.seed

    def test_an_explicit_scenario_seed_override_wins(self):
        spec = SweepSpec(
            overrides={"scenario_overrides": {"seed": 99}},
            seeds=(3,),
        )
        (task,) = spec.expand()
        assert task.config["seed"] == 3
        assert task.config["scenario_overrides"]["seed"] == 99

    def test_replications_derive_the_seed_stream(self):
        spec = SweepSpec(strategies=("selfish", "altruistic"), replications=3, base_seed=11)
        tasks = spec.expand()
        assert len(tasks) == 6
        expected = derive_seeds(11, 3)
        # seeds are the inner loop: replications of one configuration are adjacent
        assert [task.seed for task in tasks] == expected + expected
        assert [task.config["strategy"] for task in tasks] == ["selfish"] * 3 + ["altruistic"] * 3

    def test_seeds_and_replications_are_mutually_exclusive(self):
        with pytest.raises(ConfigurationError, match="mutually exclusive"):
            SweepSpec(seeds=(1, 2), replications=2)

    def test_explicit_tasks_ride_after_the_grid(self):
        spec = SweepSpec(
            strategies=("selfish",),
            tasks=(
                {"config": {"strategy": "altruistic"}, "runner": "maintain", "options": {"periods": 2}},
                {"strategy": "hybrid"},  # bare config mapping form
            ),
        )
        tasks = spec.expand()
        assert len(tasks) == 3
        assert tasks[0].config["strategy"] == "selfish"
        assert tasks[1].runner == "maintain"
        assert tasks[1].options == {"periods": 2}
        assert tasks[2].config["strategy"] == "hybrid"
        assert tasks[2].runner == DEFAULT_RUNNER

    def test_explicit_tasks_without_grid_axes_suppress_the_grid(self):
        spec = SweepSpec(tasks=({"strategy": "selfish"},))
        assert len(spec.expand()) == 1

    def test_spec_scale_and_overrides_reach_explicit_tasks(self):
        spec = SweepSpec(
            scale="quick",
            overrides={"alpha": 2.0},
            tasks=(
                {"strategy": "selfish"},
                {"config": {"strategy": "altruistic", "scale": "benchmark"}},
            ),
        )
        first, second = spec.expand()
        assert first.config["scale"] == "quick"
        assert first.config["alpha"] == 2.0
        assert second.config["scale"] == "benchmark"  # the task's own field wins
        assert second.config["alpha"] == 2.0

    def test_malformed_task_entries_are_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown keys"):
            SweepSpec(tasks=({"config": {}, "bogus": 1},)).expand()
        with pytest.raises(ConfigurationError, match="must be a mapping"):
            SweepSpec(tasks=("not-a-mapping",)).expand()

    def test_bare_string_axis_is_rejected(self):
        with pytest.raises(ConfigurationError, match="bare string"):
            SweepSpec(strategies="selfish")


class TestSerialization:
    def test_round_trips_through_dict(self):
        spec = SweepSpec(
            scenarios=("same-category",),
            strategies=("selfish", "altruistic"),
            scale="quick",
            seeds=(7, 11),
            runner_options={"max_rounds": 5},
            tasks=({"strategy": "hybrid"},),
        )
        clone = SweepSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert [t.to_dict() for t in clone.expand()] == [t.to_dict() for t in spec.expand()]

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown sweep spec keys"):
            SweepSpec.from_dict({"scenarioz": ["same-category"]})

    def test_task_round_trips_through_dict(self):
        task = SweepTask(index=3, config={"strategy": "selfish"}, runner="maintain", seed=5)
        assert SweepTask.from_dict(task.to_dict()) == task


class TestValidation:
    def test_unregistered_strategy_fails_with_listing(self):
        spec = SweepSpec(strategies=("definitely-not-registered",))
        with pytest.raises(UnknownComponentError) as excinfo:
            spec.validate()
        message = str(excinfo.value)
        assert "definitely-not-registered" in message
        assert "selfish" in message  # the registry enumerates what IS available

    def test_unregistered_scenario_fails_with_listing(self):
        with pytest.raises(UnknownComponentError, match="same-category"):
            SweepSpec(scenarios=("atlantis",)).validate()

    def test_unregistered_theta_fails_with_listing(self):
        with pytest.raises(UnknownComponentError, match="linear"):
            SweepSpec(thetas=("cubic",)).validate()

    def test_unregistered_runner_fails_with_listing(self):
        with pytest.raises(UnknownComponentError, match="discover"):
            SweepSpec(runner="teleport").validate()

    def test_unknown_scale_fails(self):
        with pytest.raises(ConfigurationError, match="known presets"):
            SweepSpec(scale="galactic").validate()

    def test_valid_spec_returns_the_expanded_tasks(self):
        tasks = SweepSpec(strategies=("selfish",), seeds=(1, 2)).validate()
        assert [task.index for task in tasks] == [0, 1]


class TestExecutionPolicyFields:
    def test_retries_and_task_timeout_round_trip(self):
        spec = SweepSpec(strategies=("selfish",), retries=2, task_timeout=30.0)
        rebuilt = SweepSpec.from_dict(spec.to_dict())
        assert rebuilt.retries == 2
        assert rebuilt.task_timeout == 30.0

    def test_policy_fields_do_not_change_task_identity(self):
        from repro.sweep.store import task_hash

        plain = SweepSpec(strategies=("selfish",), seeds=(7,)).validate()[0]
        tolerant = SweepSpec(
            strategies=("selfish",), seeds=(7,), retries=3, task_timeout=5.0
        ).validate()[0]
        assert task_hash(tolerant) == task_hash(plain)

    def test_invalid_policy_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(retries=-1)
        with pytest.raises(ConfigurationError):
            SweepSpec(task_timeout=0.0)

    def test_spec_retries_drive_run_sweep(self):
        from repro.sweep import FaultPlan, FaultRule, run_sweep

        spec = SweepSpec(
            strategies=("selfish",),
            seeds=(7,),
            scale="quick",
            retries=1,
            overrides={
                "scenario_overrides": {
                    "num_peers": 12,
                    "num_categories": 3,
                    "documents_per_peer": 4,
                    "terms_per_document": 3,
                    "category_vocabulary_size": 15,
                    "queries_per_peer": 3,
                }
            },
        )
        plan = FaultPlan(
            rules=(FaultRule(fault="task-exception", index=0, attempts=(1,)),)
        )
        result = run_sweep(spec, faults=plan)
        assert not result.failures
        assert len(result.results) == 1
