"""Tests for the distributed sweep backend: coordinator/worker parity with
serial runs, lease expiry and reclaim, retry and quarantine through the
queue, fatal propagation, and the executor event ordering contract."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ConfigurationError
from repro.events import EventHooks
from repro.sweep import SweepSpec, run_sweep
from repro.sweep.distributed import (
    MAX_DEFAULT_SPAWN,
    DistributedSweepExecutor,
    run_worker,
)
from repro.sweep.executors import ExecutorContext
from repro.sweep.faults import KIND_CRASH, FaultPlan, FaultRule, RetryPolicy
from repro.sweep.queue import TaskQueue
from repro.sweep.store import ResultStore

TINY_SCENARIO = {
    "num_peers": 12,
    "num_categories": 3,
    "documents_per_peer": 4,
    "terms_per_document": 3,
    "category_vocabulary_size": 15,
    "queries_per_peer": 3,
}


def tiny_spec(**overrides) -> SweepSpec:
    values = {
        "strategies": ("selfish", "altruistic"),
        "scale": "quick",
        "overrides": {"scenario_overrides": dict(TINY_SCENARIO)},
        "seeds": (7, 11),
    }
    values.update(overrides)
    return SweepSpec(**values)


def payload(sweep_result):
    return [result.to_dict() for result in sweep_result.results]


def recording_hooks():
    """An EventHooks plus the ``(event, index, attempt)`` stream it records."""
    events = []
    hooks = EventHooks()
    for name in (
        "task_started",
        "task_finished",
        "task_failed",
        "task_retried",
        "task_quarantined",
        "lease_reclaimed",
    ):
        hooks.subscribe(
            name,
            (lambda n: lambda e: events.append((n, e.index, getattr(e, "attempt", None))))(
                name
            ),
        )
    return hooks, events


def run_with_thread_workers(spec, store_path, *, count=1, lease_timeout=None, **kwargs):
    """Drive a ``workers=0`` coordinator with in-thread external workers.

    The worker threads poll the store's queue exactly like external
    ``repro sweep-worker`` daemons would (they exit on the coordinator's
    STOP marker); running them on threads keeps these tests free of
    interpreter spawn cost.  Worker-kill faults degrade to ordinary
    injected exceptions in-thread (the process is not marked as a worker),
    so real-kill coverage lives in the spawned-daemon tests.
    """
    threads = [
        threading.Thread(
            target=run_worker,
            args=(store_path,),
            kwargs={"worker_id": f"thread-{index}", "poll_interval": 0.02},
            daemon=True,
        )
        for index in range(count)
    ]
    options = {"workers": 0, "poll_interval": 0.02}
    if lease_timeout is not None:
        options["lease_timeout"] = lease_timeout
    for thread in threads:
        thread.start()
    try:
        return run_sweep(
            spec,
            executor={"name": "distributed", "options": options},
            store=store_path,
            **kwargs,
        )
    finally:
        TaskQueue(store_path).request_stop()
        for thread in threads:
            thread.join(timeout=30.0)


class TestExecutorConstruction:
    def test_registered_under_its_names(self):
        from repro.registry import executor_registry

        assert "distributed" in executor_registry.names()
        assert executor_registry.get("queue") is executor_registry.get("distributed")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DistributedSweepExecutor(workers=-1)
        with pytest.raises(ConfigurationError):
            DistributedSweepExecutor(lease_timeout=0)
        with pytest.raises(ConfigurationError):
            DistributedSweepExecutor(heartbeat_interval=0)
        with pytest.raises(ConfigurationError):
            DistributedSweepExecutor(poll_interval=0)

    def test_default_spawn_is_capped(self):
        executor = DistributedSweepExecutor()
        assert 1 <= executor.workers <= MAX_DEFAULT_SPAWN

    def test_spawn_count_never_exceeds_tasks(self):
        executor = DistributedSweepExecutor(workers=8)
        assert executor.spawn_count(3) == 3
        assert executor.spawn_count(20) == 8
        assert DistributedSweepExecutor(workers=0).spawn_count(20) == 0

    def test_describe(self):
        assert DistributedSweepExecutor(workers=3).describe() == "distributed(3)"
        assert DistributedSweepExecutor(workers=0).describe() == "distributed(external)"

    def test_worker_config_publishes_the_policy(self):
        executor = DistributedSweepExecutor(workers=0, lease_timeout=8.0)
        context = ExecutorContext(
            retry_policy=RetryPolicy(max_attempts=3),
            task_timeout=12.0,
            faults=FaultPlan(rules=(FaultRule(fault="task-exception", index=0),)),
        )
        config = executor.worker_config(context)
        assert config["retry_policy"]["max_attempts"] == 3
        assert config["task_timeout"] == 12.0
        assert config["lease_timeout"] == 8.0
        assert config["heartbeat_interval"] == 2.0
        assert config["faults"]["rules"][0]["fault"] == "task-exception"


class TestThreadWorkerParity:
    def test_external_workers_match_serial_byte_for_byte(self, tmp_path):
        spec = tiny_spec()
        reference = run_sweep(spec)
        distributed = run_with_thread_workers(spec, str(tmp_path / "store"), count=2)
        assert payload(distributed) == payload(reference)
        assert distributed.executor == "distributed(external)"

    def test_retry_through_the_queue_matches_serial(self, tmp_path):
        spec = tiny_spec()
        reference = run_sweep(spec)
        hooks, events = recording_hooks()
        plan = FaultPlan(rules=(FaultRule(fault="task-exception", index=1, attempts=(1,)),))
        distributed = run_with_thread_workers(
            spec, str(tmp_path / "store"), retries=1, faults=plan, hooks=hooks
        )
        assert payload(distributed) == payload(reference)
        assert not distributed.failures
        assert ("task_failed", 1, 1) in events
        assert ("task_retried", 1, 2) in events
        # Contract rule 2: the failure precedes the retry's start.
        assert events.index(("task_failed", 1, 1)) < events.index(("task_started", 1, 2))

    def test_exhausted_budget_quarantines_through_the_store(self, tmp_path):
        spec = tiny_spec(seeds=(7,))
        plan = FaultPlan(
            rules=(FaultRule(fault="task-exception", index=0, attempts=()),)
        )  # empty attempts = fail every attempt
        hooks, events = recording_hooks()
        store_path = str(tmp_path / "store")
        distributed = run_with_thread_workers(
            spec, store_path, retries=1, faults=plan, hooks=hooks
        )
        assert [failure.index for failure in distributed.failures] == [0]
        assert len(distributed.results) == len(distributed.tasks) - 1
        assert ("task_quarantined", 0, None) in events
        assert ResultStore(store_path).get_failure(distributed.failures[0].task_hash)

    def test_first_attempt_starts_arrive_in_index_order(self, tmp_path):
        hooks, events = recording_hooks()
        run_with_thread_workers(tiny_spec(), str(tmp_path / "store"), hooks=hooks, count=2)
        first_starts = [
            index for name, index, attempt in events if name == "task_started" and attempt == 1
        ]
        assert first_starts == sorted(first_starts)

    def test_fatal_misconfiguration_aborts_the_sweep(self, tmp_path, monkeypatch):
        def explode(*args, **kwargs):
            raise ConfigurationError("deterministically broken")

        monkeypatch.setattr("repro.sweep.distributed.execute_task", explode)
        with pytest.raises(ConfigurationError, match="deterministically broken"):
            run_with_thread_workers(tiny_spec(seeds=(7,)), str(tmp_path / "store"))

    def test_resume_skips_everything_stored(self, tmp_path):
        spec = tiny_spec()
        store_path = str(tmp_path / "store")
        run_with_thread_workers(spec, store_path)
        again = run_with_thread_workers(spec, store_path)
        assert again.executed == 0
        assert again.loaded == len(again.tasks)


class TestRunWorker:
    def test_drain_exits_on_empty_queue(self, tmp_path):
        assert run_worker(str(tmp_path), drain=True) == 0

    def test_should_stop_exits_the_loop(self, tmp_path):
        stop = threading.Event()
        stop.set()
        assert run_worker(str(tmp_path), should_stop=stop.is_set) == 0

    def test_stop_marker_exits_the_loop(self, tmp_path):
        queue = TaskQueue(tmp_path)
        queue.request_stop()
        assert run_worker(str(tmp_path)) == 0

    def test_worker_deregisters_on_exit(self, tmp_path):
        run_worker(str(tmp_path), worker_id="w1", drain=True)
        assert list(TaskQueue(tmp_path).worker_statuses()) == []


class TestSpawnedWorkers:
    """End-to-end runs with real ``repro sweep-worker`` daemon processes."""

    def test_spawned_workers_match_serial_byte_for_byte(self, tmp_path):
        spec = tiny_spec()
        reference = run_sweep(spec)
        distributed = run_sweep(
            spec,
            executor={
                "name": "distributed",
                "options": {"workers": 2, "lease_timeout": 20, "poll_interval": 0.02},
            },
            store=str(tmp_path / "store"),
        )
        assert payload(distributed) == payload(reference)
        assert distributed.executor == "distributed(2)"

    def test_runs_without_a_store_through_a_temporary_one(self):
        spec = tiny_spec(seeds=(7,))
        reference = run_sweep(spec)
        distributed = run_sweep(
            spec,
            executor={
                "name": "distributed",
                "options": {"workers": 1, "lease_timeout": 20, "poll_interval": 0.02},
            },
        )
        assert payload(distributed) == payload(reference)

    def test_killed_worker_loses_its_lease_and_the_task_is_requeued_once(self, tmp_path):
        """The satellite contract: a worker killed mid-task loses its lease,
        the task is requeued exactly once, and the final results are
        byte-identical to serial with nothing re-executed on resume."""
        spec = tiny_spec()
        reference = run_sweep(spec)
        hooks, events = recording_hooks()
        plan = FaultPlan(rules=(FaultRule(fault="worker-kill", index=1, attempts=(1,)),))
        store_path = str(tmp_path / "store")
        distributed = run_sweep(
            spec,
            executor={
                "name": "distributed",
                "options": {"workers": 2, "lease_timeout": 3, "poll_interval": 0.02},
            },
            store=store_path,
            retries=1,
            faults=plan,
            hooks=hooks,
        )
        assert payload(distributed) == payload(reference)
        assert not distributed.failures
        reclaims = [event for event in events if event[0] == "lease_reclaimed"]
        assert reclaims == [("lease_reclaimed", 1, 1)]
        crash_failures = [event for event in events if event[0] == "task_failed"]
        assert crash_failures == [("task_failed", 1, 1)]
        assert events.count(("task_retried", 1, 2)) == 1
        assert events.count(("task_started", 1, 2)) == 1
        # The crash-failure/retry pair precedes the second attempt's start.
        assert events.index(("task_failed", 1, 1)) < events.index(("task_started", 1, 2))
        # Resume re-executes nothing.
        again = run_sweep(spec, executor="distributed", store=store_path)
        assert again.executed == 0
        assert again.loaded == len(again.tasks)
        assert payload(again) == payload(reference)


class TestLeaseReclaimWithoutWorkers:
    def test_coordinator_reclaims_an_abandoned_lease(self, tmp_path):
        """A lease whose worker never heartbeats expires and is requeued on
        the crash budget — exercised coordinator-side with no real worker
        death by pre-claiming one entry from a worker that will never renew."""
        spec = tiny_spec(seeds=(7,))
        store_path = str(tmp_path / "store")
        store = ResultStore(store_path)
        tasks = spec.validate()
        queue = TaskQueue(store.root, lease_timeout=1.0)
        from repro.sweep.queue import QueueEntry
        from repro.sweep.store import task_hash

        victim = tasks[0]
        queue.enqueue(
            QueueEntry(task=victim.to_dict(), task_hash=task_hash(victim), index=victim.index)
        )
        queue.claim("dead-worker")  # fresh heartbeat, but never renewed

        hooks, events = recording_hooks()
        result = run_with_thread_workers(
            spec,
            store_path,
            lease_timeout=1.0,
            retries={"crash_requeues": 1},
            hooks=hooks,
        )
        # The fresh lease was adopted at startup, expired one lease timeout
        # later, and the task still completed through the requeue.
        assert len(result.results) == len(tasks)
        assert ("lease_reclaimed", 0, 1) in events
        crash = next(event for event in events if event[0] == "task_failed")
        assert crash == ("task_failed", 0, 1)
