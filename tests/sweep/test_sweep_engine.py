"""Tests for the process-pool sweep executor and result aggregation."""

from __future__ import annotations

import statistics

import pytest

from repro.errors import ConfigurationError
from repro.events import EventHooks
from repro.sweep import SweepSpec, read_jsonl, run_sweep

#: Scenario small enough that one task runs in a few milliseconds.
TINY_SCENARIO = {
    "num_peers": 12,
    "num_categories": 3,
    "documents_per_peer": 4,
    "terms_per_document": 3,
    "category_vocabulary_size": 15,
    "queries_per_peer": 3,
}


def tiny_spec(**overrides) -> SweepSpec:
    values = {
        "strategies": ("selfish", "altruistic"),
        "scale": "quick",
        "overrides": {"scenario_overrides": dict(TINY_SCENARIO)},
        "seeds": (7, 11),
    }
    values.update(overrides)
    return SweepSpec(**values)


class TestDeterminism:
    def test_worker_count_does_not_change_results(self):
        spec = tiny_spec()
        serial = run_sweep(spec, workers=1)
        pooled = run_sweep(spec, workers=4)
        assert len(serial) == len(pooled) == 4
        assert [task.to_dict() for task in serial.tasks] == [
            task.to_dict() for task in pooled.tasks
        ]
        # byte-identical results, not just approximately equal
        assert [r.to_dict() for r in serial.results] == [r.to_dict() for r in pooled.results]

    def test_rerunning_the_same_spec_is_reproducible(self):
        spec = tiny_spec(seeds=None, replications=3)
        first = run_sweep(spec, workers=2)
        second = run_sweep(spec, workers=3)
        assert [r.to_dict() for r in first.results] == [r.to_dict() for r in second.results]

    def test_results_are_ordered_by_task_index(self):
        result = run_sweep(tiny_spec(), workers=4)
        for task, run in zip(result.tasks, result.results):
            assert run.config["seed"] == task.config["seed"]
            assert run.config["strategy"] == task.config["strategy"]


class TestEvents:
    def test_progress_events_stream_through_hooks(self):
        hooks = EventHooks()
        started, finished, ended = [], [], []
        hooks.on_task_started(started.append)
        hooks.on_task_finished(finished.append)
        hooks.on_sweep_end(ended.append)
        run_sweep(tiny_spec(), workers=2, hooks=hooks)
        assert len(started) == len(finished) == 4
        assert sorted(event.index for event in started) == [0, 1, 2, 3]
        assert sorted(event.index for event in finished) == [0, 1, 2, 3]
        assert sorted(event.completed for event in finished) == [1, 2, 3, 4]
        assert all(event.total == 4 for event in started + finished)
        assert all(event.duration >= 0.0 for event in finished)
        (end_event,) = ended
        assert end_event.total == 4
        assert end_event.workers == 2

    def test_serial_path_emits_the_same_events(self):
        hooks = EventHooks()
        order = []
        hooks.on_task_started(lambda event: order.append(("start", event.index)))
        hooks.on_task_finished(lambda event: order.append(("finish", event.index)))
        run_sweep(tiny_spec(seeds=(7,)), workers=1, hooks=hooks)
        assert order == [("start", 0), ("finish", 0), ("start", 1), ("finish", 1)]


class TestPersistence:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        spec = tiny_spec()
        result = run_sweep(spec, workers=2, jsonl_path=str(path))
        loaded_spec, records = read_jsonl(str(path))
        assert loaded_spec == spec
        assert len(records) == len(result.results)
        for record, task, run in zip(records, result.tasks, result.results):
            assert record["task"] == task.to_dict()
            assert record["result"] == run.to_dict()
            assert record["duration"] >= 0.0

    def test_read_jsonl_rejects_non_sweep_files(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"kind": "something-else"}\n', encoding="utf-8")
        with pytest.raises(ConfigurationError, match="missing header"):
            read_jsonl(str(path))


class TestAggregation:
    def test_summarize_pools_replications_per_configuration(self):
        result = run_sweep(tiny_spec(), workers=1)
        summary = result.summarize(metrics=("rounds",), group_by=("strategy",))
        assert set(summary) == {("selfish",), ("altruistic",)}
        for (strategy,), per_metric in summary.items():
            values = [
                float(run.rounds)
                for task, run in zip(result.tasks, result.results)
                if task.config["strategy"] == strategy
            ]
            stats = per_metric["rounds"]
            assert stats.count == 2
            assert stats.mean == pytest.approx(statistics.mean(values))
            if len(set(values)) > 1:
                assert stats.stddev == pytest.approx(statistics.stdev(values))
            assert stats.ci_low <= stats.mean <= stats.ci_high

    def test_summary_table_renders_groups_and_metrics(self):
        result = run_sweep(tiny_spec(), workers=1)
        table = result.summary_table(metrics=("final_social_cost",), group_by=("strategy",))
        assert "selfish" in table
        assert "final_social_cost" in table
        assert "ci95 low" in table

    def test_unknown_metric_is_rejected(self):
        result = run_sweep(tiny_spec(seeds=(7,)), workers=1)
        with pytest.raises(ConfigurationError, match="unknown sweep metric"):
            result.metric_values("not_a_metric")

    def test_extras_are_reachable_as_metrics(self):
        spec = SweepSpec(
            tasks=(
                {
                    "config": {
                        "scale": "quick",
                        "initial": "category",
                        "scenario_overrides": dict(TINY_SCENARIO),
                    },
                    "runner": "maintenance-point",
                    "options": {
                        "update_target": "workload",
                        "update_kind": "updated-peers",
                        "fraction": 0.5,
                    },
                },
            )
        )
        result = run_sweep(spec, workers=1)
        assert result.metric_values("social_cost_before") == [
            result.results[0].extras["social_cost_before"]
        ]


class TestRunners:
    def test_maintain_runner_runs_periods(self):
        spec = SweepSpec(
            tasks=(
                {
                    "config": {
                        "scale": "quick",
                        "initial": "category",
                        "scenario_overrides": dict(TINY_SCENARIO),
                    },
                    "runner": "maintain",
                    "options": {"periods": 2},
                },
            )
        )
        result = run_sweep(spec, workers=1)
        (run,) = result.results
        assert run.kind == "maintenance"
        assert run.num_periods == 2

    def test_worker_count_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="workers"):
            run_sweep(tiny_spec(), workers=0)
