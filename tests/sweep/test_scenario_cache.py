"""Tests for the per-worker scenario cache (copy-on-write for mutating runners)."""

from __future__ import annotations

import pytest

from repro.session.config import SessionConfig
from repro.sweep import SweepSpec, run_sweep
from repro.sweep.cache import (
    ENV_FLAG,
    clear_scenario_cache,
    runner_mutates_scenario,
    scenario_cache_enabled,
    scenario_cache_info,
    scenario_data_for,
)
from repro.sweep.runners import resolve_runner

TINY_SCENARIO = {
    "num_peers": 12,
    "num_categories": 3,
    "documents_per_peer": 4,
    "terms_per_document": 3,
    "category_vocabulary_size": 15,
    "queries_per_peer": 3,
}


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_scenario_cache()
    yield
    clear_scenario_cache()


def tiny_config(**overrides) -> SessionConfig:
    values = {"scale": "quick", "scenario_overrides": dict(TINY_SCENARIO)}
    values.update(overrides)
    return SessionConfig(**values)


class TestMemoisation:
    def test_same_key_hits_the_cache(self):
        first = scenario_data_for(tiny_config(), mutates=False)
        second = scenario_data_for(tiny_config(), mutates=False)
        assert second is first
        info = scenario_cache_info()
        assert info == {"size": 1, "hits": 1, "misses": 1, "copies": 0, "store_hits": 0}

    def test_scenario_aliases_share_an_entry(self):
        first = scenario_data_for(tiny_config(scenario="same-category"), mutates=False)
        second = scenario_data_for(tiny_config(scenario="same_category"), mutates=False)
        assert second is first

    def test_different_seeds_are_different_entries(self):
        overrides = dict(TINY_SCENARIO)
        overrides["seed"] = 99
        first = scenario_data_for(tiny_config(), mutates=False)
        second = scenario_data_for(
            tiny_config(scenario_overrides=overrides), mutates=False
        )
        assert second is not first
        assert scenario_cache_info()["size"] == 2

    def test_cached_build_equals_fresh_build(self):
        from repro.datasets.scenarios import build_scenario

        cached = scenario_data_for(tiny_config(), mutates=False)
        fresh = build_scenario(
            "same-category", tiny_config().experiment_config().scenario
        )
        assert cached.peer_ids() == fresh.peer_ids()
        for peer_id in cached.peer_ids():
            cached_peer = cached.network.peer(peer_id)
            fresh_peer = fresh.network.peer(peer_id)
            assert dict(cached_peer.workload.items()) == dict(fresh_peer.workload.items())


class TestCopyOnWrite:
    def test_mutating_access_returns_a_private_copy(self):
        shared = scenario_data_for(tiny_config(), mutates=False)
        private = scenario_data_for(tiny_config(), mutates=True)
        assert private is not shared
        assert private.network is not shared.network
        assert scenario_cache_info()["copies"] == 1

    def test_copy_does_not_carry_derived_model_caches(self):
        shared = scenario_data_for(tiny_config(), mutates=False)
        shared.network.recall_matrix()  # populate the shared caches
        private = scenario_data_for(tiny_config(), mutates=True)
        assert private.network._matrix is None
        assert private.network._recall_model is None

    def test_mutating_the_copy_leaves_the_pristine_entry_intact(self):
        private = scenario_data_for(tiny_config(), mutates=True)
        peer_id = private.peer_ids()[0]
        private.network.remove_peer(peer_id)
        shared = scenario_data_for(tiny_config(), mutates=False)
        assert peer_id in shared.network

    def test_runner_mutation_flags(self):
        assert runner_mutates_scenario(resolve_runner("maintain"))
        assert runner_mutates_scenario(resolve_runner("maintenance-point"))
        assert runner_mutates_scenario(resolve_runner("figure4-point"))
        assert not runner_mutates_scenario(resolve_runner("discover"))
        assert runner_mutates_scenario(object())  # undeclared runners are mutating


class TestEnvironmentSwitch:
    def test_flag_disables_the_cache(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "0")
        assert not scenario_cache_enabled()
        monkeypatch.setenv(ENV_FLAG, "off")
        assert not scenario_cache_enabled()
        monkeypatch.setenv(ENV_FLAG, "1")
        assert scenario_cache_enabled()
        monkeypatch.delenv(ENV_FLAG)
        assert scenario_cache_enabled()


class TestSweepParity:
    """Worker-count / cache-state independence of sweep results."""

    def maintenance_spec(self) -> SweepSpec:
        task = {
            "config": {
                "scale": "quick",
                "initial": "category",
                "scenario_overrides": dict(TINY_SCENARIO),
            },
            "runner": "maintenance-point",
            "options": {
                "update_target": "workload",
                "update_kind": "updated-peers",
                "fraction": 0.5,
            },
        }
        return SweepSpec(tasks=(task, task, task))

    def test_mutating_runner_parity_across_workers_with_cache(self):
        spec = self.maintenance_spec()
        serial = run_sweep(spec, workers=1)
        pooled = run_sweep(spec, workers=3)
        assert [r.to_dict() for r in serial.results] == [
            r.to_dict() for r in pooled.results
        ]
        # In the serial run the three identical tasks shared one cache entry.
        info = scenario_cache_info()
        assert info["misses"] == 1
        assert info["hits"] == 2
        assert info["copies"] == 3

    def test_cache_on_equals_cache_off(self):
        spec = SweepSpec(
            strategies=("selfish", "altruistic"),
            scale="quick",
            overrides={"scenario_overrides": dict(TINY_SCENARIO)},
            seeds=(7, 11),
        )
        with_cache = run_sweep(spec, workers=1)
        clear_scenario_cache()
        without_cache = run_sweep(spec, workers=1, scenario_cache=False)
        assert [r.to_dict() for r in with_cache.results] == [
            r.to_dict() for r in without_cache.results
        ]
        assert scenario_cache_info()["misses"] == 0  # cache really was off


class TestSharingSemantics:
    def test_grid_siblings_share_but_replications_do_not(self):
        """Same-seed grid combinations hit one entry; replication seeds are distinct keys."""
        spec = SweepSpec(
            strategies=("selfish", "altruistic"),
            scale="quick",
            overrides={"scenario_overrides": dict(TINY_SCENARIO)},
            replications=2,
        )
        run_sweep(spec, workers=1)
        info = scenario_cache_info()
        # 2 strategies x 2 replication seeds = 4 tasks over 2 distinct worlds.
        assert info["misses"] == 2
        assert info["hits"] == 2
