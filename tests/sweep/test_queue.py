"""Tests for the filesystem work queue: entries, atomic claims, leases,
failure records, stop/fatal markers and the read-only status snapshot."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.sweep.queue import (
    DEFAULT_LEASE_TIMEOUT,
    QueueEntry,
    TaskQueue,
    default_worker_id,
)
from repro.sweep.store import ResultStore

HASH_A = "a" * 64
HASH_B = "b" * 64


def entry_for(index: int, hash_hex: str = HASH_A, **overrides) -> QueueEntry:
    values = {"task": {"index": index}, "task_hash": hash_hex, "index": index}
    values.update(overrides)
    return QueueEntry(**values)


class TestQueueEntry:
    def test_name_encodes_zero_padded_index_and_hash(self):
        entry = entry_for(7)
        assert entry.name == f"00000007.{HASH_A}.json"

    def test_lexicographic_name_order_is_index_order(self):
        names = [entry_for(index).name for index in (0, 3, 10, 250)]
        assert sorted(names) == names

    def test_dict_round_trip(self):
        entry = entry_for(
            2, attempt=3, failures=1, crashes=1, not_before=12.5, worker="w1"
        )
        clone = QueueEntry.from_dict(json.loads(json.dumps(entry.to_dict())))
        assert clone == entry

    def test_round_trip_defaults_stay_compact(self):
        record = entry_for(0).to_dict()
        assert "not_before" not in record
        assert "worker" not in record
        assert QueueEntry.from_dict(record) == entry_for(0)


class TestClaims:
    def test_claim_takes_lowest_index_first(self, tmp_path):
        queue = TaskQueue(tmp_path)
        for index in (4, 1, 9):
            queue.enqueue(entry_for(index))
        lease = queue.claim("w1")
        assert lease is not None
        assert lease.entry.index == 1
        assert lease.entry.worker == "w1"

    def test_claim_moves_entry_between_directories(self, tmp_path):
        queue = TaskQueue(tmp_path)
        queue.enqueue(entry_for(0))
        lease = queue.claim("w1")
        assert queue.pending_names() == []
        assert queue.lease_names() == [lease.entry.name]

    def test_claim_respects_backoff_window(self, tmp_path):
        queue = TaskQueue(tmp_path)
        queue.enqueue(entry_for(0, not_before=time.time() + 3600))
        queue.enqueue(entry_for(1))
        lease = queue.claim("w1")
        assert lease is not None
        assert lease.entry.index == 1
        assert queue.claim("w1") is None  # the deferred entry stays deferred

    def test_contended_claim_has_exactly_one_winner(self, tmp_path):
        first = TaskQueue(tmp_path)
        second = TaskQueue(tmp_path)
        first.enqueue(entry_for(0))
        a = first.claim("w1")
        b = second.claim("w2")
        assert (a is None) != (b is None)

    def test_empty_reflects_both_directories(self, tmp_path):
        queue = TaskQueue(tmp_path)
        assert queue.empty()
        queue.enqueue(entry_for(0))
        assert not queue.empty()
        lease = queue.claim("w1")
        assert not queue.empty()
        lease.release()
        assert queue.empty()


class TestLeases:
    def test_renew_touches_heartbeat(self, tmp_path):
        queue = TaskQueue(tmp_path)
        queue.enqueue(entry_for(0))
        lease = queue.claim("w1")
        past = time.time() - 120
        os.utime(lease.path, (past, past))
        assert lease.renew()
        assert time.time() - lease.path.stat().st_mtime < 60

    def test_renew_reports_a_stolen_lease(self, tmp_path):
        queue = TaskQueue(tmp_path)
        queue.enqueue(entry_for(0))
        lease = queue.claim("w1")
        os.unlink(lease.path)
        assert not lease.renew()
        assert lease.lost
        assert not lease.renew()  # stays lost

    def test_requeue_from_lease_strips_the_worker(self, tmp_path):
        queue = TaskQueue(tmp_path)
        queue.enqueue(entry_for(0))
        lease = queue.claim("w1")
        entry = lease.entry
        entry.attempt = 2
        queue.requeue_from_lease(entry.name, entry)
        assert queue.lease_names() == []
        requeued = queue.read_entry(queue.pending_dir / entry.name)
        assert requeued.attempt == 2
        assert requeued.worker is None

    def test_discard_lease_drops_without_requeue(self, tmp_path):
        queue = TaskQueue(tmp_path)
        queue.enqueue(entry_for(0))
        lease = queue.claim("w1")
        queue.discard_lease(lease.entry.name)
        assert queue.empty()


class TestFailureRecords:
    def test_record_and_read_round_trip(self, tmp_path):
        queue = TaskQueue(tmp_path)
        entry = entry_for(3, attempt=2)
        queue.record_failure(
            entry, {"type": "ValueError", "message": "boom"}, will_retry=True, delay=0.5
        )
        names = queue.failure_records()
        assert names == [queue.failure_name(3, 2)]
        record = queue.read_failure(names[0])
        assert record["index"] == 3
        assert record["attempt"] == 2
        assert record["will_retry"] is True
        assert record["error"]["type"] == "ValueError"
        queue.clear_failure(names[0])
        assert queue.failure_records() == []

    def test_records_sort_by_index_then_attempt(self, tmp_path):
        queue = TaskQueue(tmp_path)
        for index, attempt in ((2, 1), (0, 2), (0, 1)):
            queue.record_failure(
                entry_for(index, attempt=attempt), {}, will_retry=False, delay=0.0
            )
        assert queue.failure_records() == [
            queue.failure_name(0, 1),
            queue.failure_name(0, 2),
            queue.failure_name(2, 1),
        ]


class TestMarkersAndConfig:
    def test_config_round_trip(self, tmp_path):
        queue = TaskQueue(tmp_path)
        assert queue.read_config() == {}
        queue.write_config({"lease_timeout": 5.0})
        assert queue.read_config() == {"lease_timeout": 5.0}

    def test_stop_marker(self, tmp_path):
        queue = TaskQueue(tmp_path)
        assert not queue.stop_requested()
        queue.request_stop()
        assert queue.stop_requested()
        queue.clear_stop()
        assert not queue.stop_requested()

    def test_fatal_record_round_trip(self, tmp_path):
        queue = TaskQueue(tmp_path)
        assert queue.read_fatal() is None
        queue.record_fatal({"type": "ConfigurationError", "message": "bad"})
        assert queue.read_fatal()["type"] == "ConfigurationError"
        queue.clear_fatal()
        assert queue.read_fatal() is None


class TestWorkers:
    def test_register_heartbeat_deregister(self, tmp_path):
        queue = TaskQueue(tmp_path)
        queue.register_worker("w1")
        statuses = list(queue.worker_statuses())
        assert [status.worker_id for status in statuses] == ["w1"]
        assert statuses[0].live
        queue.deregister_worker("w1")
        assert list(queue.worker_statuses()) == []

    def test_stale_heartbeat_is_not_live(self, tmp_path):
        queue = TaskQueue(tmp_path, lease_timeout=5.0)
        queue.register_worker("w1")
        path = queue.workers_dir / "w1.json"
        past = time.time() - 3600
        os.utime(path, (past, past))
        (status,) = queue.worker_statuses()
        assert not status.live
        assert status.age > 5.0

    def test_heartbeat_recreates_a_removed_file(self, tmp_path):
        queue = TaskQueue(tmp_path)
        queue.heartbeat_worker("w1")
        assert (queue.workers_dir / "w1.json").exists()

    def test_default_worker_id_is_host_and_pid(self):
        assert str(os.getpid()) in default_worker_id()


class TestStatus:
    def test_status_counts_everything(self, tmp_path):
        store = ResultStore(tmp_path)
        queue = TaskQueue(tmp_path, lease_timeout=5.0)
        queue.enqueue(entry_for(0))
        queue.enqueue(entry_for(1, hash_hex=HASH_B))
        queue.claim("w1")
        queue.register_worker("w1")
        queue.record_failure(entry_for(2), {}, will_retry=False, delay=0.0)
        status = queue.status(store)
        assert status.pending == 1
        assert status.claimed == 1
        assert status.expired == 0
        assert status.failure_records == 1
        assert status.live_workers == 1
        assert not status.stop_requested

    def test_status_flags_expired_leases(self, tmp_path):
        queue = TaskQueue(tmp_path, lease_timeout=5.0)
        queue.enqueue(entry_for(0))
        lease = queue.claim("w1")
        past = time.time() - 3600
        os.utime(lease.path, (past, past))
        status = queue.status()
        assert status.claimed == 1
        assert status.expired == 1

    def test_status_is_read_only(self, tmp_path):
        queue = TaskQueue(tmp_path)
        queue.enqueue(entry_for(0))
        before = (queue.pending_dir / entry_for(0).name).stat().st_mtime
        queue.status()
        assert queue.pending_names() == [entry_for(0).name]
        assert (queue.pending_dir / entry_for(0).name).stat().st_mtime == before


class TestDefaults:
    def test_default_lease_timeout_is_generous(self):
        assert DEFAULT_LEASE_TIMEOUT >= 10.0

    def test_queue_lives_inside_the_store_root(self, tmp_path):
        queue = TaskQueue(tmp_path)
        assert queue.root == tmp_path / "queue"
        store_queue = TaskQueue.for_store(ResultStore(tmp_path / "s"))
        assert store_queue.root == tmp_path / "s" / "queue"
