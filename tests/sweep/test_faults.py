"""Tests for the fault-tolerance primitives: retry policies, fault plans,
failure records and the worker-side timeout guard."""

from __future__ import annotations

import json
import time

import pytest

from repro.errors import ConfigurationError, InjectedFaultError, TaskTimeoutError
from repro.sweep.faults import (
    ENV_FAULTS,
    FAULT_MODELS,
    FaultPlan,
    FaultRule,
    RetryPolicy,
    TaskFailure,
    failure_payload,
    task_timeout_guard,
    timeout_enforcement_available,
    trigger_fault,
)

HASH_A = "a" * 64
HASH_B = "b" * 64


class TestRetryPolicy:
    def test_defaults_mean_no_retries(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 1
        assert policy.retries == 0

    def test_from_any_accepts_int_as_retry_count(self):
        policy = RetryPolicy.from_any(2)
        assert policy.max_attempts == 3
        assert policy.retries == 2

    def test_from_any_accepts_mapping_with_retries_alias(self):
        policy = RetryPolicy.from_any({"retries": 1, "backoff": 0.5})
        assert policy.max_attempts == 2
        assert policy.backoff == 0.5

    def test_from_any_passthrough_and_none(self):
        policy = RetryPolicy(max_attempts=4)
        assert RetryPolicy.from_any(policy) is policy
        assert RetryPolicy.from_any(None) == RetryPolicy()

    def test_from_any_rejects_bools_and_unknown_keys(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy.from_any(True)
        with pytest.raises(ConfigurationError, match="unknown"):
            RetryPolicy.from_any({"attempts": 3})

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(crash_requeues=-1)

    def test_delay_is_zero_without_backoff(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.delay(HASH_A, 1) == 0.0

    def test_delay_is_deterministic_per_hash_and_attempt(self):
        policy = RetryPolicy(max_attempts=4, backoff=0.5, jitter=0.5)
        first = policy.delay(HASH_A, 1)
        assert first == policy.delay(HASH_A, 1)
        assert policy.delay(HASH_A, 2) != first or policy.delay(HASH_B, 1) != first

    def test_delay_grows_and_caps(self):
        policy = RetryPolicy(
            max_attempts=10, backoff=1.0, backoff_multiplier=2.0, max_backoff=3.0, jitter=0.0
        )
        assert policy.delay(HASH_A, 1) == 1.0
        assert policy.delay(HASH_A, 2) == 2.0
        assert policy.delay(HASH_A, 3) == 3.0  # capped
        assert policy.delay(HASH_A, 7) == 3.0

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(max_attempts=5, backoff=1.0, jitter=0.25)
        for attempt in range(1, 5):
            delay = policy.delay(HASH_A, attempt)
            base = min(1.0 * 2.0 ** (attempt - 1), policy.max_backoff)
            assert base * 0.75 <= delay <= base * 1.25


class TestFaultRules:
    def test_rule_matches_by_hash_prefix_and_attempt(self):
        rule = FaultRule(fault="task-exception", task_hash=HASH_A[:8], attempts=(1,))
        assert rule.matches(HASH_A, 0, 1)
        assert not rule.matches(HASH_A, 0, 2)
        assert not rule.matches(HASH_B, 0, 1)

    def test_rule_matches_by_index(self):
        rule = FaultRule(fault="task-hang", index=3)
        assert rule.matches(HASH_A, 3, 1)
        assert not rule.matches(HASH_A, 2, 1)

    def test_empty_attempts_match_every_attempt(self):
        rule = FaultRule(fault="task-exception", index=0, attempts=())
        for attempt in (1, 2, 5):
            assert rule.matches(HASH_A, 0, attempt)

    def test_unknown_fault_model_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultRule(fault="cosmic-ray")
        assert "task-exception" in FAULT_MODELS

    def test_plan_first_matching_rule_wins(self):
        plan = FaultPlan(
            rules=(
                FaultRule(fault="task-exception", index=0),
                FaultRule(fault="task-hang", index=0),
            )
        )
        rule = plan.match(HASH_A, 0, 1)
        assert rule is not None and rule.fault == "task-exception"
        assert plan.match(HASH_A, 1, 1) is None

    def test_plan_round_trips_through_json(self):
        plan = FaultPlan(
            rules=(
                FaultRule(fault="worker-kill", index=2, attempts=(1,)),
                FaultRule(fault="task-hang", task_hash="ab", options={"seconds": 0.1}),
            )
        )
        rebuilt = FaultPlan.from_any(json.loads(json.dumps(plan.to_dict())))
        assert rebuilt == plan

    def test_from_any_accepts_rule_sequences_and_none(self):
        rule = FaultRule(fault="task-exception", index=0)
        plan = FaultPlan.from_any([rule])
        assert plan.rules == (rule,)
        assert not FaultPlan.from_any(None)
        assert FaultPlan.from_any(plan) is plan

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(ENV_FAULTS, raising=False)
        assert not FaultPlan.from_env()
        monkeypatch.setenv(
            ENV_FAULTS, '{"rules": [{"fault": "task-exception", "index": 1}]}'
        )
        plan = FaultPlan.from_env()
        assert plan and plan.rules[0].index == 1
        monkeypatch.setenv(ENV_FAULTS, "not json")
        with pytest.raises(ConfigurationError):
            FaultPlan.from_env()

    def test_rule_dict_with_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            FaultRule.from_dict({"fault": "task-exception", "when": "always"})

    def test_trigger_exception_raises_injected_fault(self):
        rule = FaultRule(fault="task-exception", options={"message": "boom"})
        with pytest.raises(InjectedFaultError, match="boom"):
            trigger_fault(rule)

    def test_worker_kill_outside_a_worker_degrades_to_an_exception(self):
        # The coordinator process must never be os._exit()ed by a plan.
        rule = FaultRule(fault="worker-kill")
        with pytest.raises(InjectedFaultError):
            trigger_fault(rule)


class TestTaskFailure:
    def test_round_trip(self):
        failure = TaskFailure(
            index=3,
            task_hash=HASH_A,
            attempts=2,
            error_type="ValueError",
            message="bad",
            kind="exception",
            injected=False,
            traceback="trace",
        )
        assert TaskFailure.from_dict(failure.to_dict()) == failure

    def test_failure_payload_classifies_timeouts_and_injections(self):
        timeout = failure_payload(TaskTimeoutError(1.5), attempt=2)
        assert timeout["kind"] == "timeout"
        assert timeout["attempt"] == 2
        injected = failure_payload(InjectedFaultError("x"), attempt=1)
        assert injected["injected"] is True
        plain = failure_payload(ValueError("y"), attempt=1)
        assert plain["kind"] == "exception" and plain["injected"] is False


class TestTimeoutGuard:
    @pytest.mark.skipif(
        not timeout_enforcement_available(), reason="needs SIGALRM on the main thread"
    )
    def test_guard_interrupts_a_hang(self):
        start = time.monotonic()
        with pytest.raises(TaskTimeoutError):
            with task_timeout_guard(0.2):
                time.sleep(5.0)
        assert time.monotonic() - start < 2.0

    @pytest.mark.skipif(
        not timeout_enforcement_available(), reason="needs SIGALRM on the main thread"
    )
    def test_guard_is_a_noop_when_work_finishes_in_time(self):
        with task_timeout_guard(5.0) as armed:
            assert armed
        # The timer must be disarmed: sleeping past nothing raises nothing.
        time.sleep(0.01)

    def test_guard_without_timeout_never_arms(self):
        with task_timeout_guard(None) as armed:
            assert not armed
