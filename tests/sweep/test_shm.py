"""Tests for the shared-memory scenario tier (:mod:`repro.sweep.shm`).

The contract: with the tier on, a multi-process sweep's results are
byte-identical to the tier-off run (and to a serial run), the coordinator
owns the segment lifecycle (nothing leaks into ``/dev/shm``), and every
failure mode degrades to the ordinary per-worker build path.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.sweep import SweepSpec, run_sweep
from repro.sweep.shm import (
    ScenarioArrayServer,
    adopt_shared_matrix,
    clear_attached,
    consume_degraded_keys,
    scenario_shm_key,
    shared_memory_available,
    unlink_segments,
)

TINY_SCENARIO = {
    "num_peers": 12,
    "num_categories": 3,
    "documents_per_peer": 4,
    "terms_per_document": 3,
    "category_vocabulary_size": 15,
    "queries_per_peer": 3,
}


def tiny_spec(**overrides) -> SweepSpec:
    values = {
        "strategies": ("selfish", "altruistic"),
        "scale": "quick",
        "overrides": {"scenario_overrides": dict(TINY_SCENARIO)},
        "seeds": (7, 11),
    }
    values.update(overrides)
    return SweepSpec(**values)


def result_payload(sweep_result) -> str:
    """Canonical JSON of the per-task results (durations are wall-clock)."""
    return json.dumps(
        [record["result"] for record in sweep_result.records()], sort_keys=True
    )


def shm_segments() -> list:
    try:
        return [name for name in os.listdir("/dev/shm") if name.startswith("psm_")]
    except FileNotFoundError:  # pragma: no cover - platform without /dev/shm
        return []


needs_shm = pytest.mark.skipif(
    not shared_memory_available(), reason="POSIX shared memory unavailable"
)


class TestAvailability:
    def test_probe_returns_a_bool(self):
        assert shared_memory_available() in (True, False)


@needs_shm
class TestServerLifecycle:
    def test_publish_and_close_leave_no_segments(self):
        before = set(shm_segments())
        spec = tiny_spec()
        tasks = spec.validate()
        with ScenarioArrayServer() as server:
            manifest = server.publish_for_tasks(tasks)
            assert len(manifest) == 2  # one entry per seed-distinct scenario
            for entry in manifest.values():
                assert entry["peers"] == TINY_SCENARIO["num_peers"]
                for field in ("local", "global", "service"):
                    assert entry[field]["shape"] == [12, 12]
        assert set(shm_segments()) <= before

    def test_tasks_share_entries_per_scenario_not_per_task(self):
        spec = tiny_spec()
        tasks = spec.validate()
        keys = {scenario_shm_key(task.session_config()) for task in tasks}
        # 4 tasks, but the scenario hash depends only on (scenario, seed):
        # both strategies of a seed share one entry.
        assert len(keys) == len(spec.seeds) == 2

    def test_close_is_idempotent(self):
        server = ScenarioArrayServer()
        server.publish_for_tasks(tiny_spec().validate())
        server.close()
        server.close()
        assert server.manifest == {}


@needs_shm
class TestAdoption:
    def test_adopted_matrix_matches_locally_built_arrays(self):
        from repro.sweep.cache import scenario_data_for

        spec = tiny_spec()
        task = spec.validate()[0]
        config = task.session_config()
        key = scenario_shm_key(config)
        with ScenarioArrayServer() as server:
            manifest = server.publish_for_tasks([task])
            fresh = scenario_data_for(config, mutates=True)  # private copy
            reference = fresh.network.recall_matrix()
            expected = reference.local_view().copy()
            assert adopt_shared_matrix(fresh.network, key, manifest)
            adopted = fresh.network.recall_matrix()
            assert not adopted.local_view().flags.writeable
            np.testing.assert_array_equal(adopted.local_view(), expected)
        clear_attached()

    def test_missing_key_is_a_soft_miss(self):
        from repro.sweep.cache import scenario_data_for

        config = tiny_spec().validate()[0].session_config()
        data = scenario_data_for(config, mutates=True)
        assert not adopt_shared_matrix(data.network, "no-such-key", {})


@needs_shm
class TestResultParity:
    def test_results_byte_identical_with_tier_on_off_and_serial(self):
        spec = tiny_spec()
        executor = {"name": "process-pool", "options": {"max_workers": 4}}
        before = set(shm_segments())
        tier_off = run_sweep(spec, executor=executor, shm=False)
        tier_on = run_sweep(spec, executor=executor, shm=True)
        serial = run_sweep(spec)
        assert result_payload(tier_on) == result_payload(tier_off)
        assert result_payload(tier_on) == result_payload(serial)
        assert set(shm_segments()) <= before


@needs_shm
class TestAbnormalExitCleanup:
    """Regression for the segment leak on abnormal coordinator exit: the
    atexit backstop must unlink what ``close()`` never got to."""

    def test_atexit_backstop_unlinks_published_segments(self):
        import subprocess
        import sys
        from pathlib import Path

        import repro

        # A coordinator that publishes segments and dies on an unhandled
        # exception — close() never runs, only the atexit hook can clean up.
        script = (
            "import json, sys\n"
            "sys.path.insert(0, sys.argv[1])\n"
            "from repro.sweep import SweepSpec\n"
            "from repro.sweep.shm import ScenarioArrayServer\n"
            "spec = SweepSpec.from_dict(json.loads(sys.argv[2]))\n"
            "server = ScenarioArrayServer()\n"
            "manifest = server.publish_for_tasks(spec.validate())\n"
            "names = [entry[field]['name'] for entry in manifest.values()\n"
            "         for field in ('local', 'global', 'service')]\n"
            "print(json.dumps(names), flush=True)\n"
            "raise RuntimeError('simulated coordinator death')\n"
        )
        src = str(Path(repro.__file__).resolve().parents[1])
        completed = subprocess.run(
            [sys.executable, "-c", script, src, json.dumps(tiny_spec().to_dict())],
            capture_output=True,
            text=True,
        )
        assert completed.returncode != 0
        assert "simulated coordinator death" in completed.stderr
        names = json.loads(completed.stdout.strip().splitlines()[-1])
        assert names
        leaked = [name for name in names if name.lstrip("/") in shm_segments()]
        assert leaked == []

    def test_cleanup_hook_is_a_noop_after_close(self):
        server = ScenarioArrayServer()
        server.publish_for_tasks(tiny_spec().validate())
        server.close()
        # No segments tracked any more: the hook has nothing to do and the
        # second close stays idempotent.
        server._cleanup_at_exit()
        assert server.manifest == {}


@needs_shm
class TestDegradationObservability:
    def test_unlinked_segments_degrade_and_are_recorded(self):
        from repro.sweep.cache import scenario_data_for

        spec = tiny_spec()
        task = spec.validate()[0]
        config = task.session_config()
        key = scenario_shm_key(config)
        with ScenarioArrayServer() as server:
            manifest = server.publish_for_tasks([task])
            clear_attached()
            consume_degraded_keys()  # start from a clean slate
            assert unlink_segments(manifest, key) == 3
            data = scenario_data_for(config, mutates=True)
            assert not adopt_shared_matrix(data.network, key, manifest)
            assert consume_degraded_keys() == [key]
            assert consume_degraded_keys() == []  # drained

    def test_missing_manifest_key_is_not_recorded_as_degradation(self):
        from repro.sweep.cache import scenario_data_for

        config = tiny_spec().validate()[0].session_config()
        data = scenario_data_for(config, mutates=True)
        consume_degraded_keys()
        assert not adopt_shared_matrix(data.network, "absent-key", {})
        assert consume_degraded_keys() == []

    def test_unlink_segments_of_an_absent_key_is_zero(self):
        assert unlink_segments({}, "absent") == 0
