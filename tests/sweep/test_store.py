"""Tests for the content-addressed result store: hashing, round-trips,
resume after an interrupted sweep, and JSONL-vs-store equality."""

from __future__ import annotations

import json
import subprocess
import sys
import time

import pytest

from repro.errors import ConfigurationError
from repro.events import EventHooks
from repro.sweep import ResultStore, SweepResult, SweepSpec, read_jsonl, run_sweep
from repro.sweep.cache import clear_scenario_cache, scenario_cache_info, scenario_data_for
from repro.sweep.executors import (
    ChunkedStreamingExecutor,
    ProcessPoolSweepExecutor,
    SerialExecutor,
)
from repro.sweep.spec import SweepTask
from repro.sweep.store import StoredResult, canonical_json, task_hash

TINY_SCENARIO = {
    "num_peers": 12,
    "num_categories": 3,
    "documents_per_peer": 4,
    "terms_per_document": 3,
    "category_vocabulary_size": 15,
    "queries_per_peer": 3,
}


def tiny_spec(**overrides) -> SweepSpec:
    values = {
        "strategies": ("selfish", "altruistic"),
        "scale": "quick",
        "overrides": {"scenario_overrides": dict(TINY_SCENARIO)},
        "seeds": (7, 11),
    }
    values.update(overrides)
    return SweepSpec(**values)


class TestTaskHash:
    def test_hash_is_hex_sha256(self):
        digest = task_hash(tiny_spec().validate()[0])
        assert len(digest) == 64
        int(digest, 16)

    def test_hash_ignores_the_task_index(self):
        task = tiny_spec().validate()[0]
        renumbered = SweepTask(
            index=99,
            config=dict(task.config),
            runner=task.runner,
            options=dict(task.options),
            seed=task.seed,
        )
        assert task_hash(renumbered) == task_hash(task)

    def test_equal_work_hashes_equal_across_spec_shapes(self):
        # The same (config, seed) reached through a 2-strategy grid and
        # through a single-strategy grid is the same stored work.
        full = tiny_spec().validate()
        narrow = tiny_spec(strategies=("selfish",)).validate()
        assert {task_hash(t) for t in narrow} <= {task_hash(t) for t in full}

    def test_registry_aliases_hash_identically(self):
        base = tiny_spec(strategies=("selfish",), seeds=(7,)).validate()[0]
        aliased_config = dict(base.config)
        aliased_config["scenario"] = "scenario1"  # alias of same-category
        aliased = SweepTask(
            index=0, config=aliased_config, runner="discovery", seed=base.seed
        )
        assert base.runner == "discover"
        assert task_hash(aliased) == task_hash(base)

    def test_different_seeds_hash_differently(self):
        tasks = tiny_spec(strategies=("selfish",)).validate()
        assert task_hash(tasks[0]) != task_hash(tasks[1])

    def test_hash_is_stable_across_processes(self):
        import os
        from pathlib import Path

        import repro

        task = tiny_spec().validate()[0]
        script = (
            "import json, sys\n"
            "from repro.sweep.spec import SweepTask\n"
            "from repro.sweep.store import task_hash\n"
            "task = SweepTask.from_dict(json.loads(sys.stdin.read()))\n"
            "print(task_hash(task))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            part
            for part in (
                str(Path(repro.__file__).resolve().parents[1]),
                env.get("PYTHONPATH"),
            )
            if part
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            input=json.dumps(task.to_dict()),
            capture_output=True,
            text=True,
            check=True,
            env=env,
        )
        assert completed.stdout.strip() == task_hash(task)

    def test_canonical_json_is_key_sorted_and_ascii(self):
        rendered = canonical_json({"b": 1, "a": "é"})
        assert rendered == '{"a":"\\u00e9","b":1}'


class TestRoundTrip:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = tiny_spec(strategies=("selfish",), seeds=(7,))
        sweep = run_sweep(spec)
        task = sweep.tasks[0]
        digest = store.put(task, sweep.results[0], sweep.task_durations[0])
        assert task in store
        assert digest in store
        assert len(store) == 1
        assert list(store.task_hashes()) == [digest]
        stored = store.get(task)
        assert isinstance(stored, StoredResult)
        assert stored.task_hash == digest
        assert stored.result.to_dict() == sweep.results[0].to_dict()
        assert stored.duration == sweep.task_durations[0]

    def test_missing_and_corrupt_entries_read_as_none(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        task = tiny_spec().validate()[0]
        assert store.get(task) is None
        assert task not in store
        path = store.task_path(task_hash(task))
        path.parent.mkdir(parents=True)
        path.write_text("{ half a record", encoding="utf-8")
        assert store.get(task) is None

    def test_from_any_coercions(self, tmp_path):
        assert ResultStore.from_any(None) is None
        store = ResultStore(tmp_path)
        assert ResultStore.from_any(store) is store
        assert ResultStore.from_any(str(tmp_path)).root == tmp_path
        with pytest.raises(ConfigurationError):
            ResultStore.from_any(42)

    def test_no_temp_files_left_behind(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = tiny_spec(strategies=("selfish",), seeds=(7,))
        run_sweep(spec, store=store)
        leftovers = [
            path
            for path in (tmp_path / "store").rglob("*")
            if path.is_file() and path.suffix not in {".json", ".pkl"}
        ]
        assert leftovers == []


class TestResume:
    @pytest.mark.parametrize(
        "executor",
        (
            SerialExecutor(),
            ProcessPoolSweepExecutor(max_workers=2),
            ChunkedStreamingExecutor(max_workers=2, window=2),
        ),
        ids=lambda executor: executor.name,
    )
    def test_interrupted_sweep_resumes_exactly_the_missing_subset(
        self, tmp_path, executor
    ):
        store = ResultStore(tmp_path / "store")
        spec = tiny_spec()
        uninterrupted = run_sweep(spec)  # reference, no store involved

        # "Kill" the sweep half-way: only the selfish half of the grid ran.
        partial = run_sweep(tiny_spec(strategies=("selfish",)), store=store)
        assert partial.executed == 2

        skipped, loaded_events = [], []
        hooks = EventHooks()
        hooks.on_task_skipped(lambda event: skipped.append(event.index))
        hooks.on_task_loaded(lambda event: loaded_events.append(event))
        resumed = run_sweep(spec, executor=executor, store=store, hooks=hooks)

        assert resumed.loaded == 2
        assert resumed.executed == 2
        assert skipped == [
            task.index for task in resumed.tasks if task.config["strategy"] == "selfish"
        ]
        assert len(loaded_events) == 2
        assert [r.to_dict() for r in resumed.results] == [
            r.to_dict() for r in uninterrupted.results
        ]

    def test_second_run_executes_nothing(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = tiny_spec()
        first = run_sweep(spec, store=store)
        assert first.executed == len(first) and first.loaded == 0
        second = run_sweep(spec, store=store)
        assert second.executed == 0 and second.loaded == len(second)
        assert [r.to_dict() for r in second.results] == [
            r.to_dict() for r in first.results
        ]

    def test_deleting_one_entry_reruns_exactly_that_task(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = tiny_spec()
        first = run_sweep(spec, store=store)
        victim = first.tasks[2]
        store.task_path(task_hash(victim)).unlink()
        second = run_sweep(spec, store=store)
        assert second.executed == 1 and second.loaded == len(second) - 1
        assert [r.to_dict() for r in second.results] == [
            r.to_dict() for r in first.results
        ]

    def test_no_resume_reexecutes_but_still_persists(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = tiny_spec(strategies=("selfish",), seeds=(7,))
        run_sweep(spec, store=store)
        again = run_sweep(spec, store=store, resume=False)
        assert again.executed == len(again) and again.loaded == 0
        assert len(store) == 1

    def test_loaded_counts_keep_the_completed_counter_monotone(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = tiny_spec()
        run_sweep(tiny_spec(strategies=("selfish",)), store=store)
        completed = []
        hooks = EventHooks()
        hooks.on_task_loaded(lambda event: completed.append(event.completed))
        hooks.on_task_finished(lambda event: completed.append(event.completed))
        result = run_sweep(spec, store=store, hooks=hooks)
        assert completed == list(range(1, len(result) + 1))

    def test_sweep_end_event_reports_executed_and_loaded(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = tiny_spec()
        run_sweep(tiny_spec(strategies=("altruistic",)), store=store)
        captured = []
        hooks = EventHooks()
        hooks.on_sweep_end(lambda event: captured.append(event))
        run_sweep(spec, store=store, hooks=hooks)
        (event,) = captured
        assert event.total == 4
        assert event.loaded == 2
        assert event.executed == 2
        assert event.executor == "serial"


class TestJsonlVsStore:
    def test_store_backed_run_writes_identical_task_records(self, tmp_path):
        spec = tiny_spec()
        plain_path = tmp_path / "plain.jsonl"
        stored_path = tmp_path / "stored.jsonl"
        run_sweep(spec, jsonl_path=str(plain_path))
        run_sweep(spec, jsonl_path=str(stored_path), store=str(tmp_path / "store"))

        plain_spec, plain_records = read_jsonl(str(plain_path))
        stored_spec, stored_records = read_jsonl(str(stored_path))
        assert plain_spec == stored_spec

        def strip_durations(records):
            return [
                {key: value for key, value in record.items() if key != "duration"}
                for record in records
            ]

        assert strip_durations(stored_records) == strip_durations(plain_records)

    def test_resumed_jsonl_equals_uninterrupted_jsonl(self, tmp_path):
        spec = tiny_spec()
        store = str(tmp_path / "store")
        reference_path = tmp_path / "reference.jsonl"
        resumed_path = tmp_path / "resumed.jsonl"
        run_sweep(spec, jsonl_path=str(reference_path))
        run_sweep(tiny_spec(seeds=(7,)), store=store)  # interrupted half
        run_sweep(spec, store=store, jsonl_path=str(resumed_path))
        _, reference_records = read_jsonl(str(reference_path))
        _, resumed_records = read_jsonl(str(resumed_path))
        assert [record["result"] for record in resumed_records] == [
            record["result"] for record in reference_records
        ]
        assert [record["task"] for record in resumed_records] == [
            record["task"] for record in reference_records
        ]

    def test_from_store_merges_a_fully_sharded_grid(self, tmp_path):
        store = str(tmp_path / "store")
        spec = tiny_spec()
        # Two "shards", each half of the grid, filling one shared store.
        run_sweep(tiny_spec(strategies=("selfish",)), store=store)
        run_sweep(tiny_spec(strategies=("altruistic",)), store=store)
        merged = SweepResult.from_store(spec, store)
        reference = run_sweep(spec)
        assert merged.loaded == len(merged) == 4
        assert merged.executed == 0
        assert [r.to_dict() for r in merged.results] == [
            r.to_dict() for r in reference.results
        ]

    def test_from_store_names_missing_tasks(self, tmp_path):
        store = str(tmp_path / "store")
        run_sweep(tiny_spec(strategies=("selfish",)), store=store)
        with pytest.raises(ConfigurationError, match="missing 2 of 4"):
            SweepResult.from_store(tiny_spec(), store)

    def test_from_store_requires_a_store(self):
        with pytest.raises(ConfigurationError, match="needs a store"):
            SweepResult.from_store(tiny_spec(), None)


class TestQuarantineTier:
    def _failure(self, digest):
        from repro.sweep.faults import TaskFailure

        return TaskFailure(
            index=0,
            task_hash=digest,
            attempts=2,
            error_type="ValueError",
            message="boom",
            kind="exception",
            injected=False,
            traceback="",
        )

    def test_put_get_clear_failure_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        task = tiny_spec().validate()[0]
        digest = task_hash(task)
        assert store.get_failure(task) is None
        store.put_failure(task, self._failure(digest))
        recorded = store.get_failure(task)
        assert recorded is not None and recorded.error_type == "ValueError"
        assert list(store.failure_hashes()) == [digest]
        store.clear_failure(task)
        assert store.get_failure(task) is None
        assert list(store.failure_hashes()) == []

    def test_put_supersedes_a_quarantine_record(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = tiny_spec(strategies=("selfish",), seeds=(7,))
        sweep = run_sweep(spec)
        task = sweep.tasks[0]
        store.put_failure(task, self._failure(task_hash(task)))
        store.put(task, sweep.results[0], sweep.task_durations[0])
        assert store.get_failure(task) is None


class TestVerify:
    def _filled_store(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        run_sweep(tiny_spec(strategies=("selfish",)), store=store)
        return store

    def test_clean_store_verifies_ok(self, tmp_path):
        store = self._filled_store(tmp_path)
        verification = store.verify()
        assert verification.ok
        assert verification.checked == 2
        assert verification.corrupt == [] and verification.purged == 0

    def test_unreadable_json_is_reported_and_purged(self, tmp_path):
        store = self._filled_store(tmp_path)
        digest = next(iter(store.task_hashes()))
        path = store.task_path(digest)
        path.write_text("{ truncated", encoding="utf-8")

        events = []
        hooks = EventHooks()
        hooks.on_store_corrupt(lambda event: events.append(event))
        verification = store.verify(hooks=hooks)
        assert not verification.ok
        assert len(verification.corrupt) == 1
        assert verification.purged == 0
        (event,) = events
        assert event.task_hash == digest
        assert "JSON" in event.reason
        assert path.exists()

        purged = store.verify(purge=True)
        assert purged.purged == 1
        assert not path.exists()
        assert store.verify().ok

    def test_hash_mismatch_is_corrupt(self, tmp_path):
        store = self._filled_store(tmp_path)
        hashes = sorted(store.task_hashes())
        source = store.task_path(hashes[0])
        impostor = store.task_path("f" * 64)
        impostor.parent.mkdir(parents=True, exist_ok=True)
        impostor.write_bytes(source.read_bytes())
        verification = store.verify()
        assert len(verification.corrupt) == 1
        assert any("hash" in reason for _path, reason in verification.corrupt)

    def test_unrebuildable_result_is_corrupt(self, tmp_path):
        store = self._filled_store(tmp_path)
        digest = next(iter(store.task_hashes()))
        path = store.task_path(digest)
        record = json.loads(path.read_text(encoding="utf-8"))
        record["result"] = {"nonsense": True}
        path.write_text(json.dumps(record), encoding="utf-8")
        verification = store.verify()
        assert len(verification.corrupt) == 1

    def test_resume_after_purge_reexecutes_exactly_the_purged_task(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = tiny_spec()
        first = run_sweep(spec, store=store)
        victim = first.tasks[1]
        store.task_path(task_hash(victim)).write_text("garbage", encoding="utf-8")
        store.verify(purge=True)
        second = run_sweep(spec, store=store)
        assert second.executed == 1 and second.loaded == len(second) - 1
        assert [r.to_dict() for r in second.results] == [
            r.to_dict() for r in first.results
        ]


class TestScenarioTier:
    def _config(self):
        return tiny_spec(strategies=("selfish",), seeds=(7,)).validate()[0].session_config()

    def test_store_round_trips_scenario_data(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        clear_scenario_cache()
        try:
            built = scenario_data_for(self._config(), mutates=False, store=store)
            clear_scenario_cache()
            loaded = scenario_data_for(self._config(), mutates=False, store=store)
            assert scenario_cache_info()["store_hits"] == 1
            assert loaded is not built
            assert loaded.network.peer_ids() == built.network.peer_ids()
        finally:
            clear_scenario_cache()

    def test_loaded_scenario_produces_identical_results(self, tmp_path):
        spec = tiny_spec(strategies=("selfish",), seeds=(7,))
        reference = run_sweep(spec)
        store = str(tmp_path / "store")
        run_sweep(spec, store=store)  # populates the scenario tier
        clear_scenario_cache()
        try:
            loaded = run_sweep(spec, store=store, resume=False)
        finally:
            clear_scenario_cache()
        assert [r.to_dict() for r in loaded.results] == [
            r.to_dict() for r in reference.results
        ]

    def test_corrupt_scenario_pickle_reads_as_none(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        config = self._config()
        name = config.scenario
        scenario_config = config.experiment_config().scenario
        digest = store.save_scenario(name, scenario_config, object())
        store.scenario_path(digest).write_bytes(b"not a pickle")
        assert store.load_scenario(name, scenario_config) is None


class TestPrune:
    def test_prune_on_an_empty_store_is_a_no_op(self, tmp_path):
        report = ResultStore(tmp_path / "store").prune()
        assert report.removed == 0

    def test_referenced_scenario_pickles_survive(self, tmp_path):
        store_path = str(tmp_path / "store")
        run_sweep(tiny_spec(seeds=(7,)), store=store_path)
        store = ResultStore(store_path)
        before = sorted((store.root / "scenarios").glob("*/*.pkl"))
        assert before  # the run populated the scenario tier
        report = store.prune()
        assert report.scenarios_removed == 0
        assert sorted((store.root / "scenarios").glob("*/*.pkl")) == before

    def test_orphaned_scenario_pickles_are_removed(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        config = tiny_spec(strategies=("selfish",), seeds=(7,)).validate()[0].session_config()
        store.save_scenario(
            "same-category", config.experiment_config().scenario, {"orphan": True}
        )
        report = store.prune()
        assert report.scenarios_checked == 1
        assert report.scenarios_removed == 1
        assert not list((store.root / "scenarios").glob("*/*.pkl"))

    def test_results_and_quarantine_are_never_touched(self, tmp_path):
        store_path = str(tmp_path / "store")
        run_sweep(tiny_spec(seeds=(7,)), store=store_path)
        store = ResultStore(store_path)
        stored_before = sorted(store.task_hashes())
        store.prune(stale_after=0.0, now=time.time() + 10_000)
        assert sorted(store.task_hashes()) == stored_before

    def test_superseded_pending_entries_are_removed(self, tmp_path):
        from repro.sweep.queue import QueueEntry, TaskQueue

        store_path = str(tmp_path / "store")
        result = run_sweep(tiny_spec(seeds=(7,)), store=store_path)
        store = ResultStore(store_path)
        queue = TaskQueue(store.root)
        task = result.tasks[0]
        queue.enqueue(
            QueueEntry(task=task.to_dict(), task_hash=task_hash(task), index=task.index)
        )
        report = store.prune()
        assert report.queue_files_removed == 1
        assert queue.pending_names() == []

    def test_unresolved_pending_entries_survive(self, tmp_path):
        from repro.sweep.queue import QueueEntry, TaskQueue

        store = ResultStore(tmp_path / "store")
        queue = TaskQueue(store.root)
        queue.enqueue(QueueEntry(task={}, task_hash="f" * 64, index=0))
        report = store.prune()
        assert report.queue_files_removed == 0
        assert len(queue.pending_names()) == 1

    def test_stale_leases_and_workers_and_temps_are_removed(self, tmp_path):
        from repro.sweep.queue import QueueEntry, TaskQueue

        store = ResultStore(tmp_path / "store")
        queue = TaskQueue(store.root)
        queue.enqueue(QueueEntry(task={}, task_hash="f" * 64, index=0))
        queue.claim("dead")
        queue.register_worker("dead")
        temp = store.root / "tasks" / "ab" / ".junk.json.tmp123"
        temp.parent.mkdir(parents=True, exist_ok=True)
        temp.write_bytes(b"half-written")
        fresh = store.prune(stale_after=3600.0)
        assert fresh.removed == 0  # everything is younger than the threshold
        aged = store.prune(stale_after=3600.0, now=time.time() + 7200.0)
        assert aged.queue_files_removed == 1  # the lease
        assert aged.worker_files_removed == 1
        assert aged.temp_files_removed == 1
        assert queue.lease_names() == []

    def test_prune_after_a_distributed_run_leaves_a_resumable_store(self, tmp_path):
        spec = tiny_spec(seeds=(7,))
        store_path = str(tmp_path / "store")
        run_sweep(
            spec,
            executor={"name": "distributed", "options": {"workers": 1, "poll_interval": 0.02}},
            store=store_path,
        )
        store = ResultStore(store_path)
        store.prune(stale_after=0.0, now=time.time() + 10_000)
        again = run_sweep(spec, store=store_path)
        assert again.executed == 0
        assert again.loaded == len(again.tasks)
