"""Tests for sweep summary grouping: dynamics and traffic variants stay apart."""

from __future__ import annotations

from repro.session.result import RunResult
from repro.sweep import SweepSpec
from repro.sweep.result import DEFAULT_GROUP_FIELDS, SweepResult, _group_value
from repro.sweep.spec import SweepTask


def make_result(cost: float) -> RunResult:
    return RunResult(kind="discovery", converged=True, final_social_cost=cost)


def make_sweep(configs, costs) -> SweepResult:
    tasks = [
        SweepTask(index=index, config=dict(config))
        for index, config in enumerate(configs)
    ]
    return SweepResult(
        spec=SweepSpec(),
        tasks=tasks,
        results=[make_result(cost) for cost in costs],
    )


class TestGroupValue:
    def test_none_renders_as_a_dash(self):
        assert _group_value(None) == "-"

    def test_mappings_become_key_sorted_json(self):
        assert _group_value({"b": 1, "a": 2}) == '{"a":2,"b":1}'
        assert _group_value({"a": 2, "b": 1}) == _group_value({"b": 1, "a": 2})

    def test_scalars_pass_through(self):
        assert _group_value("zipf") == "zipf"
        assert _group_value(3) == 3


class TestSummaryGrouping:
    def test_dynamics_and_traffic_are_group_fields(self):
        assert "dynamics" in DEFAULT_GROUP_FIELDS
        assert "traffic" in DEFAULT_GROUP_FIELDS

    def test_dynamics_variants_get_separate_rows(self):
        base = {"scenario": "same_category", "initial": "singletons", "strategy": "selfish"}
        drift = {**base, "dynamics": {"drift": "churn", "rate": 0.1}}
        sweep = make_sweep([base, base, drift], [1.0, 3.0, 7.0])
        groups = sweep.summarize(metrics=("final_social_cost",))
        assert len(groups) == 2
        pooled = groups[("same_category", "singletons", "selfish", "-", "-")]
        assert pooled["final_social_cost"].count == 2
        assert pooled["final_social_cost"].mean == 2.0
        drifted_key = (
            "same_category",
            "singletons",
            "selfish",
            '{"drift":"churn","rate":0.1}',
            "-",
        )
        assert groups[drifted_key]["final_social_cost"].mean == 7.0

    def test_traffic_workload_variants_get_separate_rows(self):
        base = {"scenario": "uniform", "initial": "random", "strategy": "selfish"}
        uniform = {**base, "traffic": {"workload": "uniform"}}
        zipf = {**base, "traffic": {"workload": "zipf"}}
        sweep = make_sweep([uniform, zipf], [1.0, 2.0])
        assert len(sweep.summarize(metrics=("final_social_cost",))) == 2

    def test_equal_specs_pool_regardless_of_key_order(self):
        base = {"scenario": "uniform", "initial": "random", "strategy": "selfish"}
        first = {**base, "dynamics": {"a": 1, "b": 2}}
        second = {**base, "dynamics": {"b": 2, "a": 1}}
        sweep = make_sweep([first, second], [1.0, 3.0])
        groups = sweep.summarize(metrics=("final_social_cost",))
        assert len(groups) == 1
        (stats,) = groups.values()
        assert stats["final_social_cost"].count == 2

    def test_summary_table_renders_the_group_columns(self):
        base = {"scenario": "uniform", "initial": "random", "strategy": "selfish"}
        sweep = make_sweep(
            [{**base, "traffic": {"workload": "zipf"}}], [1.0]
        )
        table = sweep.summary_table(metrics=("final_social_cost",))
        assert "traffic" in table.splitlines()[0]
        assert '{"workload":"zipf"}' in table
