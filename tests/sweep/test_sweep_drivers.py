"""The experiment drivers running through the sweep engine.

The acceptance bar: fanning a driver's replications out over a process pool
must reproduce the serial (pre-engine) driver numbers exactly — seed for
seed, not approximately.
"""

from __future__ import annotations

from dataclasses import replace

from repro.datasets.scenarios import SCENARIO_SAME_CATEGORY, build_scenario
from repro.events import EventHooks
from repro.experiments.config import ExperimentConfig
from repro.experiments.figure4 import run_figure4
from repro.experiments.maintenance import run_maintenance_experiment
from repro.experiments.table1 import run_table1, run_table1_sweep
from repro.session import SessionConfig, Simulation

SCENARIOS = (SCENARIO_SAME_CATEGORY,)
INITIAL_KINDS = ("singletons", "random")
STRATEGIES = ("selfish", "altruistic")


def serial_table1_rows(config, scenarios=SCENARIOS, initial_kinds=INITIAL_KINDS,
                       strategies=STRATEGIES):
    """The pre-engine serial Table 1 loop: shared scenario data, one process."""
    rows = []
    for scenario in scenarios:
        data = build_scenario(scenario, config.scenario)
        for initial_kind in initial_kinds:
            for strategy_name in strategies:
                simulation = Simulation.from_config(
                    SessionConfig.from_experiment_config(
                        config,
                        scenario=data.scenario,
                        strategy=strategy_name,
                        initial=initial_kind,
                    ),
                    data=data,
                )
                result = simulation.run()
                rows.append(
                    (
                        data.scenario,
                        initial_kind,
                        strategy_name,
                        result.converged,
                        result.rounds if result.converged else None,
                        result.cluster_count,
                        result.final_social_cost,
                        result.final_workload_cost,
                        result.purity if result.purity is not None else 0.0,
                    )
                )
    return rows


def row_tuple(row):
    return (
        row.scenario,
        row.initial_kind,
        row.strategy,
        row.converged,
        row.rounds,
        row.clusters,
        row.social_cost,
        row.workload_cost,
        row.purity,
    )


class TestTable1:
    def test_engine_reproduces_the_serial_driver_exactly(self):
        config = ExperimentConfig.quick()
        expected = serial_table1_rows(config)
        result = run_table1(
            config,
            scenarios=SCENARIOS,
            initial_kinds=INITIAL_KINDS,
            strategies=STRATEGIES,
            workers=2,
        )
        assert [row_tuple(row) for row in result.rows] == expected

    def test_multi_seed_sweep_matches_the_serial_driver_seed_for_seed(self):
        """The PR's acceptance criterion, at quick scale with 4 workers."""
        base = ExperimentConfig.quick()
        seeds = (7, 11)
        swept = run_table1_sweep(
            base,
            seeds=seeds,
            scenarios=SCENARIOS,
            initial_kinds=INITIAL_KINDS,
            strategies=STRATEGIES,
            workers=4,
        )
        assert set(swept) == set(seeds)
        for seed in seeds:
            # The serial reference for seed s: the same config carrying s as
            # both the master seed and the scenario build seed — exactly what
            # the sweep's seed application does.
            serial_config = replace(base, seed=seed).with_scenario(seed=seed)
            expected = serial_table1_rows(serial_config)
            assert [row_tuple(row) for row in swept[seed].rows] == expected

    def test_progress_events_reach_driver_callers(self):
        hooks = EventHooks()
        finished = []
        hooks.on_task_finished(lambda event: finished.append(event.index))
        run_table1(
            ExperimentConfig.quick(),
            scenarios=SCENARIOS,
            initial_kinds=("singletons",),
            strategies=STRATEGIES,
            hooks=hooks,
        )
        assert sorted(finished) == [0, 1]


class TestMaintenanceDrivers:
    def test_figure_points_are_identical_across_worker_counts(self):
        config = ExperimentConfig.quick()
        kwargs = dict(
            fractions=(0.0, 1.0),
            strategies=("selfish",),
            update_kinds=("updated-peers",),
        )
        serial = run_maintenance_experiment("workload", config, **kwargs)
        pooled = run_maintenance_experiment("workload", config, workers=2, **kwargs)
        assert len(serial.curves) == len(pooled.curves) == 1
        assert serial.curves[0].points == pooled.curves[0].points

    def test_points_carry_the_before_cost(self):
        config = ExperimentConfig.quick()
        result = run_maintenance_experiment(
            "content",
            config,
            fractions=(1.0,),
            strategies=("selfish",),
            update_kinds=("updated-peers",),
        )
        (point,) = result.curves[0].points
        assert point.fraction == 1.0
        assert point.social_cost_before_maintenance > 0.0


class TestFigure4:
    def test_curves_are_identical_across_worker_counts(self):
        config = ExperimentConfig.quick()
        kwargs = dict(alphas=(0.0, 1.0), fractions=(0.0, 0.6, 1.0))
        serial = run_figure4(config, **kwargs)
        pooled = run_figure4(config, workers=3, **kwargs)
        assert [curve.alpha for curve in serial.curves] == [
            curve.alpha for curve in pooled.curves
        ]
        for serial_curve, pooled_curve in zip(serial.curves, pooled.curves):
            assert serial_curve.points == pooled_curve.points
            assert serial_curve.relocation_fraction == pooled_curve.relocation_fraction
