"""Sweeping drift grids: the dynamics axis through the parallel engine.

The ISSUE's acceptance criterion: ``repro sweep --runner maintain`` with a
JSON dynamics spec sweeps a drift grid (scenario-(a) peers-updated axis x
seeds) in parallel, byte-identical for ``workers=1`` vs ``workers=4``.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError, UnknownComponentError
from repro.sweep.engine import run_sweep
from repro.sweep.spec import SweepSpec

#: The scenario-(a) peers-updated axis of Figure 2, as a dynamics grid.
PEERS_UPDATED_AXIS = tuple(
    {"model": "workload-full", "options": {"peer_fraction": fraction}, "start": 1}
    for fraction in (0.0, 0.5, 1.0)
)


def drift_grid_spec(**overrides):
    values = dict(
        scale="quick",
        overrides={"initial": "category", "scenario": "same-category"},
        runner="maintain",
        runner_options={"periods": 2},
        dynamics=PEERS_UPDATED_AXIS,
        seeds=(7, 11),
    )
    values.update(overrides)
    return SweepSpec(**values)


class TestDynamicsAxis:
    def test_expansion_crosses_dynamics_with_seeds(self):
        tasks = drift_grid_spec().expand()
        assert len(tasks) == len(PEERS_UPDATED_AXIS) * 2
        seen = [
            (task.config["dynamics"]["options"]["peer_fraction"], task.seed)
            for task in tasks
        ]
        assert seen == [(f, s) for f in (0.0, 0.5, 1.0) for s in (7, 11)]

    def test_spec_round_trips_through_json(self):
        spec = drift_grid_spec()
        restored = SweepSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored.dynamics == spec.dynamics
        assert [t.to_dict() for t in restored.expand()] == [
            t.to_dict() for t in spec.expand()
        ]

    def test_validate_rejects_unknown_drift_models(self):
        spec = drift_grid_spec(dynamics=({"model": "quantum-drift"},))
        with pytest.raises(UnknownComponentError, match="drift model"):
            spec.validate()

    def test_validate_rejects_bad_drift_options(self):
        spec = drift_grid_spec(
            dynamics=({"model": "workload-full", "options": {"warp": 1}},)
        )
        with pytest.raises(ConfigurationError, match="invalid options"):
            spec.validate()

    def test_validate_checks_runner_option_dynamics_too(self):
        spec = drift_grid_spec(
            dynamics=(), runner_options={"periods": 1, "dynamics": {"model": "quantum"}}
        )
        with pytest.raises(UnknownComponentError, match="drift model"):
            spec.validate()


class TestParallelDriftGrid:
    @pytest.fixture(scope="class")
    def serial(self):
        return run_sweep(drift_grid_spec(), workers=1)

    def test_drift_grid_is_byte_identical_across_worker_counts(self, serial):
        pooled = run_sweep(drift_grid_spec(), workers=4)
        serial_payloads = [result.to_dict() for result in serial.results]
        pooled_payloads = [result.to_dict() for result in pooled.results]
        assert serial_payloads == pooled_payloads

    def test_drift_actually_perturbs_the_swept_sessions(self, serial):
        by_fraction = {}
        for task, result in zip(serial.tasks, serial.results):
            fraction = task.config["dynamics"]["options"]["peer_fraction"]
            by_fraction.setdefault(fraction, []).append(result)
        for result in by_fraction[0.0]:
            assert result.extras["drift"] == []  # peer_fraction 0 is a no-op
        for result in by_fraction[1.0]:
            reports = result.extras["drift"]
            assert [entry["period"] for entry in reports] == [1]
            assert reports[0]["model"] == "workload-full"
        # a fully drifted cluster costs more than an undisturbed one
        undisturbed = min(r.final_social_cost for r in by_fraction[0.0])
        drifted = max(r.final_social_cost for r in by_fraction[1.0])
        assert drifted > undisturbed

    def test_results_differ_across_seeds_for_partial_drift(self, serial):
        # At peer_fraction 0.5 the outcome depends on which replacement
        # queries the seed stream samples (a full switch collapses to the
        # category structure, so 1.0 can coincide across seeds).
        drifted = [
            result
            for task, result in zip(serial.tasks, serial.results)
            if task.config["dynamics"]["options"]["peer_fraction"] == 0.5
        ]
        traces = {tuple(result.social_cost_trace) for result in drifted}
        assert len(traces) == 2  # one distinct outcome per seed


class TestMaintenancePointRunner:
    """The figure runner accepts declarative-dynamics-only invocations."""

    def _run(self, task):
        spec = SweepSpec(tasks=(task,))
        return run_sweep(spec, workers=1).results[0]

    def test_dynamics_only_options_work_without_legacy_keys(self):
        result = self._run(
            {
                "config": {"scale": "quick", "initial": "category"},
                "runner": "maintenance-point",
                "options": {
                    "dynamics": {
                        "model": "workload-full",
                        "options": {"peer_fraction": 0.5},
                    }
                },
            }
        )
        assert result.extras["drift"][0]["model"] == "workload-full"
        assert "update_target" not in result.extras
        assert result.extras["social_cost_before"] > 0.0

    def test_schedule_shaped_config_dynamics_are_accepted(self):
        # the exact shape SessionConfig documents (schedule keys included)
        result = self._run(
            {
                "config": {
                    "scale": "quick",
                    "initial": "category",
                    "dynamics": {
                        "model": "workload-full",
                        "options": {"peer_fraction": 0.5},
                        "start": 1,
                    },
                },
                "runner": "maintenance-point",
                "options": {},
            }
        )
        assert result.extras["drift"][0]["model"] == "workload-full"

    def test_multi_rule_specs_apply_every_rule_once(self):
        result = self._run(
            {
                "config": {"scale": "quick", "initial": "category"},
                "runner": "maintenance-point",
                "options": {
                    "dynamics": {
                        "rules": [
                            {"model": "workload-fraction", "options": {"fraction": 0.5}},
                            {"model": "churn", "options": {"departures": 1}},
                        ]
                    }
                },
            }
        )
        assert [entry["model"] for entry in result.extras["drift"]] == [
            "workload-fraction",
            "churn",
        ]

    def test_missing_drift_reports_cleanly(self):
        from repro.sweep.engine import execute_task
        from repro.sweep.spec import SweepTask

        task = SweepTask(
            index=0,
            config={"scale": "quick", "initial": "category"},
            runner="maintenance-point",
            options={},
        )
        with pytest.raises(ConfigurationError, match="maintenance-point needs"):
            execute_task(task)


class TestMaintainRunnerOptions:
    def test_runner_option_dynamics_override_the_config(self):
        spec = drift_grid_spec(
            dynamics=(),
            seeds=(7,),
            runner_options={
                "periods": 1,
                "dynamics": {"model": "churn", "options": {"departures": 2}},
            },
        )
        result = run_sweep(spec, workers=1).results[0]
        assert result.extras["drift"][0]["model"] == "churn"
        assert len(result.extras["drift"][0]["peer_ids"]) == 2
