"""Chaos suite: deterministic fault injection across every executor.

The contract under test is the package's design center extended to faults —
whatever chaos a :class:`FaultPlan` injects (exceptions, hangs, worker
kills, shm unlinks), a sweep that survives it produces a ``SweepResult``
byte-identical to a fault-free serial run, and a killed sweep resumes
through the store without re-executing completed tasks.
"""

from __future__ import annotations

import pytest

from repro.events import EventHooks
from repro.sweep import (
    FaultPlan,
    FaultRule,
    ResultStore,
    SweepSpec,
    run_sweep,
    task_hash,
)
from repro.sweep.executors import (
    ChunkedStreamingExecutor,
    ProcessPoolSweepExecutor,
    SerialExecutor,
)

TINY_SCENARIO = {
    "num_peers": 12,
    "num_categories": 3,
    "documents_per_peer": 4,
    "terms_per_document": 3,
    "category_vocabulary_size": 15,
    "queries_per_peer": 3,
}


def tiny_spec(**overrides) -> SweepSpec:
    values = {
        "strategies": ("selfish", "altruistic"),
        "scale": "quick",
        "overrides": {"scenario_overrides": dict(TINY_SCENARIO)},
        "seeds": (7, 11),
    }
    values.update(overrides)
    return SweepSpec(**values)


ALL_EXECUTORS = (
    SerialExecutor(),
    ProcessPoolSweepExecutor(max_workers=2),
    ChunkedStreamingExecutor(max_workers=2, window=2),
)

#: One rule per fault model that a retry can absorb: a first-attempt
#: exception, a first-attempt worker kill and a first-attempt hang cut
#: short by the task timeout.
COMBINED_PLAN = FaultPlan(
    rules=(
        FaultRule(fault="task-exception", index=0, attempts=(1,)),
        FaultRule(fault="worker-kill", index=1, attempts=(1,)),
        FaultRule(fault="task-hang", index=3, attempts=(1,), options={"seconds": 60.0}),
    )
)


def payload(sweep_result):
    return [result.to_dict() for result in sweep_result.results]


class TestChaosParity:
    @pytest.mark.parametrize(
        "executor", ALL_EXECUTORS, ids=lambda executor: executor.name
    )
    def test_every_executor_is_byte_identical_under_the_combined_plan(self, executor):
        spec = tiny_spec()
        reference = run_sweep(spec)  # fault-free serial
        chaotic = run_sweep(
            spec, executor=executor, retries=2, task_timeout=3.0, faults=COMBINED_PLAN
        )
        assert not chaotic.failures
        assert payload(chaotic) == payload(reference)

    def test_env_variable_injects_the_plan(self, monkeypatch):
        from repro.sweep.faults import ENV_FAULTS

        spec = tiny_spec(strategies=("selfish",), seeds=(7,))
        reference = run_sweep(spec)
        monkeypatch.setenv(
            ENV_FAULTS,
            '{"rules": [{"fault": "task-exception", "index": 0, "attempts": [1]}]}',
        )
        failed = run_sweep(spec)  # no retries: the injected fault quarantines
        assert len(failed.failures) == 1
        recovered = run_sweep(spec, retries=1)
        assert not recovered.failures
        assert payload(recovered) == payload(reference)

    def test_explicit_faults_argument_overrides_the_env(self, monkeypatch):
        from repro.sweep.faults import ENV_FAULTS

        monkeypatch.setenv(ENV_FAULTS, '{"rules": [{"fault": "task-exception"}]}')
        spec = tiny_spec(strategies=("selfish",), seeds=(7,))
        clean = run_sweep(spec, faults=FaultPlan(rules=()))
        assert not clean.failures


class TestQuarantine:
    @pytest.mark.parametrize(
        "executor", ALL_EXECUTORS, ids=lambda executor: executor.name
    )
    def test_a_persistent_failure_quarantines_without_aborting(self, executor):
        spec = tiny_spec()
        plan = FaultPlan(rules=(FaultRule(fault="task-exception", index=1, attempts=()),))
        result = run_sweep(spec, executor=executor, retries=1, faults=plan)
        assert len(result.results) == 3
        (failure,) = result.failures
        assert failure.index == 1
        assert failure.attempts == 2
        assert failure.injected
        assert failure.error_type == "InjectedFaultError"
        # The surviving tasks still match the fault-free reference.
        reference = run_sweep(spec)
        expected = [
            result.to_dict()
            for task, result in zip(reference.tasks, reference.results)
            if task.index != 1
        ]
        assert payload(result) == expected

    def test_quarantine_is_recorded_in_the_store_and_cleared_on_success(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = tiny_spec(strategies=("selfish",))
        plan = FaultPlan(rules=(FaultRule(fault="task-exception", index=0, attempts=()),))
        failed = run_sweep(spec, store=store, faults=plan)
        (failure,) = failed.failures
        victim = failed.tasks[0]
        record = store.get_failure(victim)
        assert record is not None
        assert record.error_type == "InjectedFaultError"
        assert list(store.failure_hashes()) == [task_hash(victim)]

        # Resume without faults: only the quarantined task re-executes, and
        # success supersedes the quarantine record.
        resumed = run_sweep(spec, store=store)
        assert resumed.executed == 1 and resumed.loaded == 1
        assert not resumed.failures
        assert store.get_failure(victim) is None
        assert payload(resumed) == payload(run_sweep(spec))

    def test_timeout_exhaustion_quarantines_with_kind_timeout(self):
        from repro.sweep.faults import timeout_enforcement_available

        if not timeout_enforcement_available():
            pytest.skip("needs SIGALRM on the main thread")
        spec = tiny_spec(strategies=("selfish",), seeds=(7,))
        plan = FaultPlan(
            rules=(FaultRule(fault="task-hang", index=0, attempts=(), options={"seconds": 30.0}),)
        )
        result = run_sweep(spec, faults=plan, task_timeout=0.3)
        (failure,) = result.failures
        assert failure.kind == "timeout"


class TestCrashRecovery:
    @pytest.mark.parametrize(
        "executor",
        ALL_EXECUTORS[1:],
        ids=lambda executor: executor.name,
    )
    def test_worker_kill_respawns_the_pool_and_finishes(self, executor):
        spec = tiny_spec()
        reference = run_sweep(spec)
        plan = FaultPlan(rules=(FaultRule(fault="worker-kill", index=2, attempts=(1,)),))
        crash_events = []
        hooks = EventHooks()
        hooks.on_task_failed(
            lambda event: crash_events.append((event.index, event.error["kind"]))
        )
        result = run_sweep(spec, executor=executor, faults=plan, hooks=hooks)
        assert not result.failures
        assert payload(result) == payload(reference)
        assert any(kind == "crash" for _index, kind in crash_events)

    def test_mid_sweep_kill_resumes_with_zero_reexecution(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = tiny_spec()
        reference = run_sweep(spec)

        # "Kill" the coordinator after two tasks persisted: a hook raises out
        # of run_sweep, exactly like an operator's SIGINT mid-sweep.
        class Killed(RuntimeError):
            pass

        hooks = EventHooks()

        def maybe_kill(event):
            if event.completed >= 2:
                raise Killed()

        hooks.on_task_finished(maybe_kill)
        with pytest.raises(Killed):
            run_sweep(spec, store=store, hooks=hooks)
        assert len(store) == 2

        loaded_indexes = []
        resume_hooks = EventHooks()
        resume_hooks.on_task_loaded(lambda event: loaded_indexes.append(event.index))
        resumed = run_sweep(spec, store=store, hooks=resume_hooks)
        assert resumed.loaded == 2 and resumed.executed == 2
        assert sorted(loaded_indexes) == [0, 1]
        assert payload(resumed) == payload(reference)

    def test_worker_kill_then_resume_through_the_store(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = tiny_spec()
        reference = run_sweep(spec)
        plan = FaultPlan(rules=(FaultRule(fault="worker-kill", index=1, attempts=(1,)),))
        first = run_sweep(
            spec,
            executor=ProcessPoolSweepExecutor(max_workers=2),
            store=store,
            faults=plan,
        )
        assert not first.failures
        resumed = run_sweep(spec, store=store)
        assert resumed.executed == 0 and resumed.loaded == len(resumed)
        assert payload(resumed) == payload(reference)


class TestShmChaos:
    def test_shm_unlink_degrades_without_changing_results(self):
        pytest.importorskip("multiprocessing.shared_memory")
        from repro.sweep.shm import shared_memory_available

        if not shared_memory_available():
            pytest.skip("no usable /dev/shm")
        spec = tiny_spec()
        reference = run_sweep(spec)
        plan = FaultPlan(rules=(FaultRule(fault="shm-unlink", index=0, attempts=(1,)),))
        degraded = []
        hooks = EventHooks()
        hooks.on_shm_degraded(lambda event: degraded.append(event.index))
        result = run_sweep(
            spec,
            executor=ProcessPoolSweepExecutor(max_workers=2),
            faults=plan,
            hooks=hooks,
        )
        assert not result.failures
        assert payload(result) == payload(reference)
