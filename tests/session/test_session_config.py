"""Tests for :class:`repro.session.config.SessionConfig`."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.session import SessionConfig


class TestDefaultsAndPresets:
    def test_defaults_resolve_to_paper_scale(self):
        config = SessionConfig()
        assert config.experiment_config() == ExperimentConfig.paper()

    def test_scale_preset_is_resolved(self):
        config = SessionConfig(scale="quick")
        assert config.experiment_config() == ExperimentConfig.quick()

    def test_unknown_scale_lists_presets(self):
        with pytest.raises(ConfigurationError) as excinfo:
            SessionConfig(scale="galactic").experiment_config()
        message = str(excinfo.value)
        assert "quick" in message and "benchmark" in message and "paper" in message

    def test_explicit_fields_override_the_preset(self):
        config = SessionConfig(scale="quick", alpha=2.0, max_rounds=17, theta="constant")
        resolved = config.experiment_config()
        assert resolved.alpha == 2.0
        assert resolved.max_rounds == 17
        assert resolved.theta_name == "constant"
        # unset fields keep the preset's values
        assert resolved.scenario == ExperimentConfig.quick().scenario

    def test_scenario_overrides_are_applied(self):
        config = SessionConfig(scale="quick", scenario_overrides={"uniform_workload": True})
        assert config.experiment_config().scenario.uniform_workload is True


class TestConstructors:
    def test_from_experiment_config_wraps_the_base(self):
        base = ExperimentConfig.quick()
        config = SessionConfig.from_experiment_config(base, strategy="altruistic")
        assert config.strategy == "altruistic"
        assert config.experiment_config() == base

    def test_from_experiment_config_rejects_other_types(self):
        with pytest.raises(ConfigurationError):
            SessionConfig.from_experiment_config({"alpha": 1.0})

    def test_from_dict_round_trip(self):
        config = SessionConfig(scenario="same_category", strategy="selfish", scale="quick")
        restored = SessionConfig.from_dict(config.to_dict())
        assert restored == config

    def test_from_dict_round_trip_with_base(self):
        config = SessionConfig.from_experiment_config(ExperimentConfig.quick())
        payload = json.loads(json.dumps(config.to_dict()))  # via real JSON
        restored = SessionConfig.from_dict(payload)
        assert restored.experiment_config() == ExperimentConfig.quick()

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError) as excinfo:
            SessionConfig.from_dict({"strategy": "selfish", "velocity": 3})
        assert "velocity" in str(excinfo.value)

    def test_from_any_accepts_mapping_and_none(self):
        assert SessionConfig.from_any(None) == SessionConfig()
        assert SessionConfig.from_any({"strategy": "hybrid"}).strategy == "hybrid"

    def test_from_any_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            SessionConfig.from_any(42)

    def test_with_options_replaces_fields(self):
        config = SessionConfig().with_options(strategy="static", scale="quick")
        assert config.strategy == "static"
        assert config.scale == "quick"

    def test_with_options_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError):
            SessionConfig().with_options(velocity=3)

    def test_to_dict_is_json_serialisable(self):
        config = SessionConfig(scale="quick", theta_options={"slope": 2.0})
        json.dumps(config.to_dict())


class TestDynamicsField:
    SPEC = {
        "model": "workload-full",
        "options": {"peer_fraction": 0.4},
        "start": 1,
        "ramp": {"option": "peer_fraction", "values": [0.2, 0.4]},
    }

    def test_dynamics_round_trips_through_json(self):
        config = SessionConfig(scale="quick", dynamics=self.SPEC)
        payload = json.loads(json.dumps(config.to_dict()))  # via real JSON
        restored = SessionConfig.from_dict(payload)
        assert restored == config
        assert restored.dynamics == self.SPEC

    def test_dynamics_defaults_to_none(self):
        config = SessionConfig()
        assert config.dynamics is None
        assert SessionConfig.from_dict(config.to_dict()).dynamics is None
