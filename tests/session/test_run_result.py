"""Unit tests for RunResult serialisation (from_dict) and phase merging
(merge_prior), the pieces the result store and the traffic runner build on."""

from __future__ import annotations

import math

import pytest

from repro.dynamics.periodic import PeriodRecord
from repro.errors import ConfigurationError
from repro.session.result import RunResult


def discovery_result(**overrides) -> RunResult:
    values = dict(
        kind="discovery",
        converged=True,
        cycle_detected=False,
        rounds=5,
        moves=12,
        final_social_cost=0.25,
        final_workload_cost=0.3,
        cluster_count=4,
        social_cost_trace=[0.5, 0.4, 0.25],
        workload_cost_trace=[0.6, 0.45, 0.3],
        cluster_count_trace=[8, 6, 4],
        message_counts={"relocation": 12},
        purity=0.9,
        queries_routed=7,
        config={"scenario": "same-category"},
        extras={"phase": "shape"},
    )
    values.update(overrides)
    return RunResult(**values)


class TestFromDict:
    def test_round_trips_exactly(self):
        result = discovery_result()
        rebuilt = RunResult.from_dict(result.to_dict())
        assert rebuilt.to_dict() == result.to_dict()
        assert rebuilt.protocol_result is None

    def test_round_trips_periods_as_records(self):
        record = PeriodRecord(
            period=1,
            social_cost_before=0.5,
            social_cost_after=0.4,
            workload_cost_after=0.5,
            moves=2,
            rounds=3,
            converged=True,
            queries_routed=4,
        )
        result = discovery_result(kind="maintenance", periods=[record])
        rebuilt = RunResult.from_dict(result.to_dict())
        assert rebuilt.periods == [record]
        assert isinstance(rebuilt.periods[0], PeriodRecord)

    def test_unknown_keys_raise(self):
        payload = discovery_result().to_dict()
        payload["surprise"] = 1
        with pytest.raises(ConfigurationError, match="surprise"):
            RunResult.from_dict(payload)

    def test_protocol_result_is_not_accepted(self):
        payload = discovery_result().to_dict()
        payload["protocol_result"] = None
        with pytest.raises(ConfigurationError, match="protocol_result"):
            RunResult.from_dict(payload)

    def test_nan_costs_survive_the_round_trip(self):
        result = discovery_result(
            final_social_cost=float("nan"), final_workload_cost=float("nan")
        )
        rebuilt = RunResult.from_dict(result.to_dict())
        assert math.isnan(rebuilt.final_social_cost)
        assert math.isnan(rebuilt.final_workload_cost)


class TestMergePrior:
    def test_adopts_the_prior_phase_outcome(self):
        traffic = RunResult(
            kind="traffic",
            converged=False,
            extras={"latency_p95": 4.2},
            config={"scenario": "same-category"},
        )
        prior = discovery_result()
        returned = traffic.merge_prior(prior)
        assert returned is traffic
        assert traffic.kind == "traffic"  # keeps its own identity
        assert traffic.converged is True
        assert traffic.cycle_detected is False
        assert traffic.rounds == 5
        assert traffic.moves == 12
        assert traffic.final_social_cost == 0.25
        assert traffic.final_workload_cost == 0.3
        assert traffic.social_cost_trace == [0.5, 0.4, 0.25]
        assert traffic.workload_cost_trace == [0.6, 0.45, 0.3]
        assert traffic.cluster_count_trace == [8, 6, 4]

    def test_traces_are_copied_not_shared(self):
        traffic = RunResult(kind="traffic", converged=False)
        prior = discovery_result()
        traffic.merge_prior(prior)
        traffic.social_cost_trace.append(0.0)
        assert prior.social_cost_trace == [0.5, 0.4, 0.25]

    def test_own_extras_win_over_prior_extras(self):
        traffic = RunResult(
            kind="traffic", converged=False, extras={"phase": "traffic", "hops": 2}
        )
        traffic.merge_prior(discovery_result(extras={"phase": "shape", "pre_cost": 0.5}))
        assert traffic.extras == {"phase": "traffic", "hops": 2, "pre_cost": 0.5}

    def test_own_measurements_are_kept(self):
        traffic = RunResult(
            kind="traffic", converged=False, cluster_count=9, queries_routed=100
        )
        traffic.merge_prior(discovery_result())
        assert traffic.cluster_count == 9
        assert traffic.queries_routed == 100
