"""Tests for the :class:`repro.Simulation` facade and builder."""

from __future__ import annotations

import json
import random

import pytest

from repro import (
    SCENARIO_SAME_CATEGORY,
    ExperimentConfig,
    ReformulationProtocol,
    SelfishStrategy,
    SessionConfig,
    Simulation,
    build_scenario,
    initial_configuration,
    register_strategy,
)
from repro.dynamics.updates import update_workload_full
from repro.registry import strategy_registry
from repro.strategies.base import RelocationStrategy

QUICK = SessionConfig(scenario="same_category", strategy="selfish", scale="quick")


class TestAcceptance:
    def test_facade_reproduces_the_hand_wired_quickstart(self):
        """The ISSUE's acceptance criterion: seed-for-seed parity."""
        simulation = Simulation.from_config(QUICK)
        facade_result = simulation.run()

        config = ExperimentConfig.quick()
        data = build_scenario(SCENARIO_SAME_CATEGORY, config.scenario)
        configuration = initial_configuration(data, "singletons")
        cost_model = data.network.cost_model(theta=config.theta(), alpha=config.alpha)
        protocol = ReformulationProtocol(cost_model, configuration, SelfishStrategy())
        manual_result = protocol.run(max_rounds=config.max_rounds)

        assert facade_result.converged == (
            manual_result.converged and not manual_result.cycle_detected
        )
        assert facade_result.final_social_cost == manual_result.final_social_cost
        assert facade_result.final_workload_cost == manual_result.final_workload_cost
        assert facade_result.social_cost_trace == manual_result.social_cost_trace
        assert simulation.configuration.signature() == configuration.signature()

    def test_custom_strategy_usable_by_name_from_the_facade(self):
        @register_strategy("session-test-lazy")
        class LazyStrategy(RelocationStrategy):
            name = "session-test-lazy"

            def propose(self, peer_id, context):
                return None

        try:
            result = Simulation.from_config(
                QUICK.with_options(strategy="session-test-lazy")
            ).run()
            assert result.converged
            assert result.moves == 0
        finally:
            strategy_registry.unregister("session-test-lazy")


class TestDiscoveryRuns:
    def test_run_result_shape(self):
        result = Simulation.from_config(QUICK).run()
        assert result.kind == "discovery"
        assert result.converged
        assert result.rounds > 0
        assert result.moves > 0
        assert result.cluster_count > 0
        assert result.purity == pytest.approx(1.0)
        assert len(result.social_cost_trace) == len(result.workload_cost_trace)
        assert len(result.social_cost_trace) == len(result.cluster_count_trace)
        assert result.improvement > 0
        assert result.protocol_result is not None

    def test_to_dict_is_json_serialisable_and_complete(self):
        result = Simulation.from_config(QUICK).run()
        payload = json.loads(result.to_json())
        assert payload["kind"] == "discovery"
        assert payload["config"]["strategy"] == "selfish"
        assert payload["social_cost_trace"] == result.social_cost_trace
        assert "protocol_result" not in payload

    def test_max_rounds_override(self):
        result = Simulation.from_config(QUICK).run(max_rounds=1)
        assert not result.converged
        assert len(result.social_cost_trace) == 2

    def test_kwargs_and_dict_configs(self):
        by_kwargs = Simulation.from_config(scenario="same_category", scale="quick").run()
        by_dict = Simulation.from_config(
            {"scenario": "same_category", "scale": "quick"}
        ).run()
        assert by_kwargs.final_social_cost == by_dict.final_social_cost

    def test_injected_data_is_shared(self):
        config = ExperimentConfig.quick()
        data = build_scenario(SCENARIO_SAME_CATEGORY, config.scenario)
        simulation = Simulation.from_config(QUICK, data=data)
        assert simulation.data is data
        assert simulation.network is data.network

    def test_observed_mode_runs_an_observation_period(self):
        result = Simulation.from_config(
            QUICK.with_options(strategy_mode="observed", initial="category")
        ).run()
        assert result.queries_routed > 0

    def test_events_flow_through_the_facade(self):
        simulation = Simulation.from_config(QUICK)
        rounds, moves = [], []
        simulation.on_round_end(lambda event: rounds.append(event.round_number))
        unsubscribe = simulation.on_relocation_granted(moves.append)
        result = simulation.run()
        assert len(rounds) == len(result.protocol_result.rounds)
        assert len(moves) == result.moves
        unsubscribe()
        simulation.run()
        assert len(moves) == result.moves  # no further deliveries


class TestMaintenanceRuns:
    def _simulation(self):
        return Simulation.from_config(
            QUICK.with_options(initial="category", strategy="selfish")
        )

    def test_run_maintenance_records_periods(self):
        simulation = self._simulation()
        periods_seen = []
        simulation.on_period_end(lambda event: periods_seen.append(event.record.period))
        result = simulation.run_maintenance(2)
        assert result.kind == "maintenance"
        assert result.num_periods == 2
        assert periods_seen == [0, 1]
        assert len(result.social_cost_trace) == 2
        assert len(result.cluster_count_trace) == 2
        json.dumps(result.to_dict())

    def test_cluster_count_trace_reflects_per_period_counts(self):
        simulation = self._simulation()

        def merge_first_two(network, configuration):
            first, second = configuration.nonempty_clusters()[:2]
            for peer_id in list(configuration.members(second)):
                configuration.move(peer_id, second, first)

        with pytest.warns(DeprecationWarning, match="updates"):
            result = simulation.run_maintenance(2, updates=[None, merge_first_two])
        counts = result.cluster_count_trace
        assert len(counts) == 2
        # Period 0 keeps the ground-truth clustering; period 1 starts with one
        # cluster merged away, which maintenance does not resurrect.
        assert counts[0] == counts[1] + 1

    def test_run_maintenance_with_updates(self):
        simulation = self._simulation()
        data = simulation.data
        categories = sorted({c for c in data.data_categories.values() if c})
        rng = random.Random(5)

        def drift(network, configuration):
            cluster_id = configuration.nonempty_clusters()[0]
            members = sorted(configuration.members(cluster_id), key=repr)
            update_workload_full(network, members[:2], categories[-1], data.generator, rng=rng)

        with pytest.warns(DeprecationWarning, match="updates"):
            result = simulation.run_maintenance(2, updates=[None, drift])
        assert result.num_periods == 2
        # the drift perturbs the cost before period 1's maintenance pass
        assert result.periods[1].social_cost_before >= result.periods[0].social_cost_after

    def test_negative_periods_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            self._simulation().run_maintenance(-1)


class TestDeclarativeDynamics:
    DRIFT = {
        "model": "workload-full",
        "options": {"peer_fraction": 0.5},
        "start": 1,
    }

    def _simulation(self, **overrides):
        return Simulation.from_config(
            QUICK.with_options(initial="category", dynamics=self.DRIFT, **overrides)
        )

    def test_config_dynamics_drive_the_maintenance_run(self):
        simulation = self._simulation()
        events = []
        simulation.on_drift_applied(events.append)
        result = simulation.run_maintenance(3)
        assert [event.period for event in events] == [1, 2]
        assert all(event.report.model == "workload-full" for event in events)
        # the drift perturbs the cost before period 1's maintenance pass
        assert result.periods[1].social_cost_before > result.periods[0].social_cost_after
        assert [entry["period"] for entry in result.extras["drift"]] == [1, 2]
        json.dumps(result.to_dict())

    def test_dynamics_argument_overrides_the_config(self):
        simulation = self._simulation()
        events = []
        simulation.on_drift_applied(events.append)
        simulation.run_maintenance(2, dynamics={"model": "churn", "options": {"departures": 1}})
        assert {event.report.model for event in events} == {"churn"}

    def test_prebuilt_schedule_is_accepted(self):
        from repro.dynamics import DynamicsSchedule

        simulation = Simulation.from_config(QUICK.with_options(initial="category"))
        schedule = DynamicsSchedule.from_dict({"model": "churn", "options": {"departures": 2}})
        result = simulation.run_maintenance(1, schedule=schedule)
        assert len(result.extras["drift"][0]["peer_ids"]) == 2

    def test_updates_cannot_be_combined_with_dynamics(self):
        from repro.errors import ConfigurationError

        simulation = self._simulation()
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigurationError, match="updates"):
                simulation.run_maintenance(2, updates=[None, None])

    def test_drift_is_reproducible_across_simulations(self):
        costs = [self._simulation().run_maintenance(3).social_cost_trace for _ in range(2)]
        assert costs[0] == costs[1]

    def test_builder_dynamics_setter(self):
        config = Simulation.builder().scale("quick").dynamics(self.DRIFT).config()
        assert config.dynamics == self.DRIFT


class TestBuilder:
    def test_fluent_construction_matches_from_config(self):
        built = (
            Simulation.builder()
            .scenario("same_category")
            .strategy("selfish")
            .scale("quick")
            .initial("singletons")
            .build()
        )
        assert built.config == QUICK
        assert built.run().final_social_cost == Simulation.from_config(QUICK).run().final_social_cost

    def test_builder_accepts_strategy_instances(self):
        strategy = SelfishStrategy()
        simulation = Simulation.builder().scale("quick").strategy(strategy).build()
        assert simulation.strategy is strategy
        assert simulation.config.strategy == "selfish"

    def test_builder_rejects_options_with_a_strategy_instance(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            Simulation.builder().strategy(SelfishStrategy(), weight=0.9)

    def test_builder_later_strategy_call_replaces_an_instance(self):
        simulation = (
            Simulation.builder()
            .scale("quick")
            .strategy(SelfishStrategy())
            .strategy("hybrid", weight=0.25)
            .build()
        )
        assert simulation.config.strategy == "hybrid"
        assert simulation.strategy.weight == 0.25

    def test_builder_options_and_observers(self):
        seen = []
        simulation = (
            Simulation.builder()
            .scale("quick")
            .initial("random", num_clusters=5)
            .theta("linear")
            .alpha(1.5)
            .max_rounds(30)
            .seed(11)
            .router("probe-k", k=2)
            .on_round_end(lambda event: seen.append(event))
            .build()
        )
        config = simulation.config
        assert config.num_clusters == 5
        assert config.alpha == 1.5
        assert config.max_rounds == 30
        assert config.seed == 11
        assert config.router == "probe-k"
        assert config.router_options == {"k": 2}
        simulation.run()
        assert seen

    def test_protocol_options(self):
        config = (
            Simulation.builder()
            .scale("quick")
            .protocol_options(allow_cluster_creation=False, restrict_to_nonempty=True)
            .config()
        )
        assert config.allow_cluster_creation is False
        assert config.restrict_to_nonempty is True
