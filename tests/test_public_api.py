"""Tests for the library's public API surface.

A downstream user should be able to rely on ``repro.__all__``: every exported
name must resolve, be documented, and the central entry points must be
importable directly from the package root.
"""

from __future__ import annotations

import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists {name!r} but it is not importable"

    def test_no_duplicate_exports(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_version_is_a_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") >= 1

    @pytest.mark.parametrize(
        "name",
        [
            "CostModel",
            "RecallModel",
            "Peer",
            "ClusterConfiguration",
            "PeerNetwork",
            "ClusterGame",
            "SelfishStrategy",
            "AltruisticStrategy",
            "HybridStrategy",
            "ReformulationProtocol",
            "build_scenario",
            "ExperimentConfig",
            "run_table1",
            "run_figure4",
        ],
    )
    def test_key_entry_points_are_exported(self, name):
        assert name in repro.__all__

    def test_public_classes_are_documented(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if isinstance(obj, type) and not (obj.__doc__ or "").strip():
                undocumented.append(name)
        assert not undocumented, f"public classes without docstrings: {undocumented}"

    def test_subpackages_are_documented(self):
        import importlib

        for module_name in (
            "repro.core",
            "repro.peers",
            "repro.overlay",
            "repro.game",
            "repro.strategies",
            "repro.protocol",
            "repro.dynamics",
            "repro.datasets",
            "repro.baselines",
            "repro.analysis",
            "repro.experiments",
        ):
            module = importlib.import_module(module_name)
            assert (module.__doc__ or "").strip(), f"{module_name} has no module docstring"


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import (
            ConfigurationError,
            DatasetError,
            ProtocolError,
            ReproError,
            StrategyError,
            UnknownClusterError,
            UnknownPeerError,
        )

        for error_type in (
            ConfigurationError,
            DatasetError,
            ProtocolError,
            StrategyError,
            UnknownClusterError,
            UnknownPeerError,
        ):
            assert issubclass(error_type, ReproError)

    def test_unknown_peer_error_carries_the_id(self):
        from repro import UnknownPeerError

        error = UnknownPeerError("p42")
        assert error.peer_id == "p42"
        assert "p42" in str(error)
