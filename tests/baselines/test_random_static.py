"""Tests for the random-relocation and static baselines."""

from __future__ import annotations

import pytest

from repro.baselines.random_relocation import RandomRelocationStrategy
from repro.baselines.static import StaticStrategy
from repro.errors import StrategyError
from repro.game.model import ClusterGame
from repro.strategies.base import StrategyContext


@pytest.fixture
def context(tiny_network, tiny_configuration):
    return StrategyContext(
        game=ClusterGame(tiny_network.cost_model(use_matrix=False), tiny_configuration)
    )


class TestStaticStrategy:
    def test_never_moves(self, context):
        strategy = StaticStrategy()
        for peer_id in ("alice", "bob", "carol"):
            proposal = strategy.propose(peer_id, context)
            assert not proposal.is_move
            assert proposal.gain == 0.0


class TestRandomRelocation:
    def test_probability_validation(self):
        with pytest.raises(StrategyError):
            RandomRelocationStrategy(move_probability=1.5)

    def test_zero_probability_never_moves(self, context):
        strategy = RandomRelocationStrategy(move_probability=0.0, seed=1)
        assert not any(
            strategy.propose(peer_id, context).is_move for peer_id in ("alice", "bob", "carol")
        )

    def test_certain_probability_always_proposes_a_move(self, context):
        strategy = RandomRelocationStrategy(move_probability=1.0, seed=1)
        for peer_id in ("alice", "bob", "carol"):
            proposal = strategy.propose(peer_id, context)
            assert proposal.is_move
            assert proposal.target_cluster in {"c1", "c2"}
            assert proposal.target_cluster != proposal.source_cluster

    def test_moves_are_reproducible_for_a_seed(self, context):
        first = [
            RandomRelocationStrategy(move_probability=0.5, seed=9).propose(peer, context).is_move
            for peer in ("alice", "bob", "carol")
        ]
        second = [
            RandomRelocationStrategy(move_probability=0.5, seed=9).propose(peer, context).is_move
            for peer in ("alice", "bob", "carol")
        ]
        assert first == second
