"""Tests for the centralised re-clustering baseline."""

from __future__ import annotations

import pytest

from repro.baselines.global_reclustering import GlobalReclustering, jaccard_similarity
from repro.errors import ConfigurationError
from repro.overlay.messages import MessageBus
from repro.analysis.metrics import cluster_purity
from repro.peers.network import PeerNetwork


class TestJaccard:
    def test_identical_sets(self):
        assert jaccard_similarity(frozenset({"a"}), frozenset({"a"})) == 1.0

    def test_disjoint_sets(self):
        assert jaccard_similarity(frozenset({"a"}), frozenset({"b"})) == 0.0

    def test_empty_sets(self):
        assert jaccard_similarity(frozenset(), frozenset()) == 1.0

    def test_partial_overlap(self):
        assert jaccard_similarity(frozenset({"a", "b"}), frozenset({"b", "c"})) == pytest.approx(
            1 / 3
        )


class TestGlobalReclustering:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GlobalReclustering(num_clusters=0)
        with pytest.raises(ConfigurationError):
            GlobalReclustering(num_clusters=3).recluster(PeerNetwork())

    def test_every_peer_is_assigned(self, small_scenario):
        reclustering = GlobalReclustering(num_clusters=4, seed=1)
        result = reclustering.recluster(small_scenario.network)
        assert sorted(result.configuration.peer_ids()) == small_scenario.peer_ids()
        assert result.configuration.num_nonempty_clusters() <= 4

    def test_recovers_the_category_structure(self, small_scenario):
        reclustering = GlobalReclustering(num_clusters=4, seed=1)
        result = reclustering.recluster(small_scenario.network)
        purity = cluster_purity(result.configuration, small_scenario.data_categories)
        assert purity >= 0.75

    def test_message_accounting(self, small_scenario):
        bus = MessageBus()
        reclustering = GlobalReclustering(num_clusters=4, seed=1)
        result = reclustering.recluster(small_scenario.network, bus=bus)
        # Every peer ships its profile and receives its assignment.
        assert result.messages == 2 * len(small_scenario.network)
        assert bus.total() == result.messages

    def test_deterministic_for_a_seed(self, small_scenario):
        first = GlobalReclustering(num_clusters=4, seed=7).recluster(small_scenario.network)
        second = GlobalReclustering(num_clusters=4, seed=7).recluster(small_scenario.network)
        assert first.configuration.as_partition() == second.configuration.as_partition()

    def test_peer_profile_is_union_of_attributes(self, tiny_network):
        profile = GlobalReclustering.peer_profile(tiny_network, "alice")
        assert profile == frozenset({"music", "rock", "jazz"})
