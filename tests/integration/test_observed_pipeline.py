"""Integration test of the observation-driven (purely local) decision pipeline.

Runs the overlay simulator for a period T (broadcast routing), feeds the
observed statistics into the *observed* strategy variants and executes the
protocol with them — the faithful end-to-end path of the paper, as opposed to
the oracle path used at experiment scale.
"""

from __future__ import annotations

import pytest

from repro.game.model import ClusterGame
from repro.overlay.simulator import OverlaySimulator
from repro.protocol.reformulation import ReformulationProtocol
from repro.strategies.altruistic import AltruisticStrategy
from repro.strategies.selfish import SelfishStrategy
from tests.conftest import make_small_scenario


@pytest.fixture
def scenario():
    return make_small_scenario()


class TestObservedProtocolRound:
    def test_observed_round_reduces_social_cost(self, scenario):
        from repro.datasets.scenarios import initial_configuration

        configuration = initial_configuration(scenario, "random", seed=4)
        cost_model = scenario.network.cost_model()
        before = cost_model.social_cost(configuration, normalized=True)

        simulator = OverlaySimulator(scenario.network, configuration)
        simulator.run_period()

        protocol = ReformulationProtocol(
            cost_model, configuration, SelfishStrategy(mode="observed")
        )
        round_result = protocol.run_round(0, statistics=simulator.statistics)
        after = cost_model.social_cost(configuration, normalized=True)
        assert round_result.num_granted > 0
        assert after <= before

    def test_observed_and_exact_selfish_mostly_agree_under_broadcast(self, scenario):
        from repro.datasets.scenarios import initial_configuration
        from repro.strategies.base import StrategyContext

        configuration = initial_configuration(scenario, "random", seed=4)
        cost_model = scenario.network.cost_model()
        simulator = OverlaySimulator(scenario.network, configuration)
        simulator.run_period()

        game = ClusterGame(cost_model, configuration, allow_new_clusters=False)
        context = StrategyContext(game=game, statistics=simulator.statistics)
        exact = SelfishStrategy(mode="exact")
        observed = SelfishStrategy(mode="observed")
        agreements = sum(
            1
            for peer_id in scenario.peer_ids()
            if exact.propose(peer_id, context).target_cluster
            == observed.propose(peer_id, context).target_cluster
        )
        assert agreements >= len(scenario.peer_ids()) * 0.6

    def test_observed_altruistic_contributions_drive_a_full_run(self, scenario):
        from repro.datasets.scenarios import initial_configuration

        configuration = initial_configuration(scenario, "random", seed=4)
        cost_model = scenario.network.cost_model()
        strategy = AltruisticStrategy(mode="observed")

        # Alternate observation periods and protocol rounds for a few cycles.
        for _period in range(3):
            simulator = OverlaySimulator(scenario.network, configuration)
            simulator.run_period()
            protocol = ReformulationProtocol(cost_model, configuration, strategy)
            protocol.run_round(0, statistics=simulator.statistics)

        assert sorted(configuration.peer_ids()) == scenario.peer_ids()
