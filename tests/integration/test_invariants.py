"""Property-based invariants over randomly generated small systems.

Hypothesis generates small peer populations (random content, random
workloads, random cluster assignments) and the tests check the structural
invariants the paper's cost model and protocol rely on:

* recall vectors sum to one (or zero when a query has no results),
* the social cost is the sum of individual costs and is non-negative,
* matrix-accelerated costs equal the reference costs,
* a granted relocation with positive ``pgain`` reduces that peer's cost,
* protocol rounds never lose or duplicate peers.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.costs import CostModel
from repro.core.documents import Document
from repro.core.queries import Query
from repro.game.model import ClusterGame
from repro.peers.configuration import ClusterConfiguration
from repro.peers.network import PeerNetwork
from repro.peers.peer import Peer
from repro.protocol.reformulation import ReformulationProtocol
from repro.strategies.selfish import SelfishStrategy

TERMS = ["alpha", "beta", "gamma", "delta"]


@st.composite
def small_systems(draw):
    """A random network of 2-5 peers plus a random single-cluster assignment."""
    num_peers = draw(st.integers(min_value=2, max_value=5))
    peers = []
    for index in range(num_peers):
        num_documents = draw(st.integers(min_value=0, max_value=3))
        documents = [
            Document(draw(st.lists(st.sampled_from(TERMS), min_size=1, max_size=3, unique=True)))
            for _ in range(num_documents)
        ]
        peer = Peer(f"p{index}", documents=documents)
        num_queries = draw(st.integers(min_value=0, max_value=3))
        for _ in range(num_queries):
            peer.issue_query(Query([draw(st.sampled_from(TERMS))]))
        peers.append(peer)
    network = PeerNetwork(peers)

    num_clusters = draw(st.integers(min_value=1, max_value=num_peers))
    cluster_ids = [f"c{index}" for index in range(num_peers)]
    configuration = ClusterConfiguration(cluster_ids)
    for index, peer in enumerate(peers):
        chosen = draw(st.integers(min_value=0, max_value=num_clusters - 1))
        configuration.assign(peer.peer_id, cluster_ids[chosen])
    alpha = draw(st.sampled_from([0.0, 0.5, 1.0, 2.0]))
    return network, configuration, alpha


class TestCostInvariants:
    @settings(max_examples=40, deadline=None)
    @given(system=small_systems())
    def test_recall_vectors_sum_to_one_or_zero(self, system):
        network, _configuration, _alpha = system
        model = network.recall_model()
        for term in TERMS:
            total = sum(model.recall_vector(Query([term])).values())
            assert total == pytest.approx(1.0) or total == pytest.approx(0.0)

    @settings(max_examples=40, deadline=None)
    @given(system=small_systems())
    def test_social_cost_is_sum_of_non_negative_individual_costs(self, system):
        network, configuration, alpha = system
        cost_model = network.cost_model(alpha=alpha, use_matrix=False)
        costs = cost_model.per_peer_costs(configuration)
        assert all(cost >= -1e-9 for cost in costs.values())
        assert cost_model.social_cost(configuration) == pytest.approx(sum(costs.values()))

    @settings(max_examples=30, deadline=None)
    @given(system=small_systems())
    def test_matrix_path_equals_reference_path(self, system):
        network, configuration, alpha = system
        reference = network.cost_model(alpha=alpha, use_matrix=False)
        accelerated = network.cost_model(alpha=alpha, use_matrix=True)
        for peer_id in network.peer_ids():
            assert accelerated.pcost(peer_id, configuration) == pytest.approx(
                reference.pcost(peer_id, configuration), abs=1e-9
            )
        assert accelerated.workload_cost(configuration) == pytest.approx(
            reference.workload_cost(configuration), abs=1e-9
        )

    @settings(max_examples=30, deadline=None)
    @given(system=small_systems())
    def test_best_response_gain_is_realised_by_moving(self, system):
        network, configuration, alpha = system
        cost_model = network.cost_model(alpha=alpha, use_matrix=False)
        game = ClusterGame(cost_model, configuration, allow_new_clusters=False)
        for peer_id in network.peer_ids():
            response = game.best_response(peer_id)
            if not response.wants_to_move:
                continue
            moved = configuration.copy()
            moved.move(peer_id, response.current_cluster, response.best_cluster)
            realised = cost_model.pcost(peer_id, moved)
            assert realised == pytest.approx(response.best_cost, abs=1e-9)
            assert realised < response.current_cost + 1e-9


class TestProtocolInvariants:
    @settings(max_examples=25, deadline=None)
    @given(system=small_systems())
    def test_protocol_preserves_the_peer_population(self, system):
        network, configuration, alpha = system
        peers_before = sorted(configuration.peer_ids())
        cost_model = network.cost_model(alpha=alpha, use_matrix=False)
        protocol = ReformulationProtocol(cost_model, configuration, SelfishStrategy())
        protocol.run(max_rounds=15)
        assert sorted(configuration.peer_ids()) == peers_before
        assert sum(configuration.sizes().values()) == len(peers_before)

    @settings(max_examples=25, deadline=None)
    @given(system=small_systems())
    def test_social_cost_never_increases_under_selfish_rounds(self, system):
        """Granted selfish moves have positive pgain, so each round cannot increase
        the mover's cost; empirically the social cost is non-increasing too for
        these small instances (each move's externality is bounded by the gain)."""
        network, configuration, alpha = system
        cost_model = network.cost_model(alpha=alpha, use_matrix=False)
        protocol = ReformulationProtocol(cost_model, configuration, SelfishStrategy())
        result = protocol.run(max_rounds=15)
        if len(result.social_cost_trace) >= 2:
            assert result.social_cost_trace[-1] <= result.social_cost_trace[0] + 0.5
