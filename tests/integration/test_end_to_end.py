"""End-to-end integration tests across the whole stack.

These tests exercise the complete flow the paper describes: build a
categorised corpus, spread it over peers, cluster with the reformulation
protocol, perturb the system, and maintain it again — checking global
invariants at every step.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.metrics import cluster_purity
from repro.baselines.global_reclustering import GlobalReclustering
from repro.datasets.scenarios import category_configuration
from repro.dynamics.updates import update_workload_full
from repro.game.model import ClusterGame
from repro.protocol.reformulation import ReformulationProtocol
from repro.strategies.selfish import SelfishStrategy
from tests.conftest import make_small_scenario


class TestDiscoveryThenMaintenance:
    def test_full_lifecycle(self):
        scenario = make_small_scenario()
        network = scenario.network

        # 1. Discovery: from singletons to category clusters.
        configuration = network.singleton_configuration()
        cost_model = network.cost_model()
        protocol = ReformulationProtocol(cost_model, configuration, SelfishStrategy())
        discovery = protocol.run(max_rounds=80)
        assert discovery.converged
        assert cluster_purity(configuration, scenario.data_categories) == pytest.approx(1.0)
        ideal_cost = discovery.final_social_cost

        # The result is a Nash equilibrium of the game.
        game = ClusterGame(cost_model, configuration)
        assert game.is_nash_equilibrium()

        # 2. Perturbation: a third of one cluster's peers change interests.
        first_cluster = configuration.nonempty_clusters()[0]
        members = sorted(configuration.members(first_cluster), key=repr)
        victims = members[: max(1, len(members) // 3)]
        new_category = sorted(
            category
            for category in set(scenario.data_categories.values())
            if category is not None and category != scenario.data_categories[victims[0]]
        )[0]
        update_workload_full(network, victims, new_category, scenario.generator, rng=random.Random(3))

        perturbed_cost_model = network.cost_model()
        cost_after_update = perturbed_cost_model.social_cost(configuration, normalized=True)
        assert cost_after_update > ideal_cost - 1e-9

        # 3. Maintenance: the protocol reacts without losing any peer.
        maintenance = ReformulationProtocol(
            perturbed_cost_model,
            configuration,
            SelfishStrategy(),
            gain_threshold=0.001,
            allow_cluster_creation=False,
            restrict_to_nonempty=True,
        ).run(max_rounds=40)
        assert maintenance.converged
        final_cost = perturbed_cost_model.social_cost(configuration, normalized=True)
        assert final_cost <= cost_after_update + 1e-9
        assert sorted(configuration.peer_ids()) == scenario.peer_ids()

    def test_protocol_matches_global_reclustering_quality_on_clean_data(self):
        """On well-separated data the local protocol reaches the same social cost
        as the centralised baseline that requires global knowledge."""
        scenario = make_small_scenario()
        cost_model = scenario.network.cost_model()

        configuration = scenario.network.singleton_configuration()
        ReformulationProtocol(cost_model, configuration, SelfishStrategy()).run(max_rounds=80)
        protocol_cost = cost_model.social_cost(configuration, normalized=True)

        reclustered = GlobalReclustering(
            num_clusters=scenario.config.num_categories, seed=3
        ).recluster(scenario.network)
        baseline_cost = cost_model.social_cost(reclustered.configuration, normalized=True)

        assert protocol_cost == pytest.approx(baseline_cost, abs=0.05)

    def test_category_configuration_is_an_equilibrium(self):
        """The ground-truth clustering is stable: no peer wants to deviate."""
        scenario = make_small_scenario()
        configuration = category_configuration(scenario)
        game = ClusterGame(scenario.network.cost_model(), configuration)
        assert game.is_nash_equilibrium()
