"""Tests for the experiment configuration presets and strategy factory."""

from __future__ import annotations

import pytest

from repro.core.theta import LinearTheta
from repro.experiments.config import ExperimentConfig, build_strategy
from repro.strategies.altruistic import AltruisticStrategy
from repro.strategies.hybrid import HybridStrategy
from repro.strategies.selfish import SelfishStrategy


class TestPresets:
    def test_paper_preset_matches_the_paper(self):
        config = ExperimentConfig.paper()
        assert config.scenario.num_peers == 200
        assert config.scenario.num_categories == 10
        assert config.alpha == 1.0
        assert isinstance(config.theta(), LinearTheta)
        assert config.maintenance_gain_threshold == pytest.approx(0.001)

    def test_quick_preset_is_smaller(self):
        quick = ExperimentConfig.quick()
        assert quick.scenario.num_peers < ExperimentConfig.paper().scenario.num_peers

    def test_benchmark_preset_keeps_category_count(self):
        bench = ExperimentConfig.benchmark()
        assert bench.scenario.num_categories == 10

    def test_with_scenario_override(self):
        config = ExperimentConfig.quick().with_scenario(uniform_workload=True)
        assert config.scenario.uniform_workload
        # The original preset is unchanged (frozen dataclasses).
        assert not ExperimentConfig.quick().scenario.uniform_workload


class TestStrategyFactory:
    def test_known_strategies(self):
        assert isinstance(build_strategy("selfish"), SelfishStrategy)
        assert isinstance(build_strategy("Altruistic"), AltruisticStrategy)
        assert isinstance(build_strategy("hybrid", weight=0.3), HybridStrategy)

    def test_hybrid_weight_forwarded(self):
        assert build_strategy("hybrid", weight=0.3).weight == pytest.approx(0.3)

    def test_mode_forwarded(self):
        assert build_strategy("selfish", mode="observed").mode == "observed"

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            build_strategy("chaotic-neutral")


class TestFromScale:
    def test_resolves_every_known_preset(self):
        assert ExperimentConfig.from_scale("quick") == ExperimentConfig.quick()
        assert ExperimentConfig.from_scale("benchmark") == ExperimentConfig.benchmark()
        assert ExperimentConfig.from_scale("paper") == ExperimentConfig.paper()

    def test_is_case_insensitive(self):
        assert ExperimentConfig.from_scale("Quick") == ExperimentConfig.quick()

    def test_unknown_scale_lists_the_presets(self):
        from repro.errors import ConfigurationError, ReproError

        with pytest.raises(ConfigurationError) as excinfo:
            ExperimentConfig.from_scale("galactic")
        message = str(excinfo.value)
        for preset in ExperimentConfig.scales():
            assert preset in message
        assert isinstance(excinfo.value, ReproError)

    def test_does_not_dispatch_to_arbitrary_attributes(self):
        # The old getattr()-based dispatch would happily call any classmethod.
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ExperimentConfig.from_scale("with_scenario")
