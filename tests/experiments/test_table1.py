"""Tests for the Table 1 experiment driver (quick scale).

The quantitative expectations mirror the paper's qualitative claims at small
scale: the same-category scenario converges to the category clusters with a
normalised social cost of ``1 / M`` (membership only), while the uniform
scenario yields higher costs.
"""

from __future__ import annotations

import pytest

from repro.datasets.scenarios import SCENARIO_SAME_CATEGORY, SCENARIO_UNIFORM
from repro.experiments.config import ExperimentConfig
from repro.experiments.table1 import run_table1


@pytest.fixture(scope="module")
def quick_config():
    return ExperimentConfig.quick()


@pytest.fixture(scope="module")
def same_category_rows(quick_config):
    result = run_table1(
        quick_config,
        scenarios=(SCENARIO_SAME_CATEGORY,),
        initial_kinds=("singletons", "random"),
        strategies=("selfish",),
    )
    return result


class TestSameCategoryScenario:
    def test_row_structure(self, same_category_rows):
        assert len(same_category_rows.rows) == 2
        for row in same_category_rows.rows:
            assert row.scenario == SCENARIO_SAME_CATEGORY
            assert row.strategy == "selfish"

    def test_selfish_converges_to_category_clusters(self, same_category_rows, quick_config):
        for row in same_category_rows.rows:
            assert row.converged
            assert row.rounds is not None and row.rounds > 0
            assert row.clusters == quick_config.scenario.num_categories
            assert row.social_cost == pytest.approx(
                1.0 / quick_config.scenario.num_categories, abs=0.05
            )
            assert row.purity == pytest.approx(1.0)

    def test_workload_cost_close_to_social_cost_when_recall_is_full(self, same_category_rows):
        for row in same_category_rows.rows:
            assert row.workload_cost == pytest.approx(row.social_cost, abs=0.05)

    def test_to_text_contains_every_row(self, same_category_rows):
        text = same_category_rows.to_text()
        assert "singletons" in text and "random" in text

    def test_rows_for_filters_by_scenario(self, same_category_rows):
        assert len(same_category_rows.rows_for(SCENARIO_SAME_CATEGORY)) == 2
        assert same_category_rows.rows_for("other") == []


class TestUniformScenario:
    def test_uniform_scenario_costs_more(self, quick_config):
        result = run_table1(
            quick_config,
            scenarios=(SCENARIO_UNIFORM,),
            initial_kinds=("random",),
            strategies=("selfish",),
        )
        row = result.rows[0]
        assert row.social_cost > 1.0 / quick_config.scenario.num_categories + 0.05
