"""Distribution-level acceptance checks: the paper's qualitative claims across seeds.

A single seed can always get lucky; these tests run the Table 1 protocol
through ``run_table1_sweep`` over five spawned seed streams and assert the
paper's *orderings* hold at the distribution level, using
:func:`repro.analysis.reporting.summary_statistics` confidence intervals —
not just the point estimates of seed 7.
"""

from __future__ import annotations

import pytest

from repro.analysis.reporting import summary_statistics
from repro.datasets.scenarios import SCENARIO_SAME_CATEGORY, SCENARIO_UNIFORM
from repro.experiments.config import ExperimentConfig
from repro.experiments.table1 import run_table1_sweep

#: Five independent seeds (>= 5 per the ROADMAP's acceptance-check item).
SEEDS = (7, 11, 13, 17, 23)
STRATEGIES = ("selfish", "altruistic")


@pytest.fixture(scope="module")
def sweep_results():
    """One Table 1 per seed: 2 scenarios x singletons x 2 strategies x 5 seeds."""
    return run_table1_sweep(
        ExperimentConfig.quick(),
        seeds=SEEDS,
        scenarios=(SCENARIO_SAME_CATEGORY, SCENARIO_UNIFORM),
        initial_kinds=("singletons",),
        strategies=STRATEGIES,
        workers=2,
    )


def rows_for(sweep_results, scenario, strategy):
    rows = [
        row
        for result in sweep_results.values()
        for row in result.rows_for(scenario)
        if row.strategy == strategy
    ]
    assert len(rows) == len(SEEDS)
    return rows


class TestQualitativeOrderingAcrossSeeds:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_structure_beats_no_structure_with_ci_separation(
        self, sweep_results, strategy
    ):
        """Same-category clustering ends cheaper than the uniform scenario —
        with non-overlapping 95% CIs, so the ordering is not a seed artefact."""
        same = summary_statistics(
            [row.social_cost for row in rows_for(sweep_results, SCENARIO_SAME_CATEGORY, strategy)]
        )
        uniform = summary_statistics(
            [row.social_cost for row in rows_for(sweep_results, SCENARIO_UNIFORM, strategy)]
        )
        assert same.ci_high < uniform.ci_low

    def test_same_category_discovery_converges_for_every_seed(self, sweep_results):
        for strategy in STRATEGIES:
            rows = rows_for(sweep_results, SCENARIO_SAME_CATEGORY, strategy)
            assert all(row.converged for row in rows)

    def test_selfish_recovers_the_ground_truth_clusters(self, sweep_results):
        """From singletons, selfish discovery ends near M clusters with high
        purity, across the whole seed distribution."""
        config = ExperimentConfig.quick()
        rows = rows_for(sweep_results, SCENARIO_SAME_CATEGORY, "selfish")
        purity = summary_statistics([row.purity for row in rows])
        clusters = summary_statistics([float(row.clusters) for row in rows])
        assert purity.ci_low > 0.8
        assert abs(clusters.mean - config.scenario.num_categories) <= 2.0

    def test_workload_cost_tracks_social_cost_ordering(self, sweep_results):
        """The paper's WCost column shows the same scenario ordering as SCost."""
        for strategy in STRATEGIES:
            same = summary_statistics(
                [
                    row.workload_cost
                    for row in rows_for(sweep_results, SCENARIO_SAME_CATEGORY, strategy)
                ]
            )
            uniform = summary_statistics(
                [
                    row.workload_cost
                    for row in rows_for(sweep_results, SCENARIO_UNIFORM, strategy)
                ]
            )
            assert same.mean < uniform.mean

    def test_per_seed_results_are_complete_tables(self, sweep_results):
        assert set(sweep_results) == set(SEEDS)
        for result in sweep_results.values():
            assert len(result.rows) == 2 * len(STRATEGIES)
