"""Tests for the experiment suite runner and report rendering."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import render_report, run_all


@pytest.fixture(scope="module")
def suite_result():
    config = ExperimentConfig.quick()
    return config, run_all(config)


class TestRunAll:
    def test_all_sections_present(self, suite_result):
        _config, results = suite_result
        assert results.table1.rows
        assert results.figure1.curves
        assert results.figure2.curves
        assert results.figure3.curves
        assert results.figure4.curves

    def test_table1_covers_all_scenarios(self, suite_result):
        _config, results = suite_result
        scenarios = {row.scenario for row in results.table1.rows}
        assert scenarios == {"same-category", "different-category", "uniform"}


class TestRenderReport:
    def test_report_contains_every_section(self, suite_result):
        config, results = suite_result
        report = render_report(results, config=config)
        assert "## Table 1" in report
        assert "## Figure 1" in report
        assert "## Figure 2" in report
        assert "## Figure 3" in report
        assert "## Figure 4" in report

    def test_report_mentions_the_configuration(self, suite_result):
        config, results = suite_result
        report = render_report(results, config=config)
        assert f"{config.scenario.num_peers} peers" in report
