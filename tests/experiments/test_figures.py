"""Tests for the Figure 1-4 experiment drivers (quick scale, shape assertions)."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.figure1 import run_figure1
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4


@pytest.fixture(scope="module")
def quick_config():
    return ExperimentConfig.quick()


class TestFigure1:
    @pytest.fixture(scope="class")
    def result(self, quick_config):
        return run_figure1(quick_config)

    def test_has_both_strategies(self, result):
        assert set(result.curves) == {"selfish", "altruistic"}

    def test_selfish_social_cost_decreases_monotonically(self, result):
        trace = result.curves["selfish"].social_cost
        assert len(trace) >= 2
        assert all(later <= earlier + 1e-9 for earlier, later in zip(trace, trace[1:]))
        assert trace[-1] < trace[0]

    def test_selfish_workload_cost_also_improves(self, result):
        curve = result.curves["selfish"]
        assert curve.workload_cost[-1] <= curve.workload_cost[0] + 1e-9

    def test_altruistic_social_cost_improves(self, result):
        curve = result.curves["altruistic"]
        assert curve.social_cost[-1] < curve.social_cost[0]

    def test_series_accessors(self, result):
        curve = result.curves["selfish"]
        assert curve.social_series()[0] == pytest.approx(curve.social_cost[0])
        assert len(curve.workload_series()) == len(curve.workload_cost)

    def test_to_text_mentions_both_panels(self, result):
        text = result.to_text()
        assert "social cost (selfish)" in text
        assert "workload cost (altruistic)" in text


class TestFigure2And3:
    @pytest.fixture(scope="class")
    def figure2(self, quick_config):
        return run_figure2(quick_config, fractions=(0.0, 0.5, 1.0))

    @pytest.fixture(scope="class")
    def figure3(self, quick_config):
        return run_figure3(quick_config, fractions=(0.0, 0.5, 1.0))

    def test_curve_grid(self, figure2):
        kinds = {curve.update_kind for curve in figure2.curves}
        strategies = {curve.strategy for curve in figure2.curves}
        assert kinds == {"updated-peers", "updated-degree"}
        assert strategies == {"selfish", "altruistic"}
        assert len(figure2.curves) == 4

    def test_zero_update_keeps_the_ideal_cost(self, figure2, quick_config):
        ideal = 1.0 / quick_config.scenario.num_categories
        for curve in figure2.curves:
            assert curve.series()[0.0] == pytest.approx(ideal, abs=0.05)

    def test_updates_never_improve_on_the_ideal_cost(self, figure2):
        for curve in figure2.curves:
            baseline = curve.series()[0.0]
            for fraction, cost in curve.series().items():
                assert cost >= baseline - 1e-6

    def test_selfish_recovers_cost_after_a_complete_workload_change(self, figure2):
        """The paper's Figure 2 claim: the selfish strategy only pays off for large
        (here: 100%) workload changes, where maintenance lowers the social cost."""
        for curve in figure2.curves:
            if curve.strategy != "selfish":
                continue
            full_change = [point for point in curve.points if point.fraction == 1.0][0]
            assert full_change.moves > 0
            assert full_change.social_cost < full_change.social_cost_before_maintenance

    def test_maintenance_effect_is_bounded(self, figure2, figure3):
        """Maintenance may shuffle peers but never blows the social cost up; any
        transient degradation stays small (the gain threshold bounds each move)."""
        for result in (figure2, figure3):
            for curve in result.curves:
                for point in curve.points:
                    assert point.social_cost <= point.social_cost_before_maintenance + 0.15

    def test_selfish_peers_react_to_workload_updates(self, figure2):
        workload_moves = sum(
            point.moves
            for curve in figure2.curves
            if curve.strategy == "selfish"
            for point in curve.points
        )
        assert workload_moves > 0

    def test_altruistic_moves_after_content_updates(self, figure3):
        altruistic_moves = sum(
            point.moves
            for curve in figure3.curves
            if curve.strategy == "altruistic"
            for point in curve.points
        )
        assert altruistic_moves > 0

    def test_curve_lookup(self, figure2):
        assert figure2.curve("updated-peers", "selfish").strategy == "selfish"
        with pytest.raises(KeyError):
            figure2.curve("updated-peers", "static")

    def test_to_text_lists_every_curve(self, figure2):
        text = figure2.to_text()
        assert text.count("figure2") == 4


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self, quick_config):
        return run_figure4(quick_config, fractions=(0.0, 0.25, 0.5, 0.75, 1.0))

    def test_one_curve_per_alpha(self, result):
        assert [curve.alpha for curve in result.curves] == [0.0, 1.0, 2.0]

    def test_cost_increases_with_alpha(self, result):
        for fraction in (0.0, 0.5, 1.0):
            costs = [curve.series()[fraction] for curve in result.curves]
            assert costs[0] <= costs[1] <= costs[2]

    def test_larger_alpha_needs_a_larger_change_to_relocate(self, result):
        relocations = [curve.relocation_fraction for curve in result.curves]
        observed = [fraction for fraction in relocations if fraction is not None]
        assert observed == sorted(observed)
        assert result.curve_for(0.0).relocation_fraction <= (
            result.curve_for(2.0).relocation_fraction or 1.0
        )

    def test_curve_lookup_raises_for_unknown_alpha(self, result):
        with pytest.raises(KeyError):
            result.curve_for(3.5)

    def test_to_text(self, result):
        assert "alpha=1" in result.to_text()
