"""Tests for the benchmark trend comparator (benchmarks/trend.py)."""

from __future__ import annotations

import json
from pathlib import Path

from benchmarks.trend import Comparison, compare_benchmarks, load_benchmark_means, main


def write_bench_json(path: Path, means: dict) -> Path:
    payload = {
        "benchmarks": [
            {"fullname": name, "stats": {"mean": mean}} for name, mean in means.items()
        ]
    }
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


class TestComparison:
    def test_ratio_and_regression(self):
        comparison = Comparison(name="bench", previous_mean=1.0, current_mean=1.30)
        assert comparison.ratio == 1.30
        assert comparison.regressed(25.0)
        assert not comparison.regressed(35.0)

    def test_one_sided_entries_never_regress(self):
        only_new = Comparison(name="new", previous_mean=None, current_mean=2.0)
        only_old = Comparison(name="gone", previous_mean=2.0, current_mean=None)
        assert only_new.ratio is None and not only_new.regressed(0.0)
        assert only_old.ratio is None and not only_old.regressed(0.0)

    def test_compare_pairs_by_name(self):
        comparisons = compare_benchmarks({"a": 1.0, "b": 2.0}, {"b": 2.2, "c": 3.0})
        assert [c.name for c in comparisons] == ["a", "b", "c"]
        by_name = {c.name: c for c in comparisons}
        assert by_name["b"].ratio == 2.2 / 2.0


class TestLoading:
    def test_loads_means_by_fullname(self, tmp_path):
        path = write_bench_json(tmp_path / "bench.json", {"x": 0.5, "y": 1.5})
        assert load_benchmark_means(path) == {"x": 0.5, "y": 1.5}

    def test_entries_without_stats_are_skipped(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"benchmarks": [{"fullname": "x"}]}), encoding="utf-8")
        assert load_benchmark_means(path) == {}


class TestMain:
    def test_regression_fails(self, tmp_path, capsys):
        previous = write_bench_json(tmp_path / "prev.json", {"bench": 1.0})
        current = write_bench_json(tmp_path / "cur.json", {"bench": 1.5})
        assert main([str(previous), str(current), "--max-regression", "25"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_within_threshold_passes(self, tmp_path):
        previous = write_bench_json(tmp_path / "prev.json", {"bench": 1.0})
        current = write_bench_json(tmp_path / "cur.json", {"bench": 1.2})
        assert main([str(previous), str(current), "--max-regression", "25"]) == 0

    def test_missing_previous_passes(self, tmp_path, capsys):
        current = write_bench_json(tmp_path / "cur.json", {"bench": 1.0})
        assert main([str(tmp_path / "nope.json"), str(current)]) == 0
        assert "skipping comparison" in capsys.readouterr().out

    def test_missing_current_fails(self, tmp_path):
        previous = write_bench_json(tmp_path / "prev.json", {"bench": 1.0})
        assert main([str(previous), str(tmp_path / "nope.json")]) == 1

    def test_improvement_passes(self, tmp_path):
        previous = write_bench_json(tmp_path / "prev.json", {"bench": 2.0})
        current = write_bench_json(tmp_path / "cur.json", {"bench": 1.0})
        assert main([str(previous), str(current), "--max-regression", "0"]) == 0


class TestStatisticPreference:
    def test_min_preferred_over_mean(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(
            json.dumps(
                {"benchmarks": [{"fullname": "x", "stats": {"mean": 2.0, "min": 1.0}}]}
            ),
            encoding="utf-8",
        )
        assert load_benchmark_means(path) == {"x": 1.0}


class TestExtraInfoMetrics:
    def write(self, path, extra_info):
        path.write_text(
            json.dumps(
                {
                    "benchmarks": [
                        {
                            "fullname": "x",
                            "stats": {"min": 1.0},
                            "extra_info": extra_info,
                        }
                    ]
                }
            ),
            encoding="utf-8",
        )
        return path

    def test_numeric_extra_info_loaded_as_metric_entries(self, tmp_path):
        path = self.write(tmp_path / "bench.json", {"peak_rss_mb": 512.5, "num_peers": 5000})
        loaded = load_benchmark_means(path)
        assert loaded["x"] == 1.0
        assert loaded["x::peak_rss_mb"] == 512.5
        assert loaded["x::num_peers"] == 5000.0

    def test_non_numeric_extra_info_is_ignored(self, tmp_path):
        path = self.write(
            tmp_path / "bench.json", {"note": "text", "flag": True, "peak_rss_mb": 64.0}
        )
        loaded = load_benchmark_means(path)
        assert set(loaded) == {"x", "x::peak_rss_mb"}

    def test_memory_regression_fails_the_gate(self, tmp_path):
        previous = self.write(tmp_path / "prev.json", {"peak_rss_mb": 100.0})
        current = self.write(tmp_path / "cur.json", {"peak_rss_mb": 150.0})
        assert main([str(previous), str(current), "--max-regression", "25"]) == 1

    def test_newly_recorded_metric_passes_against_old_baseline(self, tmp_path):
        # An older baseline without the metric (or without a whole new 5k/50k
        # benchmark) must not fail the gate: one-sided entries never regress.
        previous = write_bench_json(tmp_path / "prev.json", {"x": 1.0})
        current = self.write(tmp_path / "cur.json", {"peak_rss_mb": 512.0})
        assert main([str(previous), str(current), "--max-regression", "0"]) == 0
