"""Tests for the altruistic relocation strategy (Section 3.1.2, Eq. 6)."""

from __future__ import annotations

import pytest

from repro.errors import StrategyError
from repro.game.model import ClusterGame
from repro.overlay.simulator import OverlaySimulator
from repro.strategies.altruistic import AltruisticStrategy, exact_contributions
from repro.strategies.base import StrategyContext


@pytest.fixture
def exact_context(tiny_network, tiny_configuration):
    game = ClusterGame(tiny_network.cost_model(use_matrix=False), tiny_configuration)
    return StrategyContext(game=game)


@pytest.fixture
def observed_context(tiny_network, tiny_configuration):
    simulator = OverlaySimulator(tiny_network, tiny_configuration)
    simulator.run_period()
    game = ClusterGame(tiny_network.cost_model(use_matrix=False), tiny_configuration)
    return StrategyContext(game=game, statistics=simulator.statistics)


class TestContributions:
    def test_eq6_by_hand_for_alice(self, exact_context):
        """alice only serves bob's "music" query (2 of her docs), i.e. cluster c2 entirely."""
        contributions = exact_contributions("alice", exact_context)
        assert contributions["c2"] == pytest.approx(1.0)
        assert contributions["c1"] == pytest.approx(0.0)

    def test_contributions_sum_to_at_most_one(self, exact_context):
        for peer_id in ("alice", "bob", "carol"):
            total = sum(exact_contributions(peer_id, exact_context).values())
            assert total <= 1.0 + 1e-9

    def test_observed_contributions_match_exact_under_broadcast(
        self, exact_context, observed_context
    ):
        exact_strategy = AltruisticStrategy(mode="exact")
        observed_strategy = AltruisticStrategy(mode="observed")
        for peer_id in ("alice", "bob", "carol"):
            exact = exact_strategy.contributions(peer_id, exact_context)
            observed = observed_strategy.contributions(peer_id, observed_context)
            for cluster_id, value in exact.items():
                assert observed[cluster_id] == pytest.approx(value)

    def test_observed_requires_statistics(self, exact_context):
        with pytest.raises(StrategyError):
            AltruisticStrategy(mode="observed").contributions("alice", exact_context)


class TestGainAndProposal:
    def test_alice_moves_to_where_she_is_needed(self, exact_context):
        """alice contributes everything to c2 (bob's cluster), so she proposes to join it."""
        proposal = AltruisticStrategy().propose("alice", exact_context)
        assert proposal.is_move
        assert proposal.target_cluster == "c2"
        assert proposal.gain > 0

    def test_carol_stays_with_her_consumers(self, exact_context):
        proposal = AltruisticStrategy().propose("carol", exact_context)
        assert not proposal.is_move

    def test_cluster_gain_accounts_for_maintenance_increase(self, exact_context):
        strategy = AltruisticStrategy()
        gain = strategy.cluster_gain("alice", "c2", exact_context)
        contributions = strategy.contributions("alice", exact_context)
        cost_model = exact_context.game.cost_model
        expected = (
            contributions["c2"]
            - contributions["c1"]
            - (
                strategy.join_cost_increase(cost_model, 1)
                - strategy.leave_cost_decrease(cost_model, 2)
            )
        )
        assert gain == pytest.approx(expected)

    def test_invalid_mode_rejected(self):
        with pytest.raises(StrategyError):
            AltruisticStrategy(mode="telepathic")


class TestBatchEquivalence:
    def test_propose_all_matches_individual(self, tiny_network, tiny_configuration):
        strategy = AltruisticStrategy()
        fast_context = StrategyContext(
            game=ClusterGame(tiny_network.cost_model(use_matrix=True), tiny_configuration)
        )
        slow_context = StrategyContext(
            game=ClusterGame(tiny_network.cost_model(use_matrix=False), tiny_configuration)
        )
        batch = strategy.propose_all(tiny_configuration.peer_ids(), fast_context)
        for peer_id in tiny_configuration.peer_ids():
            single = strategy.propose(peer_id, slow_context)
            assert batch[peer_id].target_cluster == single.target_cluster
            assert batch[peer_id].gain == pytest.approx(single.gain)

    def test_propose_all_on_scenario(self, small_scenario):
        """Vectorised and scalar altruistic proposals agree on a realistic scenario."""
        configuration = small_scenario.network.singleton_configuration()
        strategy = AltruisticStrategy()
        fast_context = StrategyContext(
            game=ClusterGame(small_scenario.network.cost_model(use_matrix=True), configuration)
        )
        slow_context = StrategyContext(
            game=ClusterGame(small_scenario.network.cost_model(use_matrix=False), configuration)
        )
        batch = strategy.propose_all(configuration.peer_ids(), fast_context)
        for peer_id in list(configuration.peer_ids())[:6]:
            single = strategy.propose(peer_id, slow_context)
            assert batch[peer_id].target_cluster == single.target_cluster
            assert batch[peer_id].gain == pytest.approx(single.gain)
