"""Tests for the selfish relocation strategy (Section 3.1.1)."""

from __future__ import annotations

import pytest

from repro.errors import StrategyError
from repro.game.model import ClusterGame
from repro.overlay.simulator import OverlaySimulator
from repro.strategies.base import StrategyContext
from repro.strategies.selfish import SelfishStrategy


@pytest.fixture
def exact_context(tiny_network, tiny_configuration):
    game = ClusterGame(tiny_network.cost_model(use_matrix=False), tiny_configuration)
    return StrategyContext(game=game)


@pytest.fixture
def observed_context(tiny_network, tiny_configuration):
    simulator = OverlaySimulator(tiny_network, tiny_configuration)
    simulator.run_period()
    game = ClusterGame(tiny_network.cost_model(use_matrix=False), tiny_configuration)
    return StrategyContext(game=game, statistics=simulator.statistics)


class TestConstruction:
    def test_invalid_mode_rejected(self):
        with pytest.raises(StrategyError):
            SelfishStrategy(mode="psychic")


class TestExactMode:
    def test_bob_moves_to_the_music_cluster(self, exact_context):
        proposal = SelfishStrategy().propose("bob", exact_context)
        assert proposal.is_move
        assert proposal.target_cluster == "c1"
        assert proposal.gain > 0
        # pgain = pcost(current) - pcost(best)
        game = exact_context.game
        assert proposal.gain == pytest.approx(
            game.current_cost("bob") - game.prospective_cost("bob", "c1")
        )

    def test_satisfied_peer_stays(self, exact_context):
        """alice already reaches half the "movies" results via carol; no move improves on that."""
        proposal = SelfishStrategy().propose("alice", exact_context)
        assert not proposal.is_move
        assert proposal.gain == 0.0

    def test_carol_prefers_the_cluster_holding_the_missing_results(self, exact_context):
        proposal = SelfishStrategy().propose("carol", exact_context)
        assert proposal.is_move
        assert proposal.target_cluster == "c2"

    def test_propose_all_matches_individual_proposals(self, tiny_network, tiny_configuration):
        strategy = SelfishStrategy()
        fast_context = StrategyContext(
            game=ClusterGame(tiny_network.cost_model(use_matrix=True), tiny_configuration)
        )
        slow_context = StrategyContext(
            game=ClusterGame(tiny_network.cost_model(use_matrix=False), tiny_configuration)
        )
        batch = strategy.propose_all(tiny_configuration.peer_ids(), fast_context)
        for peer_id in tiny_configuration.peer_ids():
            single = strategy.propose(peer_id, slow_context)
            assert batch[peer_id].target_cluster == single.target_cluster
            assert batch[peer_id].gain == pytest.approx(single.gain)


class TestObservedMode:
    def test_requires_statistics(self, exact_context):
        with pytest.raises(StrategyError):
            SelfishStrategy(mode="observed").propose("bob", exact_context)

    def test_observed_costs_cover_nonempty_clusters(self, observed_context):
        costs = SelfishStrategy(mode="observed").observed_costs("bob", observed_context)
        assert set(costs) == {"c1", "c2"}

    def test_observed_agrees_with_exact_under_broadcast(self, observed_context, exact_context):
        """With broadcast routing the observed decision matches the oracle for the mover."""
        observed = SelfishStrategy(mode="observed").propose("bob", observed_context)
        exact = SelfishStrategy(mode="exact").propose("bob", exact_context)
        assert observed.target_cluster == exact.target_cluster
        assert observed.is_move

    def test_propose_all_falls_back_to_per_peer(self, observed_context):
        strategy = SelfishStrategy(mode="observed")
        batch = strategy.propose_all(["alice", "bob", "carol"], observed_context)
        assert set(batch) == {"alice", "bob", "carol"}
