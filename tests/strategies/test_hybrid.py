"""Tests for the hybrid strategy (Section 6 future-work extension)."""

from __future__ import annotations

import pytest

from repro.errors import StrategyError
from repro.game.model import ClusterGame
from repro.strategies.base import StrategyContext
from repro.strategies.hybrid import HybridStrategy
from repro.strategies.selfish import SelfishStrategy


@pytest.fixture
def context(tiny_network, tiny_configuration):
    game = ClusterGame(tiny_network.cost_model(use_matrix=False), tiny_configuration)
    return StrategyContext(game=game)


class TestConstruction:
    def test_weight_validation(self):
        with pytest.raises(StrategyError):
            HybridStrategy(weight=1.5)
        with pytest.raises(StrategyError):
            HybridStrategy(weight=-0.1)


class TestBehaviour:
    def test_pure_selfish_weight_matches_selfish_target(self, context):
        hybrid = HybridStrategy(weight=1.0)
        selfish = SelfishStrategy()
        for peer_id in ("alice", "bob", "carol"):
            hybrid_proposal = hybrid.propose(peer_id, context)
            selfish_proposal = selfish.propose(peer_id, context)
            if selfish_proposal.is_move and selfish_proposal.target_cluster != "__new_cluster__":
                assert hybrid_proposal.target_cluster == selfish_proposal.target_cluster

    def test_scores_exclude_current_cluster(self, context):
        scores = HybridStrategy(weight=0.5).scores("bob", context)
        assert "c2" not in scores
        assert "c1" in scores

    def test_bob_moves_for_selfish_leaning_weights(self, context):
        """bob's selfish gain dominates once it is weighted above one half."""
        for weight in (0.75, 1.0):
            proposal = HybridStrategy(weight=weight).propose("bob", context)
            assert proposal.is_move
            assert proposal.target_cluster == "c1"

    def test_pure_altruistic_weight_respects_maintenance_penalty(self, context):
        """At weight 0 the blend reduces to the altruistic criterion: in a 3-peer
        network the maintenance increase of growing c1 outweighs bob's contribution,
        so bob stays — the same decision AltruisticStrategy makes."""
        from repro.strategies.altruistic import AltruisticStrategy

        hybrid_proposal = HybridStrategy(weight=0.0).propose("bob", context)
        altruistic_proposal = AltruisticStrategy().propose("bob", context)
        assert hybrid_proposal.is_move == altruistic_proposal.is_move

    def test_stay_when_no_positive_score(self, context):
        """alice has neither a selfish nor an altruistic reason to join bob's cluster."""
        proposal = HybridStrategy(weight=1.0).propose("alice", context)
        assert not proposal.is_move
        assert proposal.gain == 0.0


class TestVectorisedProposeAll:
    def test_batch_matches_per_peer_on_scenario(self, small_scenario):
        """Kernel-backed propose_all reaches the same decisions as propose."""
        configuration = small_scenario.network.singleton_configuration()
        game = ClusterGame(small_scenario.network.cost_model(use_matrix=True), configuration)
        context = StrategyContext(game=game)
        strategy = HybridStrategy(weight=0.5)
        peer_ids = configuration.peer_ids()
        batch = strategy.propose_all(peer_ids, context)
        assert game._active_kernel() is not None
        assert set(batch) == set(peer_ids)
        for peer_id in peer_ids:
            scalar = strategy.propose(peer_id, context)
            assert batch[peer_id].is_move == scalar.is_move
            assert batch[peer_id].target_cluster == scalar.target_cluster
            assert batch[peer_id].gain == pytest.approx(scalar.gain, abs=1e-9)

    def test_batch_falls_back_without_matrix(self, context):
        strategy = HybridStrategy(weight=0.5)
        batch = strategy.propose_all(["alice", "bob", "carol"], context)
        for peer_id in ("alice", "bob", "carol"):
            scalar = strategy.propose(peer_id, context)
            assert batch[peer_id].target_cluster == scalar.target_cluster
