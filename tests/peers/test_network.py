"""Tests for PeerNetwork (population management and derived models)."""

from __future__ import annotations

import pytest

from repro.core.documents import Document
from repro.core.queries import Query
from repro.errors import ConfigurationError, UnknownPeerError
from repro.peers.network import PeerNetwork
from repro.peers.peer import Peer


class TestPopulation:
    def test_add_and_lookup(self, tiny_network):
        assert len(tiny_network) == 3
        assert "alice" in tiny_network
        assert tiny_network.peer("alice").peer_id == "alice"
        assert tiny_network.peer_ids() == ["alice", "bob", "carol"]

    def test_duplicate_peer_rejected(self, tiny_network):
        with pytest.raises(ConfigurationError):
            tiny_network.add_peer(Peer("alice"))

    def test_remove_peer(self, tiny_network):
        removed = tiny_network.remove_peer("bob")
        assert removed.peer_id == "bob"
        assert len(tiny_network) == 2
        with pytest.raises(UnknownPeerError):
            tiny_network.peer("bob")

    def test_result_count_delegates_to_peer(self, tiny_network):
        assert tiny_network.result_count(Query(["music"]), "alice") == 2


class TestDerivedModels:
    def test_global_workload_merges_local_workloads(self, tiny_network):
        global_workload = tiny_network.global_workload()
        assert global_workload.total() == 4
        assert global_workload.count(Query(["movies"])) == 3

    def test_recall_model_tracks_content_updates(self, tiny_network):
        model = tiny_network.recall_model()
        assert model.total_results(Query(["music"])) == 3
        tiny_network.peer("alice").replace_documents([Document(["movies"])])
        refreshed = tiny_network.recall_model()
        assert refreshed.total_results(Query(["music"])) == 1

    def test_recall_model_tracks_churn(self, tiny_network):
        tiny_network.recall_model()
        tiny_network.remove_peer("alice")
        assert len(tiny_network.recall_model()) == 2

    def test_recall_matrix_is_cached(self, tiny_network):
        first = tiny_network.recall_matrix()
        second = tiny_network.recall_matrix()
        assert first is second
        assert tiny_network.recall_matrix(rebuild=True) is not first

    def test_cost_model_matrix_toggle(self, tiny_network):
        assert tiny_network.cost_model(use_matrix=True).matrix is not None
        assert tiny_network.cost_model(use_matrix=False).matrix is None

    def test_configuration_helpers(self, tiny_network):
        slots = tiny_network.full_configuration_slots()
        assert len(slots.cluster_ids()) == 3
        singles = tiny_network.singleton_configuration()
        assert singles.num_nonempty_clusters() == 3
