"""Tests for ClusterConfiguration (the strategy profile S)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, UnknownClusterError, UnknownPeerError
from repro.peers.configuration import ClusterConfiguration


def build_configuration():
    return ClusterConfiguration(
        ["c1", "c2", "c3"], {"p1": "c1", "p2": "c1", "p3": "c2"}
    )


class TestConstruction:
    def test_duplicate_cluster_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterConfiguration(["c1", "c1"])

    def test_singletons(self):
        configuration = ClusterConfiguration.singletons(["p1", "p2", "p3"])
        assert configuration.num_nonempty_clusters() == 3
        assert all(size == 1 for size in configuration.sizes().values())

    def test_with_slots(self):
        configuration = ClusterConfiguration.with_slots(4)
        assert len(configuration.cluster_ids()) == 4
        assert configuration.num_nonempty_clusters() == 0
        with pytest.raises(ConfigurationError):
            ClusterConfiguration.with_slots(0)

    def test_assignment_constructor_accepts_iterables(self):
        configuration = ClusterConfiguration(["c1", "c2"], {"p1": ["c1", "c2"]})
        assert configuration.clusters_of("p1") == frozenset({"c1", "c2"})

    def test_copy_is_deep(self):
        configuration = build_configuration()
        duplicate = configuration.copy()
        duplicate.move("p3", "c2", "c3")
        assert configuration.cluster_of("p3") == "c2"
        assert duplicate.cluster_of("p3") == "c3"


class TestMembershipQueries:
    def test_members_and_sizes(self):
        configuration = build_configuration()
        assert configuration.members("c1") == frozenset({"p1", "p2"})
        assert configuration.size("c1") == 2
        assert configuration.sizes() == {"c1": 2, "c2": 1}

    def test_nonempty_and_empty_clusters(self):
        configuration = build_configuration()
        assert configuration.nonempty_clusters() == ["c1", "c2"]
        assert configuration.empty_clusters() == ["c3"]

    def test_cluster_of_and_covered_peers(self):
        configuration = build_configuration()
        assert configuration.cluster_of("p1") == "c1"
        assert configuration.covered_peers("p1") == frozenset({"p1", "p2"})

    def test_cluster_of_requires_single_membership(self):
        configuration = ClusterConfiguration(["c1", "c2"], {"p1": ["c1", "c2"]})
        with pytest.raises(ConfigurationError):
            configuration.cluster_of("p1")

    def test_unknown_lookups_raise(self):
        configuration = build_configuration()
        with pytest.raises(UnknownClusterError):
            configuration.members("nope")
        with pytest.raises(UnknownPeerError):
            configuration.clusters_of("ghost")


class TestMutation:
    def test_assign_twice_rejected(self):
        configuration = build_configuration()
        with pytest.raises(ConfigurationError):
            configuration.assign("p1", "c1")

    def test_move(self):
        configuration = build_configuration()
        configuration.move("p1", "c1", "c2")
        assert configuration.cluster_of("p1") == "c2"
        assert configuration.members("c1") == frozenset({"p2"})

    def test_move_validations(self):
        configuration = build_configuration()
        with pytest.raises(ConfigurationError):
            configuration.move("p1", "c1", "c1")
        with pytest.raises(ConfigurationError):
            configuration.move("p1", "c2", "c3")
        with pytest.raises(UnknownPeerError):
            configuration.move("ghost", "c1", "c2")

    def test_remove_peer(self):
        configuration = build_configuration()
        configuration.remove_peer("p1")
        assert "p1" not in configuration
        assert configuration.members("c1") == frozenset({"p2"})
        with pytest.raises(UnknownPeerError):
            configuration.remove_peer("p1")

    def test_add_cluster(self):
        configuration = build_configuration()
        configuration.add_cluster("c4")
        assert "c4" in configuration.cluster_ids()
        with pytest.raises(ConfigurationError):
            configuration.add_cluster("c1")


class TestAnalysisHelpers:
    def test_partition_and_signature(self):
        configuration = build_configuration()
        partition = configuration.as_partition()
        assert partition == {"c1": frozenset({"p1", "p2"}), "c2": frozenset({"p3"})}
        assert configuration.signature() == (("c1", ("p1", "p2")), ("c2", ("p3",)))

    def test_equality_compares_partitions(self):
        assert build_configuration() == build_configuration()
        other = build_configuration()
        other.move("p3", "c2", "c3")
        assert build_configuration() != other

    def test_membership_matrix(self):
        configuration = build_configuration()
        matrix, clusters = configuration.membership_matrix(["p1", "p2", "p3"])
        assert clusters == ["c1", "c2", "c3"]
        expected = np.array([[1, 0, 0], [1, 0, 0], [0, 1, 0]], dtype=float)
        assert np.array_equal(matrix, expected)

    def test_membership_matrix_with_explicit_cluster_order(self):
        configuration = build_configuration()
        matrix, clusters = configuration.membership_matrix(["p3"], ["c2"])
        assert clusters == ["c2"]
        assert matrix.shape == (1, 1)
        assert matrix[0, 0] == 1.0


class TestRandomMoveProperty:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=20))
    def test_moves_never_lose_peers(self, moves):
        """Applying any sequence of (valid) moves keeps every peer assigned exactly once."""
        peer_ids = [f"p{index}" for index in range(6)]
        configuration = ClusterConfiguration.singletons(peer_ids)
        cluster_ids = configuration.cluster_ids()
        for step, choice in enumerate(moves):
            peer_id = peer_ids[step % len(peer_ids)]
            source = configuration.cluster_of(peer_id)
            target = cluster_ids[choice % len(cluster_ids)]
            if target == source:
                continue
            configuration.move(peer_id, source, target)
            assert configuration.cluster_of(peer_id) == target
        assert sorted(configuration.peer_ids()) == sorted(peer_ids)
        assert sum(configuration.sizes().values()) == len(peer_ids)


class RecordingListener:
    """Collects configuration mutation callbacks for assertions."""

    def __init__(self):
        self.events = []

    def configuration_assigned(self, peer_id, cluster_id):
        self.events.append(("assign", peer_id, cluster_id))

    def configuration_unassigned(self, peer_id, cluster_id):
        self.events.append(("unassign", peer_id, cluster_id))

    def configuration_cluster_added(self, cluster_id):
        self.events.append(("cluster", cluster_id))


class TestListeners:
    def test_assign_move_remove_notify_in_order(self):
        configuration = build_configuration()
        listener = RecordingListener()
        configuration.add_listener(listener)
        configuration.assign("p9", "c3")
        configuration.move("p9", "c3", "c2")
        configuration.remove_peer("p9")
        configuration.add_cluster("c4")
        assert listener.events == [
            ("assign", "p9", "c3"),
            ("unassign", "p9", "c3"),
            ("assign", "p9", "c2"),
            ("unassign", "p9", "c2"),
            ("cluster", "c4"),
        ]

    def test_remove_listener(self):
        configuration = build_configuration()
        listener = RecordingListener()
        configuration.add_listener(listener)
        configuration.remove_listener(listener)
        configuration.assign("p9", "c3")
        assert listener.events == []

    def test_dead_listeners_are_pruned(self):
        import gc

        configuration = build_configuration()
        configuration.add_listener(RecordingListener())
        gc.collect()
        configuration.assign("p9", "c3")  # prunes the dead weakref
        assert configuration._listeners == []

    def test_copy_does_not_inherit_listeners(self):
        configuration = build_configuration()
        listener = RecordingListener()
        configuration.add_listener(listener)
        duplicate = configuration.copy()
        duplicate.assign("p9", "c1")
        assert listener.events == []


class TestCoveredPeersFastPath:
    def test_single_cluster_peer_reuses_the_member_view(self):
        configuration = build_configuration()
        peer = configuration.peer_ids()[0]
        (cluster_id,) = configuration.clusters_of(peer)
        assert configuration.covered_peers(peer) is configuration.members(cluster_id)

    def test_multi_cluster_peer_unions_members(self):
        configuration = build_configuration()
        peer = configuration.peer_ids()[0]
        (current,) = configuration.clusters_of(peer)
        other = next(c for c in configuration.cluster_ids() if c != current)
        configuration.assign(peer, other)
        covered = configuration.covered_peers(peer)
        assert covered == configuration.members(current) | configuration.members(other)


class TestListenerCacheConsistency:
    def test_partition_caches_survive_listener_reads_during_remove(self):
        """A listener reading the caches mid-remove_peer must not freeze stale state."""

        class Snooper:
            def __init__(self, configuration):
                self.configuration = configuration

            def configuration_unassigned(self, peer_id, cluster_id):
                # Repopulates the partition caches between the per-cluster removals.
                self.configuration.empty_clusters()
                self.configuration.nonempty_clusters()

        configuration = ClusterConfiguration(["c1", "c2"], {"p0": "c1"})
        configuration.assign("p0", "c2")  # p0 is the only member of both clusters
        snooper = Snooper(configuration)
        configuration.add_listener(snooper)
        configuration.remove_peer("p0")
        assert configuration.empty_clusters() == ["c1", "c2"]
        assert configuration.nonempty_clusters() == []
