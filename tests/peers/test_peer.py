"""Tests for the Peer class (content and workload management)."""

from __future__ import annotations


from repro.core.documents import Document
from repro.core.queries import Query, QueryWorkload
from repro.peers.peer import Peer


class TestContent:
    def test_result_count_uses_index(self):
        peer = Peer("p", documents=[Document(["music"]), Document(["music", "rock"])])
        assert peer.result_count(Query(["music"])) == 2
        assert peer.result_count(Query(["rock"])) == 1

    def test_add_document_updates_index_and_version(self):
        peer = Peer("p")
        version = peer.version
        peer.add_document(Document(["music"]))
        assert peer.result_count(Query(["music"])) == 1
        assert peer.version == version + 1

    def test_replace_documents(self):
        peer = Peer("p", documents=[Document(["music"])])
        peer.replace_documents([Document(["movies"]), Document(["movies", "drama"])])
        assert peer.result_count(Query(["music"])) == 0
        assert peer.result_count(Query(["movies"])) == 2

    def test_replace_document_fraction(self):
        peer = Peer("p", documents=[Document(["music"]) for _ in range(4)])
        peer.replace_document_fraction(0.5, [Document(["movies"]), Document(["movies"])])
        assert peer.result_count(Query(["music"])) == 2
        assert peer.result_count(Query(["movies"])) == 2

    def test_dominant_category(self):
        peer = Peer(
            "p",
            documents=[
                Document(["a"], category="music"),
                Document(["b"], category="music"),
                Document(["c"], category="movies"),
            ],
        )
        assert peer.dominant_category() == "music"
        assert Peer("empty").dominant_category() is None


class TestWorkload:
    def test_issue_query(self):
        peer = Peer("p")
        peer.issue_query(Query(["music"]), 3)
        assert peer.workload.count(Query(["music"])) == 3

    def test_replace_workload_copies(self):
        peer = Peer("p")
        replacement = QueryWorkload([Query(["a"])])
        peer.replace_workload(replacement)
        replacement.add(Query(["b"]))
        assert Query(["b"]) not in peer.workload

    def test_replace_workload_fraction_preserves_volume(self):
        peer = Peer("p")
        peer.issue_query(Query(["old"]), 10)
        peer.replace_workload_fraction(0.4, QueryWorkload([Query(["new"])]))
        assert peer.workload.total() == 10
        assert peer.workload.count(Query(["new"])) == 4
        assert peer.workload.count(Query(["old"])) == 6

    def test_workload_constructor_copies(self):
        workload = QueryWorkload([Query(["a"])])
        peer = Peer("p", workload=workload)
        workload.add(Query(["b"]))
        assert Query(["b"]) not in peer.workload


class TestIdentity:
    def test_equality_by_id(self):
        assert Peer("x") == Peer("x")
        assert Peer("x") != Peer("y")
        assert hash(Peer("x")) == hash(Peer("x"))
