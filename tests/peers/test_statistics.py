"""Tests for the per-peer observation trackers."""

from __future__ import annotations

import pytest

from repro.core.queries import Query
from repro.peers.statistics import ClusterRecallTracker, ContributionTracker, PeerStatistics


class TestClusterRecallTracker:
    def test_cluster_recall_per_query(self):
        tracker = ClusterRecallTracker()
        query = Query(["music"])
        tracker.record(query, "c1", 3)
        tracker.record(query, "c2", 1)
        assert tracker.cluster_recall(query, "c1") == pytest.approx(0.75)
        assert tracker.cluster_recall(query, "c2") == pytest.approx(0.25)
        assert tracker.cluster_recall(Query(["other"]), "c1") == 0.0

    def test_observed_recall_by_cluster(self):
        tracker = ClusterRecallTracker()
        tracker.record(Query(["a"]), "c1", 2)
        tracker.record(Query(["b"]), "c2", 2)
        shares = tracker.observed_recall_by_cluster()
        assert shares == {"c1": 0.5, "c2": 0.5}

    def test_empty_tracker(self):
        tracker = ClusterRecallTracker()
        assert tracker.observed_recall_by_cluster() == {}
        assert tracker.total_results() == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            ClusterRecallTracker().record(Query(["a"]), "c1", -1)

    def test_reset(self):
        tracker = ClusterRecallTracker()
        tracker.record(Query(["a"]), "c1", 1)
        tracker.record_query()
        tracker.reset()
        assert tracker.total_results() == 0
        assert tracker.queries_observed() == 0

    def test_observed_clusters_sorted(self):
        tracker = ClusterRecallTracker()
        tracker.record(Query(["a"]), "c2", 1)
        tracker.record(Query(["a"]), "c1", 1)
        assert list(tracker.observed_clusters()) == ["c1", "c2"]


class TestContributionTracker:
    def test_contribution_shares(self):
        tracker = ContributionTracker()
        tracker.record_served("c1", 6)
        tracker.record_served("c2", 2)
        assert tracker.contribution("c1") == pytest.approx(0.75)
        assert tracker.contribution("c2") == pytest.approx(0.25)
        assert tracker.contribution("c3") == 0.0
        assert sum(tracker.contributions().values()) == pytest.approx(1.0)

    def test_best_cluster(self):
        tracker = ContributionTracker()
        assert tracker.best_cluster() is None
        tracker.record_served("c1", 1)
        tracker.record_served("c2", 5)
        assert tracker.best_cluster() == "c2"

    def test_empty_contribution_is_zero(self):
        assert ContributionTracker().contribution("c1") == 0.0

    def test_negative_rejected_and_reset(self):
        tracker = ContributionTracker()
        with pytest.raises(ValueError):
            tracker.record_served("c1", -2)
        tracker.record_served("c1", 2)
        tracker.reset()
        assert tracker.total_served() == 0


class TestPeerStatistics:
    def test_reset_clears_both(self):
        statistics = PeerStatistics()
        statistics.recall_tracker.record(Query(["a"]), "c1", 1)
        statistics.contribution_tracker.record_served("c1", 1)
        statistics.reset()
        assert statistics.recall_tracker.total_results() == 0
        assert statistics.contribution_tracker.total_served() == 0
