"""Tests for the Cluster class (membership and representative election)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.peers.cluster import Cluster


class TestMembership:
    def test_add_and_remove(self):
        cluster = Cluster("c1")
        cluster.add("p1")
        cluster.add("p2")
        assert cluster.size == 2
        assert "p1" in cluster
        cluster.remove("p1")
        assert cluster.size == 1
        assert "p1" not in cluster

    def test_remove_non_member_raises(self):
        with pytest.raises(ConfigurationError):
            Cluster("c1").remove("ghost")

    def test_is_empty(self):
        cluster = Cluster("c1")
        assert cluster.is_empty
        cluster.add("p1")
        assert not cluster.is_empty

    def test_members_view_is_immutable_snapshot(self):
        cluster = Cluster("c1", ["p1"])
        members = cluster.members
        cluster.add("p2")
        assert members == frozenset({"p1"})

    def test_iteration_is_sorted(self):
        cluster = Cluster("c1", ["p2", "p1", "p3"])
        assert list(cluster) == ["p1", "p2", "p3"]


class TestRepresentative:
    def test_default_election_is_deterministic(self):
        cluster = Cluster("c1", ["p2", "p1"])
        assert cluster.elect_representative() == "p1"
        assert cluster.representative == "p1"

    def test_explicit_election(self):
        cluster = Cluster("c1", ["p1", "p2"])
        assert cluster.elect_representative("p2") == "p2"

    def test_cannot_elect_non_member(self):
        with pytest.raises(ConfigurationError):
            Cluster("c1", ["p1"]).elect_representative("ghost")

    def test_empty_cluster_has_no_representative(self):
        cluster = Cluster("c1")
        assert cluster.elect_representative() is None

    def test_departing_representative_is_cleared(self):
        cluster = Cluster("c1", ["p1", "p2"])
        cluster.elect_representative("p1")
        cluster.remove("p1")
        assert cluster.representative is None
