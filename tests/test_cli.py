"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_discover_defaults(self):
        arguments = build_parser().parse_args(["discover"])
        assert arguments.scale == "quick"
        assert arguments.strategy == "selfish"
        assert arguments.initial == "singletons"

    def test_invalid_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["discover", "--scale", "galactic"])


class TestCommands:
    def test_discover_prints_metrics(self, capsys):
        assert main(["discover", "--scale", "quick"]) == 0
        output = capsys.readouterr().out
        assert "social cost" in output
        assert "clusters" in output

    def test_discover_with_altruistic_strategy(self, capsys):
        assert main(["discover", "--scale", "quick", "--strategy", "altruistic"]) == 0
        assert "altruistic" in capsys.readouterr().out

    def test_maintain_prints_period_table(self, capsys):
        assert main(["maintain", "--scale", "quick", "--periods", "2"]) == 0
        output = capsys.readouterr().out
        assert "SCost before" in output
        assert output.count("\n") >= 4

    def test_figure4_command(self, capsys):
        assert main(["figure4", "--scale", "quick"]) == 0
        assert "alpha=1" in capsys.readouterr().out

    def test_report_written_to_file(self, tmp_path, capsys):
        output_file = tmp_path / "report.md"
        assert main(["report", "--scale", "quick", "--output", str(output_file)]) == 0
        content = output_file.read_text(encoding="utf-8")
        assert "## Table 1" in content
        assert "## Figure 4" in content


class TestRegistryDrivenChoices:
    def test_discover_accepts_registered_scenario_spellings(self, capsys):
        assert main(["discover", "--scale", "quick", "--scenario", "uniform"]) == 0
        assert "social cost" in capsys.readouterr().out

    def test_discover_strategy_choices_come_from_the_registry(self):
        from repro.registry import strategy_registry

        parser = build_parser()
        for name in strategy_registry.names():
            arguments = parser.parse_args(["discover", "--strategy", name])
            assert arguments.strategy == name

    def test_baseline_strategy_usable_from_the_cli(self, capsys):
        assert main(["discover", "--scale", "quick", "--strategy", "static"]) == 0
        output = capsys.readouterr().out
        assert "static" in output
