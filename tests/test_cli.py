"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_discover_defaults(self):
        arguments = build_parser().parse_args(["discover"])
        assert arguments.scale == "quick"
        assert arguments.strategy == "selfish"
        assert arguments.initial == "singletons"

    def test_invalid_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["discover", "--scale", "galactic"])


class TestCommands:
    def test_discover_prints_metrics(self, capsys):
        assert main(["discover", "--scale", "quick"]) == 0
        output = capsys.readouterr().out
        assert "social cost" in output
        assert "clusters" in output

    def test_discover_with_altruistic_strategy(self, capsys):
        assert main(["discover", "--scale", "quick", "--strategy", "altruistic"]) == 0
        assert "altruistic" in capsys.readouterr().out

    def test_maintain_prints_period_table(self, capsys):
        assert main(["maintain", "--scale", "quick", "--periods", "2"]) == 0
        output = capsys.readouterr().out
        assert "SCost before" in output
        assert output.count("\n") >= 4

    def test_figure4_command(self, capsys):
        assert main(["figure4", "--scale", "quick"]) == 0
        assert "alpha=1" in capsys.readouterr().out

    def test_report_written_to_file(self, tmp_path, capsys):
        output_file = tmp_path / "report.md"
        assert main(["report", "--scale", "quick", "--output", str(output_file)]) == 0
        content = output_file.read_text(encoding="utf-8")
        assert "## Table 1" in content
        assert "## Figure 4" in content


class TestRegistryDrivenChoices:
    def test_discover_accepts_registered_scenario_spellings(self, capsys):
        assert main(["discover", "--scale", "quick", "--scenario", "uniform"]) == 0
        assert "social cost" in capsys.readouterr().out

    def test_discover_strategy_choices_come_from_the_registry(self):
        from repro.registry import strategy_registry

        parser = build_parser()
        for name in strategy_registry.names():
            arguments = parser.parse_args(["discover", "--strategy", name])
            assert arguments.strategy == name

    def test_baseline_strategy_usable_from_the_cli(self, capsys):
        assert main(["discover", "--scale", "quick", "--strategy", "static"]) == 0
        output = capsys.readouterr().out
        assert "static" in output


class TestSweepCommand:
    def test_sweep_from_flags_prints_progress_and_summary(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--scale",
                    "quick",
                    "--strategy",
                    "selfish",
                    "--strategy",
                    "altruistic",
                    "--seeds",
                    "7,11",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "[4/4]" in output
        assert "sweep finished: 4 tasks" in output
        assert "final_social_cost" in output
        assert "ci95 low" in output

    def test_sweep_persists_jsonl(self, tmp_path, capsys):
        output_file = tmp_path / "sweep.jsonl"
        assert (
            main(
                [
                    "sweep",
                    "--scale",
                    "quick",
                    "--replications",
                    "2",
                    "--workers",
                    "2",
                    "--output",
                    str(output_file),
                    "--no-progress",
                ]
            )
            == 0
        )
        from repro.sweep import read_jsonl

        spec, records = read_jsonl(str(output_file))
        assert spec.replications == 2
        assert len(records) == 2

    def test_sweep_from_spec_file(self, tmp_path, capsys):
        import json

        spec_file = tmp_path / "spec.json"
        spec_file.write_text(
            json.dumps(
                {"scale": "quick", "strategies": ["selfish"], "seeds": [7]}
            ),
            encoding="utf-8",
        )
        assert main(["sweep", "--spec", str(spec_file), "--no-progress"]) == 0
        assert "selfish" in capsys.readouterr().out

    def test_sweep_rejects_malformed_seeds(self, capsys):
        assert main(["sweep", "--scale", "quick", "--seeds", "seven"]) == 2
        assert "comma-separated integers" in capsys.readouterr().err

    def test_sweep_spec_file_with_unknown_keys_reports_cleanly(self, tmp_path, capsys):
        import json

        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps({"strategiez": ["selfish"]}), encoding="utf-8")
        assert main(["sweep", "--spec", str(spec_file)]) == 2
        assert "unknown sweep spec keys" in capsys.readouterr().err

    def test_workers_flag_available_on_experiment_commands(self):
        arguments = build_parser().parse_args(["table1", "--workers", "4"])
        assert arguments.workers == 4

    def test_sweep_executor_flag(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--scale",
                    "quick",
                    "--strategy",
                    "selfish",
                    "--seeds",
                    "7",
                    "--executor",
                    "serial",
                ]
            )
            == 0
        )
        assert "serial" in capsys.readouterr().out

    def test_sweep_executor_choices_come_from_the_registry(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--executor", "quantum"])
        arguments = build_parser().parse_args(["sweep", "--executor", "chunked-streaming"])
        assert arguments.executor == "chunked-streaming"

    def test_sweep_executor_options_require_executor(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--scale",
                    "quick",
                    "--seeds",
                    "7",
                    "--executor-options",
                    '{"max_workers": 2}',
                ]
            )
            == 2
        )
        assert "--executor-options requires --executor" in capsys.readouterr().err

    def test_sweep_store_resumes_without_reexecution(self, tmp_path, capsys):
        store = tmp_path / "store"
        flags = [
            "sweep",
            "--scale",
            "quick",
            "--strategy",
            "selfish",
            "--seeds",
            "7,11",
            "--store",
            str(store),
        ]
        assert main(flags) == 0
        first = capsys.readouterr().out
        assert "(2 executed, 0 loaded)" in first
        assert f"store {str(store)!r}: 2 stored results" in first
        assert main(flags) == 0
        second = capsys.readouterr().out
        assert "(0 executed, 2 loaded)" in second
        assert "loaded from store" in second

    def test_sweep_no_resume_reexecutes(self, tmp_path, capsys):
        store = tmp_path / "store"
        flags = [
            "sweep",
            "--scale",
            "quick",
            "--strategy",
            "selfish",
            "--seeds",
            "7",
            "--store",
            str(store),
            "--no-progress",
        ]
        assert main(flags) == 0
        capsys.readouterr()
        assert main(flags + ["--no-resume"]) == 0
        assert "1 stored results" in capsys.readouterr().out


class TestDynamicsFlags:
    def test_maintain_accepts_an_inline_dynamics_spec(self, capsys):
        assert (
            main(
                [
                    "maintain",
                    "--scale",
                    "quick",
                    "--periods",
                    "2",
                    "--dynamics",
                    '{"model": "churn", "options": {"departures": 2}}',
                ]
            )
            == 0
        )
        assert "SCost before" in capsys.readouterr().out

    def test_maintain_rejects_malformed_dynamics_json(self, capsys):
        assert main(["maintain", "--scale", "quick", "--dynamics", "{nope"]) == 2
        assert "--dynamics expects inline JSON" in capsys.readouterr().err

    def test_missing_dynamics_file_reports_cleanly(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["maintain", "--scale", "quick", "--dynamics", f"@{missing}"]) == 2
        assert "--dynamics expects inline JSON" in capsys.readouterr().err

    def test_malformed_dynamics_file_reports_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope", encoding="utf-8")
        assert main(["maintain", "--scale", "quick", "--dynamics", f"@{bad}"]) == 2
        assert "--dynamics expects inline JSON" in capsys.readouterr().err

    def test_maintain_reports_unknown_drift_models_cleanly(self, capsys):
        assert (
            main(["maintain", "--scale", "quick", "--dynamics", '{"model": "quantum"}'])
            == 2
        )
        assert "drift model" in capsys.readouterr().err

    def test_sweep_dynamics_axis_with_maintain_runner(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--scale",
                    "quick",
                    "--runner",
                    "maintain",
                    "--runner-options",
                    '{"periods": 1}',
                    "--seeds",
                    "7",
                    "--dynamics",
                    '{"model": "workload-full", "options": {"peer_fraction": 0.5}}',
                    "--dynamics",
                    '{"model": "none"}',
                    "--no-progress",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "sweep finished" not in output  # --no-progress suppresses it
        assert "final_social_cost" in output

    def test_sweep_dynamics_from_file(self, tmp_path, capsys):
        import json

        spec_file = tmp_path / "drift.json"
        spec_file.write_text(
            json.dumps({"model": "churn", "options": {"departures": 1}}),
            encoding="utf-8",
        )
        assert (
            main(
                [
                    "sweep",
                    "--scale",
                    "quick",
                    "--runner",
                    "maintain",
                    "--seeds",
                    "7",
                    "--dynamics",
                    f"@{spec_file}",
                    "--no-progress",
                ]
            )
            == 0
        )
        assert "final_social_cost" in capsys.readouterr().out


class TestFaultToleranceFlags:
    def test_parser_defaults(self):
        arguments = build_parser().parse_args(["sweep"])
        assert arguments.retries is None
        assert arguments.task_timeout is None
        assert arguments.faults is None
        assert arguments.verify_store is False
        assert arguments.purge_corrupt is False

    def test_retries_recover_an_injected_fault(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--scale",
                    "quick",
                    "--strategy",
                    "selfish",
                    "--seeds",
                    "7",
                    "--retries",
                    "1",
                    "--faults",
                    '{"rules": [{"fault": "task-exception", "index": 0, "attempts": [1]}]}',
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "attempt 1 failed" in output
        assert "retrying as attempt 2" in output
        assert "sweep finished: 1 tasks (1 executed, 0 loaded)" in output
        assert "quarantined" not in output

    def test_exhausted_retries_print_the_quarantine_summary(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--scale",
                    "quick",
                    "--strategy",
                    "selfish",
                    "--strategy",
                    "altruistic",
                    "--seeds",
                    "7",
                    "--faults",
                    '{"rules": [{"fault": "task-exception", "index": 1}]}',
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "quarantined after 1 attempt" in output
        assert "(1 executed, 0 loaded, 1 quarantined)" in output
        assert "1 task quarantined: 1" in output

    def test_malformed_faults_json_reports_cleanly(self, capsys):
        assert main(["sweep", "--scale", "quick", "--seeds", "7", "--faults", "{nope"]) == 2
        assert "--faults expects inline JSON" in capsys.readouterr().err

    def test_task_timeout_flag_is_accepted(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--scale",
                    "quick",
                    "--strategy",
                    "selfish",
                    "--seeds",
                    "7",
                    "--task-timeout",
                    "120",
                    "--no-progress",
                ]
            )
            == 0
        )
        assert "final_social_cost" in capsys.readouterr().out


class TestVerifyStoreFlag:
    def _fill_store(self, store, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--scale",
                    "quick",
                    "--strategy",
                    "selfish",
                    "--seeds",
                    "7,11",
                    "--store",
                    str(store),
                    "--no-progress",
                ]
            )
            == 0
        )
        capsys.readouterr()

    def test_clean_store_verifies_ok(self, tmp_path, capsys):
        store = tmp_path / "store"
        self._fill_store(store, capsys)
        assert main(["sweep", "--store", str(store), "--verify-store"]) == 0
        assert "2 entries checked, 0 corrupt, 0 purged" in capsys.readouterr().out

    def test_corrupt_entry_reported_and_purged(self, tmp_path, capsys):
        from repro.sweep import ResultStore

        store = tmp_path / "store"
        self._fill_store(store, capsys)
        store_obj = ResultStore(store)
        digest = next(iter(store_obj.task_hashes()))
        store_obj.task_path(digest).write_text("junk", encoding="utf-8")

        assert main(["sweep", "--store", str(store), "--verify-store"]) == 1
        output = capsys.readouterr().out
        assert f"corrupt store entry {digest[:12]}" in output
        assert "1 corrupt, 0 purged" in output

        assert (
            main(["sweep", "--store", str(store), "--verify-store", "--purge-corrupt"])
            == 0
        )
        assert "1 corrupt, 1 purged" in capsys.readouterr().out
        assert main(["sweep", "--store", str(store), "--verify-store"]) == 0

    def test_verify_store_requires_a_store(self, capsys):
        assert main(["sweep", "--verify-store"]) == 2
        assert "--verify-store requires --store" in capsys.readouterr().err


class TestSweepStatusAndPrune:
    def _populated_store(self, tmp_path):
        store = tmp_path / "store"
        assert (
            main(
                [
                    "sweep",
                    "--scale",
                    "quick",
                    "--strategy",
                    "selfish",
                    "--seeds",
                    "7",
                    "--store",
                    str(store),
                    "--no-progress",
                ]
            )
            == 0
        )
        return store

    def test_status_reports_counts(self, tmp_path, capsys):
        store = self._populated_store(tmp_path)
        capsys.readouterr()
        assert main(["sweep", "--status", "--store", str(store)]) == 0
        output = capsys.readouterr().out
        assert "pending tasks" in output
        assert "stored results" in output
        assert "workers live" in output

    def test_status_lists_workers_with_liveness(self, tmp_path, capsys):
        from repro.sweep.queue import TaskQueue

        store = self._populated_store(tmp_path)
        TaskQueue(store).register_worker("w1")
        capsys.readouterr()
        assert main(["sweep", "--status", "--store", str(store)]) == 0
        assert "worker w1: live" in capsys.readouterr().out

    def test_status_requires_a_store(self, capsys):
        assert main(["sweep", "--status"]) == 2
        assert "--status requires --store" in capsys.readouterr().err

    def test_prune_store_reports_removals(self, tmp_path, capsys):
        import os
        import time as time_module

        from repro.sweep.queue import TaskQueue

        store = self._populated_store(tmp_path)
        queue = TaskQueue(store)
        queue.register_worker("ghost")
        past = time_module.time() - 7200
        os.utime(queue.workers_dir / "ghost.json", (past, past))
        capsys.readouterr()
        assert main(["sweep", "--prune-store", "--store", str(store)]) == 0
        output = capsys.readouterr().out
        assert "pruned" in output
        assert "1 worker files" in output
        assert not (queue.workers_dir / "ghost.json").exists()

    def test_prune_store_requires_a_store(self, capsys):
        assert main(["sweep", "--prune-store"]) == 2
        assert "--prune-store requires --store" in capsys.readouterr().err


class TestSweepWorkerCommand:
    def test_parser_defaults(self):
        arguments = build_parser().parse_args(["sweep-worker", "--store", "s"])
        assert arguments.store == "s"
        assert arguments.worker_id is None
        assert arguments.poll_interval == 0.2
        assert arguments.lease_timeout is None
        assert arguments.drain is False
        assert arguments.max_tasks is None

    def test_store_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep-worker"])

    def test_drain_on_an_empty_store_exits_cleanly(self, tmp_path, capsys):
        # main() marks the process as a worker; undo it so later tests in
        # this interpreter keep the in-process fault semantics.
        import repro.sweep.faults as faults

        try:
            code = main(
                ["sweep-worker", "--store", str(tmp_path / "store"), "--drain"]
            )
        finally:
            faults._IN_WORKER = False
        assert code == 0
        assert "0 tasks executed" in capsys.readouterr().out

    def test_worker_drains_queued_tasks_into_the_store(self, tmp_path, capsys):
        from repro.sweep import ResultStore, SweepSpec
        from repro.sweep.queue import QueueEntry, TaskQueue
        from repro.sweep.store import task_hash

        spec = SweepSpec(
            strategies=("selfish",),
            scale="quick",
            seeds=(7,),
            overrides={
                "scenario_overrides": {
                    "num_peers": 12,
                    "num_categories": 3,
                    "documents_per_peer": 4,
                    "terms_per_document": 3,
                    "category_vocabulary_size": 15,
                    "queries_per_peer": 3,
                }
            },
        )
        task = spec.validate()[0]
        store = ResultStore(tmp_path / "store")
        queue = TaskQueue(store.root)
        queue.write_config({})
        queue.enqueue(
            QueueEntry(task=task.to_dict(), task_hash=task_hash(task), index=task.index)
        )
        import repro.sweep.faults as faults

        try:
            code = main(
                ["sweep-worker", "--store", str(store.root), "--drain", "--max-tasks", "1"]
            )
        finally:
            faults._IN_WORKER = False
        assert code == 0
        assert "1 task executed" in capsys.readouterr().out
        assert store.get(task_hash(task)) is not None
        assert queue.empty()
