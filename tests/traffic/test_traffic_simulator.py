"""Tests for the batched traffic simulator: parity, invariance and accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.scenarios import (
    SCENARIO_DIFFERENT_CATEGORY,
    SCENARIO_SAME_CATEGORY,
    SCENARIO_UNIFORM,
    ScenarioConfig,
    build_scenario,
    initial_configuration,
)
from repro.errors import ConfigurationError
from repro.events import EventHooks
from repro.overlay.routing import BroadcastRouter, ProbeKRouter
from repro.overlay.simulator import OverlaySimulator
from repro.traffic.simulator import TrafficSimulator
from repro.traffic.workloads import ReplayWorkload

#: Small enough that a broadcast replay runs in milliseconds per scenario.
PARITY_CONFIG = ScenarioConfig(
    num_peers=12,
    num_categories=3,
    documents_per_peer=4,
    terms_per_document=3,
    category_vocabulary_size=15,
    queries_per_peer=3,
    seed=9,
)


class TestBroadcastReplayParity:
    """Satellite acceptance: simulator recall == exact model recall at 1e-9."""

    @pytest.mark.parametrize(
        "scenario, initial",
        [
            (SCENARIO_SAME_CATEGORY, "category"),
            (SCENARIO_DIFFERENT_CATEGORY, "category"),
            (SCENARIO_UNIFORM, "random"),  # uniform data has no categories
        ],
    )
    def test_observed_recall_matches_covered_weight(self, scenario, initial):
        data = build_scenario(scenario, PARITY_CONFIG)
        configuration = initial_configuration(data, initial)
        report = TrafficSimulator(data.network, configuration).run(workload="replay")
        matrix = data.network.recall_matrix()
        for peer_id in data.network.peer_ids():
            observed = report.observed_cluster_recall(peer_id)
            for cluster_id in report.cluster_order:
                exact = matrix.covered_weight(
                    peer_id, configuration.members(cluster_id)
                )
                assert observed[cluster_id] == pytest.approx(exact, abs=1e-9)

    def test_parity_survives_multiple_passes(self, tiny_network, tiny_configuration):
        report = TrafficSimulator(tiny_network, tiny_configuration).run(
            workload="replay", workload_options={"passes": 3}
        )
        matrix = tiny_network.recall_matrix()
        observed = report.observed_cluster_recall("alice")
        assert observed["c2"] == pytest.approx(
            matrix.covered_weight("alice", tiny_configuration.members("c2")), abs=1e-12
        )


class TestLegacyMessageParity:
    """The vectorised accounting reproduces the per-query MessageBus totals."""

    def test_tiny_network_replay_matches_run_period(
        self, tiny_network, tiny_configuration
    ):
        legacy = OverlaySimulator(tiny_network, tiny_configuration)
        period = legacy.run_period()
        report = TrafficSimulator(tiny_network, tiny_configuration).run(
            workload="replay"
        )
        assert report.events == period.queries_routed
        assert report.message_counts == period.messages
        assert report.result_items == period.results_returned

    def test_scenario_replay_matches_run_period(self, small_scenario):
        configuration = initial_configuration(small_scenario, "category")
        legacy = OverlaySimulator(small_scenario.network, configuration)
        period = legacy.run_period()
        report = TrafficSimulator(small_scenario.network, configuration).run(
            workload="replay"
        )
        assert report.events == period.queries_routed
        assert report.message_counts == period.messages
        assert report.result_items == period.results_returned

    def test_probe_k_message_parity(self, small_scenario):
        configuration = initial_configuration(small_scenario, "category")
        legacy = OverlaySimulator(
            small_scenario.network,
            configuration,
            router=ProbeKRouter(small_scenario.network, k=2),
        )
        period = legacy.run_period()
        report = TrafficSimulator(
            small_scenario.network,
            configuration,
            router=ProbeKRouter(small_scenario.network, k=2),
        ).run(workload="replay")
        assert report.message_counts == period.messages
        assert report.result_items == period.results_returned


class TestBatchInvariance:
    def test_metrics_are_independent_of_batch_size(
        self, tiny_network, tiny_configuration
    ):
        payloads = []
        for batch_size in (7, 100_000):
            report = TrafficSimulator(
                tiny_network, tiny_configuration, batch_size=batch_size
            ).run(workload="flash-crowd", num_events=500, seed=5)
            payload = report.to_dict()
            payload.pop("batches")  # the only batch-size-dependent field
            payloads.append(payload)
        assert payloads[0] == payloads[1]

    def test_batch_size_must_be_positive(self, tiny_network, tiny_configuration):
        with pytest.raises(ConfigurationError, match="batch_size"):
            TrafficSimulator(tiny_network, tiny_configuration, batch_size=0)


class TestEventLoop:
    def test_multi_stream_drain_preserves_global_time_order(
        self, tiny_network, tiny_configuration
    ):
        simulator = TrafficSimulator(
            tiny_network, tiny_configuration, batch_size=16, keep_log=True
        )
        report = simulator.run(workload="flash-crowd", num_events=400, seed=2)
        assert report.events == 400
        times = simulator.log.times()
        assert times.size == 400
        assert np.all(np.diff(times) >= 0)

    def test_log_indexes_agree_with_the_report(self, tiny_network, tiny_configuration):
        simulator = TrafficSimulator(tiny_network, tiny_configuration, keep_log=True)
        report = simulator.run(num_events=200, seed=4)
        counts = simulator.log.issuer_counts()
        for row, peer_id in enumerate(report.peer_order):
            assert counts.get(row, 0) == int(report.issuer_event_counts[row])

    def test_keep_log_false_skips_the_log(self, tiny_network, tiny_configuration):
        simulator = TrafficSimulator(tiny_network, tiny_configuration, keep_log=False)
        simulator.run(num_events=50)
        assert simulator.log is None

    def test_zero_events_yield_an_empty_report(self, tiny_network, tiny_configuration):
        report = TrafficSimulator(tiny_network, tiny_configuration).run(num_events=0)
        assert report.events == 0
        assert report.batches == 0
        assert report.latency_ms.count == 0
        assert report.qps == 0.0


class TestRouters:
    def test_probe_k_never_beats_broadcast_recall(self, small_scenario):
        configuration = initial_configuration(small_scenario, "category")
        broadcast = TrafficSimulator(small_scenario.network, configuration).run(
            workload="replay"
        )
        probed = TrafficSimulator(
            small_scenario.network,
            configuration,
            router=ProbeKRouter(small_scenario.network, k=2),
        ).run(workload="replay")
        assert probed.recall.mean <= broadcast.recall.mean + 1e-12
        assert probed.query_messages < broadcast.query_messages

    def test_non_invariant_router_falls_back_to_per_peer_groups(
        self, tiny_network, tiny_configuration
    ):
        class OpaqueBroadcast(BroadcastRouter):
            """Same targets, but hides the cluster-invariance contract."""

            cluster_invariant = False

        fast = TrafficSimulator(tiny_network, tiny_configuration).run(
            workload="replay"
        )
        slow = TrafficSimulator(
            tiny_network, tiny_configuration, router=OpaqueBroadcast(tiny_network)
        ).run(workload="replay")
        fast_payload, slow_payload = fast.to_dict(), slow.to_dict()
        fast_payload.pop("router")
        slow_payload.pop("router")
        assert fast_payload == slow_payload


class TestHooks:
    def test_query_routed_fires_per_batch_and_summary_once(
        self, tiny_network, tiny_configuration
    ):
        hooks = EventHooks()
        routed, summaries = [], []
        hooks.on_query_routed(routed.append)
        hooks.on_traffic_summary(summaries.append)
        report = TrafficSimulator(
            tiny_network, tiny_configuration, hooks=hooks, batch_size=64
        ).run(num_events=300, seed=1)
        assert len(routed) == report.batches > 1
        assert sum(event.events for event in routed) == report.events == 300
        assert [event.batch_index for event in routed] == list(range(len(routed)))
        assert len(summaries) == 1
        assert summaries[0].report is report


class TestRunValidation:
    def test_generator_instance_refuses_options(self, tiny_network, tiny_configuration):
        simulator = TrafficSimulator(tiny_network, tiny_configuration)
        with pytest.raises(ConfigurationError, match="workload_options"):
            simulator.run(workload=ReplayWorkload(), workload_options={"passes": 2})

    def test_generator_instance_is_accepted(self, tiny_network, tiny_configuration):
        report = TrafficSimulator(tiny_network, tiny_configuration).run(
            workload=ReplayWorkload(passes=2)
        )
        assert report.workload == "replay"
        assert report.events == 8  # 4 recorded occurrences x 2 passes
