"""Tests for the registered query-arrival workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, UnknownComponentError
from repro.traffic.events import merge_streams
from repro.traffic.workloads import (
    FlashCrowdWorkload,
    ReplayWorkload,
    UniformWorkload,
    WorkloadContext,
    ZipfWorkload,
    build_workload,
)


def make_context(network, *, num_events=500, horizon=1.0, seed=3):
    return WorkloadContext.from_network(
        network, num_events=num_events, horizon=horizon, seed=seed
    )


class TestWorkloadContext:
    def test_counts_mirror_the_recorded_workloads(self, tiny_network):
        context = make_context(tiny_network)
        assert context.peers == tiny_network.peer_ids()
        assert context.counts.shape == (3, len(context.queries))
        workloads = tiny_network.workloads()
        for row, peer_id in enumerate(context.peers):
            assert int(context.counts[row].sum()) == sum(
                count for _query, count in workloads[peer_id].items()
            )

    def test_every_tiny_peer_is_an_issuer(self, tiny_network):
        context = make_context(tiny_network)
        assert context.issuing_rows().tolist() == [0, 1, 2]

    def test_negative_num_events_rejected(self, tiny_network):
        with pytest.raises(ConfigurationError, match="num_events"):
            make_context(tiny_network, num_events=-1)

    def test_nonpositive_horizon_rejected(self, tiny_network):
        with pytest.raises(ConfigurationError, match="horizon"):
            make_context(tiny_network, horizon=0.0)

    def test_uniform_times_are_sorted_within_the_window(self, tiny_network):
        context = make_context(tiny_network)
        times = context.uniform_times(100, 0.25, 0.5)
        assert np.all(np.diff(times) >= 0)
        assert times.min() >= 0.25
        assert times.max() < 0.75


class TestDeterminism:
    @pytest.mark.parametrize(
        "generator_factory",
        [UniformWorkload, ZipfWorkload, FlashCrowdWorkload, ReplayWorkload],
    )
    def test_same_seed_means_identical_streams(self, tiny_network, generator_factory):
        first = generator_factory().streams(make_context(tiny_network, seed=11))
        second = generator_factory().streams(make_context(tiny_network, seed=11))
        assert len(first) == len(second)
        for left, right in zip(first, second):
            np.testing.assert_array_equal(left.times, right.times)
            np.testing.assert_array_equal(left.issuers, right.issuers)
            np.testing.assert_array_equal(left.queries, right.queries)

    def test_different_seeds_differ(self, tiny_network):
        first = UniformWorkload().streams(make_context(tiny_network, seed=1))[0]
        second = UniformWorkload().streams(make_context(tiny_network, seed=2))[0]
        assert not np.array_equal(first.times, second.times)


class TestUniformWorkload:
    def test_emits_the_requested_event_count(self, tiny_network):
        (stream,) = UniformWorkload().streams(make_context(tiny_network, num_events=200))
        assert len(stream) == 200
        assert stream.label == "uniform"

    def test_issuers_only_pose_their_own_queries(self, tiny_network):
        context = make_context(tiny_network, num_events=300)
        (stream,) = UniformWorkload().streams(context)
        # Every sampled (issuer, query) pair exists in the recorded workloads.
        assert np.all(context.counts[stream.issuers, stream.queries] > 0)


class TestZipfWorkload:
    def test_exponent_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="exponent"):
            ZipfWorkload(exponent=0.0)

    def test_strong_skew_favours_the_most_demanding_peer(self, tiny_network):
        context = make_context(tiny_network, num_events=400, seed=7)
        (stream,) = ZipfWorkload(exponent=3.0).streams(context)
        counts = np.bincount(stream.issuers, minlength=3)
        # alice (row 0) has the largest local workload, so rank 1.
        assert counts[0] == counts.max()
        assert counts[0] > counts[1] + counts[2]


class TestFlashCrowdWorkload:
    def test_burst_parameters_are_validated(self):
        with pytest.raises(ConfigurationError, match="burst_fraction"):
            FlashCrowdWorkload(burst_fraction=1.5)
        with pytest.raises(ConfigurationError, match="burst window"):
            FlashCrowdWorkload(burst_duration=0.0)
        with pytest.raises(ConfigurationError, match="hot_queries"):
            FlashCrowdWorkload(hot_queries=0)

    def test_emits_base_and_burst_streams(self, tiny_network):
        context = make_context(tiny_network, num_events=200)
        streams = FlashCrowdWorkload(
            burst_fraction=0.4, burst_start=0.4, burst_duration=0.1
        ).streams(context)
        assert [stream.label for stream in streams] == ["base", "burst"]
        base, burst = streams
        assert len(base) == 120
        assert len(burst) == 80

    def test_burst_lands_in_the_window_on_the_hot_queries(self, tiny_network):
        context = make_context(tiny_network, num_events=200)
        _, burst = FlashCrowdWorkload(
            burst_fraction=0.5, burst_start=0.4, burst_duration=0.1, hot_queries=1
        ).streams(context)
        assert burst.times.min() >= 0.4
        assert burst.times.max() < 0.5 + 1e-9
        hottest = int(np.argmax(context.counts.sum(axis=0)))
        assert set(burst.queries.tolist()) == {hottest}

    def test_streams_merge_into_global_time_order(self, tiny_network):
        context = make_context(tiny_network, num_events=200)
        merged = merge_streams(FlashCrowdWorkload().streams(context))
        assert np.all(np.diff(merged.times) >= 0)
        assert len(merged) == 200


class TestReplayWorkload:
    def test_passes_must_be_at_least_one(self):
        with pytest.raises(ConfigurationError, match="passes"):
            ReplayWorkload(passes=0)

    def test_replays_every_occurrence_exactly_once_per_pass(self, tiny_network):
        context = make_context(tiny_network)
        for passes in (1, 3):
            (stream,) = ReplayWorkload(passes=passes).streams(context)
            replayed = np.zeros_like(context.counts)
            np.add.at(replayed, (stream.issuers, stream.queries), 1)
            np.testing.assert_array_equal(replayed, context.counts * passes)

    def test_replay_is_seed_independent(self, tiny_network):
        first = ReplayWorkload().streams(make_context(tiny_network, seed=1))[0]
        second = ReplayWorkload().streams(make_context(tiny_network, seed=99))[0]
        np.testing.assert_array_equal(first.issuers, second.issuers)
        np.testing.assert_array_equal(first.times, second.times)


class TestBuildWorkload:
    def test_builds_by_registered_name_and_alias(self):
        assert isinstance(build_workload("uniform"), UniformWorkload)
        assert isinstance(build_workload("zipf-heavy-tail"), ZipfWorkload)
        assert isinstance(build_workload("flash"), FlashCrowdWorkload)
        assert isinstance(build_workload("Flash_Crowd"), FlashCrowdWorkload)

    def test_options_reach_the_generator(self):
        generator = build_workload("zipf", exponent=2.5)
        assert generator.exponent == 2.5

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownComponentError):
            build_workload("tsunami")
