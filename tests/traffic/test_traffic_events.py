"""Tests for query event streams, stream merging and the indexed traffic log."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traffic.events import QueryEvent, QueryEventStream, TrafficLog, merge_streams


def make_stream(times, issuers, queries, label="events"):
    return QueryEventStream(
        np.asarray(times, dtype=float),
        np.asarray(issuers, dtype=np.int64),
        np.asarray(queries, dtype=np.int64),
        label=label,
    )


class TestQueryEventStream:
    def test_length_and_dtypes(self):
        stream = make_stream([0.1, 0.2, 0.3], [0, 1, 0], [2, 0, 1])
        assert len(stream) == 3
        assert stream.times.dtype == np.float64
        assert stream.issuers.dtype == np.int64
        assert stream.queries.dtype == np.int64

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="identical shapes"):
            make_stream([0.1, 0.2], [0], [1, 2])

    def test_multidimensional_arrays_rejected(self):
        square = np.zeros((2, 2))
        with pytest.raises(ValueError, match="one-dimensional"):
            QueryEventStream(square, square.astype(np.int64), square.astype(np.int64))

    def test_unsorted_times_rejected(self):
        with pytest.raises(ValueError, match="not sorted"):
            make_stream([0.2, 0.1], [0, 1], [0, 1], label="bad")

    def test_event_materialises_against_context_orders(self):
        stream = make_stream([0.5], [1], [0])
        event = stream.event(0, ["alice", "bob"], ["q0", "q1"])
        assert event == QueryEvent(time=0.5, issuer="bob", query="q0")

    def test_equal_timestamps_are_allowed(self):
        stream = make_stream([0.1, 0.1, 0.1], [0, 1, 2], [0, 0, 0])
        assert len(stream) == 3


class TestMergeStreams:
    def test_merge_is_globally_time_sorted(self):
        first = make_stream([0.1, 0.4], [0, 0], [0, 0])
        second = make_stream([0.2, 0.3], [1, 1], [1, 1])
        merged = merge_streams([first, second])
        assert merged.times.tolist() == [0.1, 0.2, 0.3, 0.4]
        assert merged.issuers.tolist() == [0, 1, 1, 0]

    def test_ties_resolve_by_stream_order(self):
        # Both streams fire at t=0.5; stream 0's event must come first.
        first = make_stream([0.5], [7], [0])
        second = make_stream([0.5], [9], [0])
        merged = merge_streams([first, second])
        assert merged.issuers.tolist() == [7, 9]

    def test_empty_streams_are_skipped(self):
        empty = make_stream([], [], [])
        events = make_stream([0.2], [3], [1])
        merged = merge_streams([empty, events])
        assert len(merged) == 1
        assert merged.issuers.tolist() == [3]

    def test_merging_nothing_yields_an_empty_stream(self):
        merged = merge_streams([])
        assert len(merged) == 0
        assert merged.label == "merged"


class TestTrafficLog:
    def test_append_returns_the_assigned_id_range(self):
        log = TrafficLog()
        first = log.append_batch(
            np.array([0.1, 0.2]), np.array([0, 1]), np.array([0, 0])
        )
        second = log.append_batch(np.array([0.3]), np.array([0]), np.array([1]))
        assert first == (0, 2)
        assert second == (2, 3)
        assert len(log) == 3

    def test_indexes_stay_in_lockstep_with_appends(self):
        log = TrafficLog()
        log.append_batch(np.array([0.1, 0.2]), np.array([0, 1]), np.array([5, 5]))
        # The very same call updated both secondary indexes: no flush needed.
        assert log.event_ids_for_issuer(0).tolist() == [0]
        assert log.event_ids_for_issuer(1).tolist() == [1]
        assert log.event_ids_for_query(5).tolist() == [0, 1]
        log.append_batch(np.array([0.3]), np.array([0]), np.array([7]))
        assert log.event_ids_for_issuer(0).tolist() == [0, 2]
        assert log.event_ids_for_query(7).tolist() == [2]

    def test_unknown_keys_read_empty(self):
        log = TrafficLog()
        assert log.event_ids_for_issuer(42).size == 0
        assert log.event_ids_for_query(42).size == 0

    def test_issuer_counts_come_from_the_live_index(self):
        log = TrafficLog()
        log.append_batch(
            np.array([0.1, 0.2, 0.3]), np.array([1, 0, 1]), np.array([0, 1, 2])
        )
        assert log.issuer_counts() == {0: 1, 1: 2}

    def test_append_order_is_preserved_in_column_reads(self):
        log = TrafficLog()
        log.append_batch(np.array([0.1]), np.array([2]), np.array([4]))
        log.append_batch(np.array([0.2, 0.3]), np.array([0, 1]), np.array([3, 4]))
        assert log.times().tolist() == [0.1, 0.2, 0.3]
        assert log.issuers().tolist() == [2, 0, 1]
        assert log.queries().tolist() == [4, 3, 4]

    def test_empty_batch_is_a_noop(self):
        log = TrafficLog()
        assert log.append_batch(np.array([]), np.array([]), np.array([])) == (0, 0)
        assert len(log) == 0
        assert not log.has_new()

    def test_consume_new_drains_the_trigger_buffer(self):
        log = TrafficLog()
        log.append_batch(np.array([0.1]), np.array([0]), np.array([0]))
        log.append_batch(np.array([0.2]), np.array([1]), np.array([1]))
        assert log.has_new()
        assert log.consume_new().tolist() == [0, 1]
        assert not log.has_new()
        assert log.consume_new().size == 0
        log.append_batch(np.array([0.3]), np.array([0]), np.array([0]))
        assert log.consume_new().tolist() == [2]
