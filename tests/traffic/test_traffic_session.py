"""Traffic through the session facade, the sweep engine and the CLI."""

from __future__ import annotations

import json

import pytest

from repro import SessionConfig, Simulation, SimulationBuilder
from repro.cli import main
from repro.errors import ConfigurationError, UnknownComponentError
from repro.session.result import KIND_TRAFFIC
from repro.sweep import SweepSpec, run_sweep

#: Scenario small enough that one task runs in a few milliseconds.
TINY_SCENARIO = {
    "num_peers": 12,
    "num_categories": 3,
    "documents_per_peer": 4,
    "terms_per_document": 3,
    "category_vocabulary_size": 15,
    "queries_per_peer": 3,
}

QUICK = SessionConfig(
    scenario="same_category",
    strategy="selfish",
    scale="quick",
    scenario_overrides=dict(TINY_SCENARIO),
)


class TestRunTraffic:
    def test_run_traffic_returns_a_traffic_kind_result(self):
        simulation = Simulation.from_config(QUICK)
        result = simulation.run_traffic(num_events=500, seed=3)
        assert result.kind == KIND_TRAFFIC
        assert result.queries_routed == 500
        assert result.extras["traffic_events"] == 500
        assert "latency_p50" in result.extras
        assert "recall_mean" in result.extras
        assert result.extras["traffic"]["events"] == 500
        assert simulation.last_traffic_report is not None
        assert simulation.last_traffic_report.events == 500

    def test_config_traffic_bag_supplies_defaults(self):
        config = QUICK.with_options(
            traffic={"workload": "zipf", "num_events": 200, "seed": 5}
        )
        simulation = Simulation.from_config(config)
        result = simulation.run_traffic()
        assert result.extras["traffic"]["workload"] == "zipf"
        assert result.queries_routed == 200

    def test_overrides_shadow_the_config_bag(self):
        config = QUICK.with_options(traffic={"num_events": 200})
        result = Simulation.from_config(config).run_traffic(num_events=50)
        assert result.queries_routed == 50

    def test_num_queries_alias_is_accepted(self):
        result = Simulation.from_config(QUICK).run_traffic(num_queries=64)
        assert result.queries_routed == 64

    def test_unknown_setting_is_rejected_with_the_valid_keys(self):
        with pytest.raises(ConfigurationError, match="unknown traffic settings"):
            Simulation.from_config(QUICK).run_traffic(warp_factor=9)

    def test_same_seed_reproduces_the_report(self):
        first = Simulation.from_config(QUICK).run_traffic(num_events=300, seed=8)
        second = Simulation.from_config(QUICK).run_traffic(num_events=300, seed=8)
        assert first.extras["traffic"] == second.extras["traffic"]

    def test_traffic_config_round_trips_through_json(self):
        config = QUICK.with_options(traffic={"workload": "flash-crowd"})
        rebuilt = SessionConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert rebuilt.traffic == {"workload": "flash-crowd"}
        # None stays out of the serialised form entirely.
        assert "traffic" not in QUICK.to_dict()


class TestBuilder:
    def test_builder_traffic_settings_and_hooks(self):
        summaries = []
        simulation = (
            SimulationBuilder()
            .scenario("same_category", **TINY_SCENARIO)
            .scale("quick")
            .traffic(workload="uniform", num_events=150, seed=2)
            .on_traffic_summary(summaries.append)
            .build()
        )
        result = simulation.run_traffic()
        assert result.queries_routed == 150
        assert len(summaries) == 1
        assert summaries[0].report.events == 150

    def test_on_query_routed_streams_batches(self):
        batches = []
        simulation = (
            SimulationBuilder()
            .scenario("same_category", **TINY_SCENARIO)
            .scale("quick")
            .on_query_routed(batches.append)
            .build()
        )
        simulation.run_traffic(num_events=300, batch_size=64, seed=1)
        assert sum(event.events for event in batches) == 300


def traffic_spec(**overrides) -> SweepSpec:
    values = {
        "scenarios": ("same_category",),
        "strategies": ("selfish",),
        "scale": "quick",
        "overrides": {"scenario_overrides": dict(TINY_SCENARIO)},
        "seeds": (7,),
        "runner": "traffic",
        "runner_options": {"after": "discover", "num_events": 200},
        "workloads": ("uniform", "zipf"),
    }
    values.update(overrides)
    return SweepSpec(**values)


class TestTrafficSweep:
    def test_workloads_expand_as_a_grid_axis(self):
        tasks = traffic_spec().expand()
        assert len(tasks) == 2
        assert [task.config["traffic"]["workload"] for task in tasks] == [
            "uniform",
            "zipf",
        ]

    def test_workload_mappings_merge_into_the_traffic_bag(self):
        tasks = traffic_spec(
            workloads=({"workload": "zipf", "workload_options": {"exponent": 2.0}},)
        ).expand()
        assert tasks[0].config["traffic"]["workload_options"] == {"exponent": 2.0}

    def test_unknown_workload_is_rejected_at_validation(self):
        with pytest.raises(UnknownComponentError, match="tsunami"):
            traffic_spec(workloads=("tsunami",)).validate()

    def test_spec_round_trips_through_dict(self):
        spec = traffic_spec()
        assert SweepSpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()

    def test_traffic_metrics_are_byte_identical_for_any_worker_count(self):
        spec = traffic_spec()
        serial = run_sweep(spec, workers=1)
        pooled = run_sweep(spec, workers=2)
        assert [r.to_dict() for r in serial.results] == [
            r.to_dict() for r in pooled.results
        ]
        # The traffic scalars are usable directly as sweep metrics.
        assert len(serial.metric_values("latency_p95")) == 2
        assert all(value > 0 for value in serial.metric_values("qps"))

    def test_runner_grafts_the_shaping_phase_metrics(self):
        result = run_sweep(traffic_spec(workloads=("uniform",)), workers=1).results[0]
        assert result.kind == KIND_TRAFFIC
        assert result.rounds > 0  # from the discovery phase
        assert result.extras["traffic_events"] == 200

    def test_summary_groups_keep_workload_variants_apart(self):
        sweep = run_sweep(traffic_spec(), workers=1)
        groups = sweep.summarize(metrics=("recall_mean",))
        assert len(groups) == 2  # one per workload grid point

    def test_unknown_after_phase_is_rejected(self):
        with pytest.raises(ConfigurationError, match="phase"):
            run_sweep(
                traffic_spec(
                    workloads=("uniform",),
                    runner_options={"after": "tea-break"},
                ),
                workers=1,
            )

    def test_after_phase_accepts_registry_aliases(self):
        # "discovery" is a registered alias of the "discover" runner; the
        # phase dispatch resolves through the runner registry, so both
        # spellings produce byte-identical results.
        canonical = run_sweep(traffic_spec(workloads=("uniform",))).results[0]
        aliased = run_sweep(
            traffic_spec(
                workloads=("uniform",),
                runner_options={"after": "discovery", "num_events": 200},
            )
        ).results[0]
        assert aliased.to_dict() == canonical.to_dict()


class TestCli:
    def test_traffic_command_prints_the_distribution_table(self, capsys):
        assert (
            main(
                [
                    "traffic",
                    "--scale",
                    "quick",
                    "--num-events",
                    "2000",
                    "--workload",
                    "zipf",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "latency_ms" in output
        assert "recall" in output
        assert "zipf" in output

    def test_traffic_command_with_probe_router_and_discovery(self, capsys):
        assert (
            main(
                [
                    "traffic",
                    "--scale",
                    "quick",
                    "--after",
                    "discover",
                    "--router",
                    "probe-k",
                    "--router-options",
                    '{"k": 2}',
                    "--num-events",
                    "1000",
                ]
            )
            == 0
        )
        assert "ProbeKRouter" in capsys.readouterr().out

    def test_sweep_command_accepts_workload_axes_and_metrics(self, capsys, tmp_path):
        assert (
            main(
                [
                    "sweep",
                    "--scale",
                    "quick",
                    "--scenario",
                    "same-category",
                    "--strategy",
                    "selfish",
                    "--seeds",
                    "7",
                    "--runner",
                    "traffic",
                    "--runner-options",
                    '{"after": "none", "num_events": 500}',
                    "--workload",
                    "uniform",
                    "--workload",
                    '{"workload": "zipf", "workload_options": {"exponent": 2.0}}',
                    "--metrics",
                    "recall_mean,latency_p95",
                    "--output",
                    str(tmp_path / "sweep.jsonl"),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "recall_mean" in output
        assert "latency_p95" in output
        assert (tmp_path / "sweep.jsonl").exists()
