"""Randomized incremental parity: ``labels`` backend vs ``dense`` backend.

Both kernels listen on the *same* configuration and absorb the same 200
random membership operations (moves, multi-membership assigns, removals,
re-adds); after every batch each public API must agree:

* ``float64``: 1e-9 absolute, the same contract as the exact-reference
  parity suite;
* ``float32``: rtol=1e-4 / atol=1e-3, the documented relaxation for the
  single-precision mode (see the kernel docstring and the README
  performance section).

Only public APIs are exercised — the backends share no internal
representation (there is no |P| x |C| matrix in the labels kernel to
compare), so parity on costs, tables and responses is the whole contract.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.datasets.scenarios import (
    SCENARIO_SAME_CATEGORY,
    build_scenario,
    initial_configuration,
)
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.game.kernel import BestResponseKernel

#: Documented float32 tolerance: recall weights are O(1) sums of O(1e-2)
#: terms, so single precision carries ~1e-7 relative error per entry which
#: accumulates across |P| incremental updates; rtol=1e-4/atol=1e-3 bounds it
#: with two orders of margin (observed drift after 200 ops: ~1e-7).
FLOAT32_RTOL = 1e-4
FLOAT32_ATOL = 1e-3


def build_pair(dtype=None):
    config = ExperimentConfig.quick()
    data = build_scenario(SCENARIO_SAME_CATEGORY, config.scenario)
    configuration = initial_configuration(data, "random", seed=config.seed + 13)
    cost_model = data.network.cost_model(theta=config.theta(), alpha=config.alpha)
    dense = BestResponseKernel(cost_model, configuration, backend="dense")
    labels = BestResponseKernel(cost_model, configuration, backend="labels", dtype=dtype)
    return configuration, dense, labels


def assert_parity(dense, labels, configuration, *, rtol=0.0, atol=1e-9):
    candidates = configuration.nonempty_clusters()
    np.testing.assert_allclose(
        labels.cost_table(candidates), dense.cost_table(candidates), rtol=rtol, atol=atol
    )
    np.testing.assert_allclose(
        labels.new_cluster_costs(), dense.new_cluster_costs(), rtol=rtol, atol=atol
    )
    dense_current = dense.current_costs()
    for peer_id, cost in labels.current_costs().items():
        assert cost == pytest.approx(dense_current[peer_id], rel=rtol, abs=atol)
    # Aggregate costs iterate the matrix peer order, so they are only defined
    # while every matrix peer is still assigned (same for both backends).
    if set(configuration.peer_ids()) >= set(dense.peer_order):
        for normalized in (False, True):
            assert labels.social_cost(normalized=normalized) == pytest.approx(
                dense.social_cost(normalized=normalized), rel=rtol, abs=atol
            )
            assert labels.workload_cost(normalized=normalized) == pytest.approx(
                dense.workload_cost(normalized=normalized), rel=rtol, abs=atol
            )
    dense_responses, _ = dense.best_response_all(candidate_clusters=candidates)
    labels_responses, _ = labels.best_response_all(candidate_clusters=candidates)
    assert set(labels_responses) == set(dense_responses)
    for peer_id, response in labels_responses.items():
        assert response.best_cost == pytest.approx(
            dense_responses[peer_id].best_cost, rel=rtol, abs=atol
        )


def churn(configuration, rng, steps, check_every, on_check):
    """Drive *steps* random membership ops, calling *on_check* periodically."""
    peer_pool = list(configuration.peer_ids())
    removed = []
    for step in range(1, steps + 1):
        operation = rng.choice(["move", "move", "move", "extra", "remove", "readd"])
        if operation == "remove" and len(peer_pool) > 4:
            peer_id = rng.choice(peer_pool)
            peer_pool.remove(peer_id)
            removed.append(peer_id)
            configuration.remove_peer(peer_id)
        elif operation == "readd" and removed:
            peer_id = removed.pop(rng.randrange(len(removed)))
            peer_pool.append(peer_id)
            configuration.assign(peer_id, rng.choice(configuration.cluster_ids()))
        elif operation == "extra":
            # Multi-membership: overflow entries in the labels backend.
            peer_id = rng.choice(peer_pool)
            targets = [
                c
                for c in configuration.cluster_ids()
                if c not in configuration.clusters_of(peer_id)
            ]
            if targets:
                configuration.assign(peer_id, rng.choice(targets))
        else:
            peer_id = rng.choice(peer_pool)
            source = rng.choice(sorted(configuration.clusters_of(peer_id), key=repr))
            targets = [
                c
                for c in configuration.cluster_ids()
                if c not in configuration.clusters_of(peer_id)
            ]
            if targets:
                configuration.move(peer_id, source, rng.choice(targets))
        if step % check_every == 0:
            on_check()


class TestRandomizedBackendParity:
    def test_float64_parity_across_200_random_operations(self):
        configuration, dense, labels = build_pair()
        labels.global_covered()  # materialise CV so the updates maintain it too
        dense.global_covered()
        rng = random.Random(20260808)
        churn(
            configuration,
            rng,
            steps=200,
            check_every=25,
            on_check=lambda: assert_parity(dense, labels, configuration, atol=1e-9),
        )
        assert_parity(dense, labels, configuration, atol=1e-9)
        # Cross-check the incrementally maintained state against rebuilds.
        rebuilt = BestResponseKernel(labels.cost_model, configuration, backend="labels")
        assert_parity(rebuilt, labels, configuration, atol=1e-9)

    def test_float32_parity_within_documented_tolerance(self):
        configuration, dense, labels = build_pair(dtype="float32")
        rng = random.Random(4242)
        churn(
            configuration,
            rng,
            steps=200,
            check_every=50,
            on_check=lambda: assert_parity(
                dense, labels, configuration, rtol=FLOAT32_RTOL, atol=FLOAT32_ATOL
            ),
        )
        assert_parity(dense, labels, configuration, rtol=FLOAT32_RTOL, atol=FLOAT32_ATOL)


class TestBackendSelection:
    def test_auto_resolves_by_population(self, tiny_network, tiny_configuration):
        kernel = BestResponseKernel(tiny_network.cost_model(), tiny_configuration)
        assert kernel.backend == "dense"  # 3 peers < AUTO_LABELS_THRESHOLD

    def test_auto_threshold_is_configurable(self, tiny_network, tiny_configuration):
        class Eager(BestResponseKernel):
            AUTO_LABELS_THRESHOLD = 1

        kernel = Eager(tiny_network.cost_model(), tiny_configuration)
        assert kernel.backend == "labels"

    def test_unknown_backend_is_rejected(self, tiny_network, tiny_configuration):
        with pytest.raises(ConfigurationError):
            BestResponseKernel(
                tiny_network.cost_model(), tiny_configuration, backend="sparse"
            )

    def test_unknown_dtype_is_rejected(self, tiny_network, tiny_configuration):
        with pytest.raises(ConfigurationError):
            BestResponseKernel(
                tiny_network.cost_model(), tiny_configuration, dtype="float16"
            )

    def test_repr_names_backend_and_dtype(self, tiny_network, tiny_configuration):
        kernel = BestResponseKernel(
            tiny_network.cost_model(),
            tiny_configuration,
            backend="labels",
            dtype="float32",
        )
        assert "labels" in repr(kernel)
        assert "float32" in repr(kernel)
