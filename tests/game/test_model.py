"""Tests for the cluster game: best responses, Nash check, vectorised table."""

from __future__ import annotations

import pytest

from repro.core.costs import NEW_CLUSTER
from repro.game.model import ClusterGame
from repro.peers.configuration import ClusterConfiguration


@pytest.fixture
def game(tiny_network, tiny_configuration):
    return ClusterGame(tiny_network.cost_model(use_matrix=False), tiny_configuration)


class TestCandidateClusters:
    def test_default_candidates_include_new_cluster_slot(self, game):
        candidates = game.candidate_clusters("alice")
        assert "c1" in candidates and "c2" in candidates
        assert NEW_CLUSTER in candidates

    def test_new_cluster_excluded_when_disabled(self, tiny_network, tiny_configuration):
        game = ClusterGame(
            tiny_network.cost_model(use_matrix=False),
            tiny_configuration,
            allow_new_clusters=False,
        )
        assert NEW_CLUSTER not in game.candidate_clusters("alice")

    def test_explicit_candidates_override(self, tiny_network, tiny_configuration):
        game = ClusterGame(
            tiny_network.cost_model(use_matrix=False),
            tiny_configuration,
            candidate_clusters=["c1"],
        )
        assert game.candidate_clusters("alice") == ["c1"]


class TestBestResponse:
    def test_bob_prefers_to_join_the_music_cluster(self, game):
        """bob queries "music"; alice and carol hold all music results in c1."""
        response = game.best_response("bob")
        assert response.best_cluster == "c1"
        assert response.wants_to_move
        assert response.gain == pytest.approx(
            game.current_cost("bob") - game.prospective_cost("bob", "c1")
        )

    def test_gain_is_non_negative(self, game):
        for peer_id in ("alice", "bob", "carol"):
            assert game.best_response(peer_id).gain >= 0.0

    def test_cost_by_cluster_contains_all_candidates(self, game):
        costs = game.cost_by_cluster("alice")
        assert set(costs) == set(game.candidate_clusters("alice"))

    def test_pgain_matches_best_response(self, game):
        assert game.pgain("bob") == pytest.approx(game.best_response("bob").gain)


class TestNashEquilibrium:
    def test_tiny_configuration_is_not_stable(self, game):
        assert not game.is_nash_equilibrium()
        deviators = {response.peer_id for response in game.deviating_peers()}
        assert "bob" in deviators

    def test_all_together_is_stable_for_tiny_network(self, tiny_network):
        configuration = ClusterConfiguration(
            ["c1", "c2"], {peer_id: "c1" for peer_id in tiny_network.peer_ids()}
        )
        game = ClusterGame(
            tiny_network.cost_model(alpha=0.1, use_matrix=False), configuration
        )
        assert game.is_nash_equilibrium()

    def test_global_costs_delegate_to_cost_model(self, game, tiny_network, tiny_configuration):
        cost_model = tiny_network.cost_model(use_matrix=False)
        assert game.social_cost() == pytest.approx(cost_model.social_cost(tiny_configuration))
        assert game.workload_cost(normalized=True) == pytest.approx(
            cost_model.workload_cost(tiny_configuration, normalized=True)
        )


class TestVectorisedTable:
    def test_table_requires_matrix(self, game):
        with pytest.raises(ValueError):
            game.prospective_cost_table()

    def test_table_matches_scalar_prospective_costs(self, tiny_network, tiny_configuration):
        cost_model = tiny_network.cost_model(use_matrix=True)
        game = ClusterGame(cost_model, tiny_configuration, allow_new_clusters=False)
        peer_order, cluster_order, costs = game.prospective_cost_table()
        for row, peer_id in enumerate(peer_order):
            for column, cluster_id in enumerate(cluster_order):
                assert costs[row, column] == pytest.approx(
                    game.prospective_cost(peer_id, cluster_id)
                )

    def test_best_responses_match_per_peer_best_response(self, tiny_network, tiny_configuration):
        fast_game = ClusterGame(tiny_network.cost_model(use_matrix=True), tiny_configuration)
        slow_game = ClusterGame(tiny_network.cost_model(use_matrix=False), tiny_configuration)
        fast = fast_game.best_responses()
        for peer_id in tiny_configuration.peer_ids():
            slow = slow_game.best_response(peer_id)
            assert fast[peer_id].best_cluster == slow.best_cluster
            assert fast[peer_id].best_cost == pytest.approx(slow.best_cost)
            assert fast[peer_id].gain == pytest.approx(slow.gain)

    def test_best_responses_on_scenario(self, small_scenario):
        """Vectorised and scalar best responses agree on a realistic scenario."""
        configuration = small_scenario.network.singleton_configuration()
        fast_game = ClusterGame(
            small_scenario.network.cost_model(use_matrix=True), configuration
        )
        slow_game = ClusterGame(
            small_scenario.network.cost_model(use_matrix=False), configuration
        )
        fast = fast_game.best_responses()
        for peer_id in list(configuration.peer_ids())[:6]:
            slow = slow_game.best_response(peer_id)
            assert fast[peer_id].best_cost == pytest.approx(slow.best_cost)
            assert fast[peer_id].gain == pytest.approx(slow.gain)
