"""Tests for uncoordinated best-response dynamics."""

from __future__ import annotations


from repro.game.dynamics import run_best_response_dynamics
from repro.game.model import ClusterGame
from repro.peers.configuration import ClusterConfiguration


class TestConvergence:
    def test_tiny_network_converges(self, tiny_network, tiny_configuration):
        game = ClusterGame(tiny_network.cost_model(use_matrix=False), tiny_configuration)
        result = run_best_response_dynamics(game, max_steps=50)
        assert result.converged
        assert result.reached_equilibrium
        assert game.is_nash_equilibrium()
        assert result.num_steps >= 1

    def test_social_cost_trace_has_one_entry_per_step_plus_initial(
        self, tiny_network, tiny_configuration
    ):
        game = ClusterGame(tiny_network.cost_model(use_matrix=False), tiny_configuration)
        result = run_best_response_dynamics(game, max_steps=50)
        assert len(result.social_cost_trace) == result.num_steps + 1

    def test_small_scenario_reaches_equilibrium(self, small_scenario):
        configuration = small_scenario.network.singleton_configuration()
        game = ClusterGame(small_scenario.network.cost_model(use_matrix=True), configuration)
        result = run_best_response_dynamics(game, max_steps=400)
        assert result.reached_equilibrium
        # Best-response dynamics should discover (at most) the category structure.
        assert configuration.num_nonempty_clusters() <= small_scenario.config.num_categories * 2


class TestNonConvergence:
    def test_counterexample_cycles_or_exhausts_budget(self, counterexample):
        configuration = counterexample.configurations()["split"]
        game = ClusterGame(counterexample.cost_model, configuration)
        result = run_best_response_dynamics(game, max_steps=30)
        assert not result.reached_equilibrium
        assert result.cycle_detected or result.num_steps == 30

    def test_step_budget_respected(self, counterexample):
        configuration = counterexample.configurations()["split"]
        game = ClusterGame(counterexample.cost_model, configuration)
        result = run_best_response_dynamics(game, max_steps=3, detect_cycles=False)
        assert result.num_steps <= 3


class TestStepRecords:
    def test_steps_record_actual_moves(self, tiny_network, tiny_configuration):
        game = ClusterGame(tiny_network.cost_model(use_matrix=False), tiny_configuration)
        result = run_best_response_dynamics(game, max_steps=50)
        for step in result.steps:
            assert step.gain > 0
            assert step.from_cluster != step.to_cluster
