"""Tests for equilibrium analysis and the paper's two-peer counterexample."""

from __future__ import annotations

import pytest

from repro.game.equilibrium import (
    build_two_peer_counterexample,
    enumerate_single_cluster_configurations,
    find_pure_nash_equilibria,
)
from repro.game.model import ClusterGame


class TestCounterexample:
    def test_requires_positive_alpha(self):
        with pytest.raises(ValueError):
            build_two_peer_counterexample(alpha=0.0)

    def test_three_distinct_configurations(self, counterexample):
        configurations = counterexample.configurations()
        assert set(configurations) == {"split", "split_mirrored", "together"}

    def test_no_configuration_is_an_equilibrium(self, counterexample):
        assert not counterexample.has_pure_nash_equilibrium()

    @pytest.mark.parametrize("alpha", [0.1, 0.5, 1.0, 1.9])
    def test_no_equilibrium_for_small_positive_alpha(self, alpha):
        """The paper's argument (p1 gains alpha/2 + 1 - alpha by joining p2) needs alpha < 2."""
        assert not build_two_peer_counterexample(alpha=alpha).has_pure_nash_equilibrium()

    @pytest.mark.parametrize("alpha", [2.5, 10.0])
    def test_large_alpha_makes_the_split_stable(self, alpha):
        """For alpha > 2 the membership cost dominates and the split configuration is stable.

        The paper states the non-existence "for any value of alpha > 0", but its
        own inequality pcost(p1, c2) = alpha <= pcost(p1, c1) = alpha/2 + 1 only
        yields a strict improvement when alpha < 2; this test documents the
        boundary explicitly.
        """
        assert build_two_peer_counterexample(alpha=alpha).has_pure_nash_equilibrium()

    def test_split_deviation_is_p1_joining_p2(self, counterexample):
        configurations = counterexample.configurations()
        game = ClusterGame(counterexample.cost_model, configurations["split"])
        response = game.best_response("p1")
        assert response.wants_to_move
        assert response.best_cluster == "c2"

    def test_together_deviation_is_p2_leaving(self, counterexample):
        configurations = counterexample.configurations()
        game = ClusterGame(counterexample.cost_model, configurations["together"])
        response = game.best_response("p2")
        assert response.wants_to_move


class TestExhaustiveSearch:
    def test_enumeration_counts(self):
        configurations = enumerate_single_cluster_configurations(["p1", "p2"], ["c1", "c2"])
        assert len(configurations) == 4

    def test_counterexample_has_no_equilibrium_exhaustively(self, counterexample):
        equilibria = find_pure_nash_equilibria(
            counterexample.cost_model, ["p1", "p2"], ["c1", "c2"]
        )
        assert equilibria == []

    def test_tiny_network_has_an_equilibrium(self, tiny_network):
        """With a small membership weight, co-location is a pure Nash equilibrium."""
        cost_model = tiny_network.cost_model(alpha=0.1, use_matrix=False)
        equilibria = find_pure_nash_equilibria(
            cost_model, tiny_network.peer_ids(), ["c1", "c2", "c3"]
        )
        assert equilibria
        assert any(
            len(configuration.nonempty_clusters()) == 1 for configuration in equilibria
        )
