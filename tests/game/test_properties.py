"""Tests for Property 1: proportionality of social and workload cost."""

from __future__ import annotations

import pytest

from repro.core.queries import Query
from repro.game.properties import decompose_costs, property1_holds, workload_is_uniform
from repro.peers.configuration import ClusterConfiguration
from tests.conftest import make_tiny_network


def uniform_tiny_network():
    """The tiny network with every peer issuing exactly two queries."""
    network = make_tiny_network()
    network.peer("bob").issue_query(Query(["music"]))
    network.peer("carol").issue_query(Query(["movies"]))
    return network


class TestUniformityCheck:
    def test_tiny_network_is_skewed(self, tiny_network):
        assert not workload_is_uniform(tiny_network)

    def test_uniform_network(self):
        assert workload_is_uniform(uniform_tiny_network())


class TestDecomposition:
    def test_components_add_up(self, tiny_network, tiny_configuration):
        cost_model = tiny_network.cost_model(use_matrix=False)
        decomposition = decompose_costs(cost_model, tiny_configuration)
        assert decomposition.social_total == pytest.approx(
            cost_model.social_cost(tiny_configuration)
        )
        assert decomposition.workload_total == pytest.approx(
            cost_model.workload_cost(tiny_configuration)
        )

    def test_membership_terms_are_equal(self, tiny_network, tiny_configuration):
        """The first terms of SCost and WCost are equal (shown in Section 2.2)."""
        cost_model = tiny_network.cost_model(use_matrix=False)
        decomposition = decompose_costs(cost_model, tiny_configuration)
        assert decomposition.social_membership == pytest.approx(
            decomposition.workload_membership
        )


class TestProperty1:
    def _configuration(self):
        return ClusterConfiguration(
            ["c1", "c2", "c3"], {"alice": "c1", "carol": "c1", "bob": "c2"}
        )

    def test_holds_for_uniform_workload(self):
        network = uniform_tiny_network()
        cost_model = network.cost_model(use_matrix=False)
        configuration = self._configuration()
        assert property1_holds(cost_model, configuration, network)
        decomposition = decompose_costs(cost_model, configuration)
        assert decomposition.workload_recall == pytest.approx(
            decomposition.social_recall / len(network)
        )

    def test_fails_premise_for_skewed_workload(self, tiny_network, tiny_configuration):
        cost_model = tiny_network.cost_model(use_matrix=False)
        assert not property1_holds(cost_model, tiny_configuration, tiny_network)

    def test_skewed_workload_costs_are_not_proportional(self, tiny_network, tiny_configuration):
        cost_model = tiny_network.cost_model(use_matrix=False)
        decomposition = decompose_costs(cost_model, tiny_configuration)
        assert decomposition.workload_recall != pytest.approx(
            decomposition.social_recall / len(tiny_network)
        )
