"""Parity and incremental-maintenance tests for the best-response kernel.

Two pillars:

* **exact parity** — on the Table 1 / Figure 1 scenarios (all three data
  distributions, quick scale) every kernel-evaluated cost matches the exact
  per-query reference :class:`~repro.core.costs.CostModel` (no matrix, no
  kernel) within 1e-9;
* **incremental = rebuilt** — after hundreds of random assign/move/remove
  operations the kernel's live state equals a freshly rebuilt one.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.costs import NEW_CLUSTER
from repro.datasets.scenarios import (
    SCENARIO_DIFFERENT_CATEGORY,
    SCENARIO_SAME_CATEGORY,
    SCENARIO_UNIFORM,
    build_scenario,
    initial_configuration,
)
from repro.experiments.config import ExperimentConfig
from repro.game.kernel import BestResponseKernel
from repro.game.model import ClusterGame

#: The Table 1 / Figure 1 data distributions.
SCENARIOS = (SCENARIO_SAME_CATEGORY, SCENARIO_DIFFERENT_CATEGORY, SCENARIO_UNIFORM)


def build_setup(scenario_name: str, initial: str = "random"):
    config = ExperimentConfig.quick()
    data = build_scenario(scenario_name, config.scenario)
    configuration = initial_configuration(data, initial, seed=config.seed + 13)
    fast_model = data.network.cost_model(theta=config.theta(), alpha=config.alpha)
    exact_model = data.network.cost_model(
        theta=config.theta(), alpha=config.alpha, use_matrix=False
    )
    return data, configuration, fast_model, exact_model


@pytest.mark.parametrize("backend", ["dense", "labels"])
class TestExactParity:
    """Kernel costs == exact per-query reference on the paper's scenarios.

    Parametrized over both kernel backends: the label-vector backend must
    satisfy the same 1e-9 contract against the exact reference as the dense
    membership-matrix one.
    """

    @pytest.mark.parametrize("scenario_name", SCENARIOS)
    def test_cost_table_matches_exact_prospective_costs(self, scenario_name, backend):
        data, configuration, fast_model, exact_model = build_setup(scenario_name)
        kernel = BestResponseKernel(fast_model, configuration, backend=backend)
        candidates = configuration.nonempty_clusters()
        table = kernel.cost_table(candidates)
        for row, peer_id in enumerate(kernel.peer_order):
            for column, cluster_id in enumerate(candidates):
                exact = exact_model.prospective_pcost(peer_id, cluster_id, configuration)
                assert table[row, column] == pytest.approx(exact, abs=1e-9)

    @pytest.mark.parametrize("scenario_name", SCENARIOS)
    def test_new_cluster_and_current_costs_match_exact_reference(self, scenario_name, backend):
        data, configuration, fast_model, exact_model = build_setup(scenario_name)
        kernel = BestResponseKernel(fast_model, configuration, backend=backend)
        new_costs = kernel.new_cluster_costs()
        current = kernel.current_costs()
        for row, peer_id in enumerate(kernel.peer_order):
            exact_new = exact_model.prospective_pcost(peer_id, NEW_CLUSTER, configuration)
            assert new_costs[row] == pytest.approx(exact_new, abs=1e-9)
            assert current[peer_id] == pytest.approx(
                exact_model.pcost(peer_id, configuration), abs=1e-9
            )

    @pytest.mark.parametrize("initial", ["singletons", "random", "fewer"])
    def test_best_responses_match_exact_per_peer_reference(self, initial, backend):
        data, configuration, fast_model, exact_model = build_setup(
            SCENARIO_SAME_CATEGORY, initial
        )
        fast_game = ClusterGame(fast_model, configuration, kernel_backend=backend)
        exact_game = ClusterGame(exact_model, configuration, use_kernel=False)
        responses = fast_game.best_responses()
        assert fast_game._active_kernel() is not None
        for peer_id in configuration.peer_ids():
            exact = exact_game.best_response(peer_id)
            assert responses[peer_id].best_cluster == exact.best_cluster
            assert responses[peer_id].best_cost == pytest.approx(exact.best_cost, abs=1e-9)
            assert responses[peer_id].gain == pytest.approx(exact.gain, abs=1e-9)

    def test_social_cost_matches_exact_reference(self, backend):
        data, configuration, fast_model, exact_model = build_setup(SCENARIO_SAME_CATEGORY)
        kernel = BestResponseKernel(fast_model, configuration, backend=backend)
        assert kernel.social_cost(normalized=True) == pytest.approx(
            exact_model.social_cost(configuration, normalized=True), abs=1e-9
        )

    @pytest.mark.parametrize("scenario_name", SCENARIOS)
    @pytest.mark.parametrize("initial", ["singletons", "random", "category"])
    def test_workload_cost_matches_exact_reference(self, scenario_name, initial, backend):
        """The vectorized CV-based workload cost == the per-peer reference loop."""
        if scenario_name == SCENARIO_UNIFORM and initial == "category":
            pytest.skip("uniform scenario has no per-peer categories")
        data, configuration, fast_model, exact_model = build_setup(scenario_name, initial)
        kernel = BestResponseKernel(fast_model, configuration, backend=backend)
        for normalized in (False, True):
            assert kernel.workload_cost(normalized=normalized) == pytest.approx(
                exact_model.workload_cost(configuration, normalized=normalized), abs=1e-9
            )

    def test_workload_cost_stays_exact_across_incremental_moves(self, backend):
        """CV is maintained through moves; the cost never drifts from the reference."""
        data, configuration, fast_model, exact_model = build_setup(SCENARIO_SAME_CATEGORY)
        kernel = BestResponseKernel(fast_model, configuration, backend=backend)
        rng = random.Random(7)
        peers = list(configuration.peer_ids())
        for _step in range(25):
            peer_id = rng.choice(peers)
            source = next(iter(configuration.clusters_of(peer_id)))
            targets = [c for c in configuration.cluster_ids() if c != source]
            configuration.move(peer_id, source, rng.choice(targets))
            assert kernel.workload_cost(normalized=True) == pytest.approx(
                exact_model.workload_cost(configuration, normalized=True), abs=1e-9
            )

    def test_workload_cost_falls_back_outside_the_single_cluster_regime(self, backend):
        data, configuration, fast_model, exact_model = build_setup(SCENARIO_SAME_CATEGORY)
        kernel = BestResponseKernel(fast_model, configuration, backend=backend)
        peer_id = configuration.peer_ids()[0]
        other = [
            c
            for c in configuration.cluster_ids()
            if c not in configuration.clusters_of(peer_id)
        ][0]
        configuration.assign(peer_id, other)  # multi-membership: vector path is off
        assert kernel.workload_cost(normalized=True) == pytest.approx(
            fast_model.workload_cost(configuration, normalized=True), abs=1e-12
        )

    def test_kernel_table_matches_reference_table_path(self, backend):
        """Kernel cost table == the legacy rebuild-everything matrix path."""
        data, configuration, fast_model, _ = build_setup(SCENARIO_SAME_CATEGORY)
        kernel_game = ClusterGame(
            fast_model, configuration, allow_new_clusters=False, kernel_backend=backend
        )
        reference_game = ClusterGame(
            fast_model, configuration, allow_new_clusters=False, use_kernel=False
        )
        _, kernel_clusters, kernel_table = kernel_game.prospective_cost_table()
        _, reference_clusters, reference_table = reference_game.prospective_cost_table()
        assert kernel_clusters == reference_clusters
        np.testing.assert_allclose(kernel_table, reference_table, atol=1e-9)


class TestIncrementalMaintenance:
    """Listener-driven updates keep the caches equal to a full rebuild."""

    def test_randomized_mixed_operations_match_rebuilt_state(self, small_scenario):
        configuration = small_scenario.network.singleton_configuration()
        cost_model = small_scenario.network.cost_model()
        kernel = BestResponseKernel(cost_model, configuration)
        kernel.global_covered()  # materialise CV so the updates maintain it too
        rng = random.Random(1234)
        peer_pool = list(configuration.peer_ids())
        removed = []

        for _step in range(200):
            operation = rng.choice(["move", "move", "move", "assign", "remove"])
            if operation == "remove" and len(peer_pool) > 4:
                peer_id = rng.choice(peer_pool)
                peer_pool.remove(peer_id)
                removed.append(peer_id)
                configuration.remove_peer(peer_id)
            elif operation == "assign" and removed:
                peer_id = removed.pop(rng.randrange(len(removed)))
                peer_pool.append(peer_id)
                configuration.assign(peer_id, rng.choice(configuration.cluster_ids()))
            else:
                peer_id = rng.choice(peer_pool)
                source = rng.choice(sorted(configuration.clusters_of(peer_id), key=repr))
                targets = [c for c in configuration.cluster_ids() if c != source]
                configuration.move(peer_id, source, rng.choice(targets))

        rebuilt = BestResponseKernel(cost_model, configuration)
        np.testing.assert_array_equal(kernel._M, rebuilt._M)
        np.testing.assert_allclose(kernel._sizes, rebuilt._sizes, atol=1e-9)
        np.testing.assert_allclose(kernel._CW, rebuilt._CW, atol=1e-9)
        np.testing.assert_allclose(kernel.global_covered(), rebuilt.global_covered(), atol=1e-9)

        candidates = configuration.nonempty_clusters()
        incremental, _ = kernel.best_response_all(candidate_clusters=candidates)
        fresh, _ = rebuilt.best_response_all(candidate_clusters=candidates)
        assert set(incremental) == set(fresh)
        for peer_id, response in incremental.items():
            assert response.best_cluster == fresh[peer_id].best_cluster
            assert response.best_cost == pytest.approx(fresh[peer_id].best_cost, abs=1e-9)

    def test_rebuild_resets_incremental_state(self, small_scenario):
        configuration = small_scenario.network.singleton_configuration()
        cost_model = small_scenario.network.cost_model()
        kernel = BestResponseKernel(cost_model, configuration)
        peer_id = configuration.peer_ids()[0]
        source = next(iter(configuration.clusters_of(peer_id)))
        target = [c for c in configuration.cluster_ids() if c != source][0]
        configuration.move(peer_id, source, target)
        kernel.rebuild()
        rebuilt = BestResponseKernel(cost_model, configuration)
        np.testing.assert_array_equal(kernel._M, rebuilt._M)
        np.testing.assert_allclose(kernel._CW, rebuilt._CW, atol=1e-12)

    def test_added_cluster_slot_gets_a_column(self, tiny_network, tiny_configuration):
        kernel = BestResponseKernel(tiny_network.cost_model(), tiny_configuration)
        tiny_configuration.add_cluster("c9")
        tiny_configuration.move("bob", "c2", "c9")
        rebuilt = BestResponseKernel(tiny_network.cost_model(), tiny_configuration)
        assert kernel._cluster_order == rebuilt._cluster_order
        np.testing.assert_allclose(kernel._CW, rebuilt._CW, atol=1e-12)

    def test_unknown_peer_marks_kernel_stale(self, tiny_network, tiny_configuration):
        kernel = BestResponseKernel(tiny_network.cost_model(), tiny_configuration)
        assert not kernel.stale
        tiny_configuration.assign("mallory", "c3")
        assert kernel.stale

    def test_stale_kernel_is_bypassed_by_the_game(self, tiny_network, tiny_configuration):
        game = ClusterGame(tiny_network.cost_model(), tiny_configuration)
        assert game._active_kernel() is not None
        tiny_configuration.assign("mallory", "c3")
        assert game._active_kernel() is None
        # The reference path still answers (for the known peers).
        responses = game.best_responses()
        assert "alice" in responses


class TestListenerLifecycle:
    def test_discarded_kernel_is_garbage_collected_from_listeners(
        self, tiny_network, tiny_configuration
    ):
        import gc

        kernel = BestResponseKernel(tiny_network.cost_model(), tiny_configuration)
        assert len(tiny_configuration._listeners) == 1
        del kernel
        gc.collect()
        tiny_configuration.move("bob", "c2", "c3")  # prunes dead references
        assert len(tiny_configuration._listeners) == 0

    def test_listener_list_stays_bounded_under_kernel_churn(
        self, tiny_network, tiny_configuration
    ):
        """Creating/discarding many kernels must not grow the listener list.

        Registration prunes dead weakrefs, so even without any intervening
        mutation (the other prune point) the list stays bounded by the number
        of live listeners.
        """
        import gc

        cost_model = tiny_network.cost_model()
        for round_index in range(50):
            kernel = BestResponseKernel(cost_model, tiny_configuration)
            if round_index % 10 == 0:  # interleave some real churn
                tiny_configuration.move("bob", "c2", "c3")
                tiny_configuration.move("bob", "c3", "c2")
            del kernel
            gc.collect()
            assert len(tiny_configuration._listeners) <= 1

    def test_detach_stops_updates(self, tiny_network, tiny_configuration):
        kernel = BestResponseKernel(tiny_network.cost_model(), tiny_configuration)
        sizes_before = kernel._sizes.copy()
        kernel.detach()
        tiny_configuration.move("bob", "c2", "c3")
        np.testing.assert_array_equal(kernel._sizes, sizes_before)


class TestUntrackedPeers:
    """Peers the recall matrix does not know fall back to the reference path."""

    def test_untracked_peer_at_construction_goes_to_fallback(
        self, tiny_network, tiny_configuration
    ):
        tiny_configuration.assign("mallory", "c3")  # unknown to the matrix
        kernel = BestResponseKernel(tiny_network.cost_model(), tiny_configuration)
        _, fallback = kernel.best_response_all(
            candidate_clusters=tiny_configuration.nonempty_clusters()
        )
        assert "mallory" in fallback
        _, deviation_fallback = kernel.best_deviation(
            candidate_clusters=tiny_configuration.nonempty_clusters()
        )
        assert "mallory" in deviation_fallback

    def test_rebuild_keeps_kernel_stale_while_untracked_peers_remain(
        self, tiny_network, tiny_configuration
    ):
        kernel = BestResponseKernel(tiny_network.cost_model(), tiny_configuration)
        tiny_configuration.assign("mallory", "c3")
        assert kernel.stale
        kernel.rebuild()
        assert kernel.stale  # mallory is still there
        tiny_configuration.remove_peer("mallory")
        kernel.rebuild()
        assert not kernel.stale
