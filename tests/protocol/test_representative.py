"""Tests for representative election and the gather (phase-1) logic."""

from __future__ import annotations

from repro.overlay.messages import MessageBus
from repro.peers.configuration import ClusterConfiguration
from repro.protocol.representative import Representative, elect_representatives, gather_requests
from repro.strategies.base import RelocationProposal


def proposal(peer, source, target, gain):
    return RelocationProposal(peer_id=peer, source_cluster=source, target_cluster=target, gain=gain)


class TestElection:
    def test_one_representative_per_nonempty_cluster(self, tiny_configuration):
        representatives = elect_representatives(tiny_configuration)
        assert set(representatives) == {"c1", "c2"}
        assert representatives["c1"].peer_id == "alice"
        assert representatives["c2"].peer_id == "bob"


class TestSelectRequest:
    def test_highest_gain_wins(self):
        representative = Representative(cluster_id="c1", peer_id="alice")
        selected = representative.select_request(
            [proposal("alice", "c1", "c2", 0.2), proposal("carol", "c1", "c3", 0.7)]
        )
        assert selected.peer_id == "carol"
        assert selected.gain == 0.7

    def test_threshold_filters_requests(self):
        representative = Representative(cluster_id="c1", peer_id="alice")
        assert (
            representative.select_request(
                [proposal("alice", "c1", "c2", 0.2)], gain_threshold=0.5
            )
            is None
        )

    def test_stay_proposals_are_ignored(self):
        representative = Representative(cluster_id="c1", peer_id="alice")
        assert representative.select_request([proposal("alice", "c1", "c1", 0.0)]) is None

    def test_gain_reports_are_accounted(self):
        bus = MessageBus()
        representative = Representative(cluster_id="c1", peer_id="alice")
        representative.select_request(
            [proposal("alice", "c1", "c2", 0.2), proposal("carol", "c1", "c1", 0.0)], bus=bus
        )
        assert bus.count("GainReportMessage") == 2


class TestGatherRequests:
    def _configuration(self):
        return ClusterConfiguration(
            ["c1", "c2", "c3"], {"p1": "c1", "p2": "c1", "p3": "c2", "p4": "c3"}
        )

    def test_at_most_one_request_per_cluster(self):
        configuration = self._configuration()
        proposals = {
            "p1": proposal("p1", "c1", "c2", 0.3),
            "p2": proposal("p2", "c1", "c3", 0.6),
            "p3": proposal("p3", "c2", "c1", 0.4),
            "p4": proposal("p4", "c3", "c3", 0.0),
        }
        requests = gather_requests(configuration, proposals)
        assert len(requests) == 2
        by_source = {request.source_cluster: request for request in requests}
        assert by_source["c1"].peer_id == "p2"
        assert by_source["c2"].peer_id == "p3"

    def test_request_broadcast_is_accounted(self):
        configuration = self._configuration()
        proposals = {"p1": proposal("p1", "c1", "c2", 0.3)}
        bus = MessageBus()
        gather_requests(configuration, proposals, bus=bus)
        # The c1 representative advertises to the two other representatives.
        assert bus.count("RelocationRequestMessage") == 2

    def test_missing_proposals_are_tolerated(self):
        configuration = self._configuration()
        assert gather_requests(configuration, {}) == []
