"""Tests for one two-phase protocol round (serve phase, lock rule, cluster creation)."""

from __future__ import annotations


from repro.core.costs import NEW_CLUSTER
from repro.overlay.messages import MessageBus
from repro.peers.configuration import ClusterConfiguration
from repro.protocol.rounds import execute_round
from repro.strategies.base import RelocationProposal


def proposal(peer, source, target, gain):
    return RelocationProposal(peer_id=peer, source_cluster=source, target_cluster=target, gain=gain)


def build_configuration():
    return ClusterConfiguration(
        ["c1", "c2", "c3", "c4"], {"p1": "c1", "p2": "c1", "p3": "c2", "p4": "c3"}
    )


class TestQuiescence:
    def test_no_proposals_means_quiescent(self):
        configuration = build_configuration()
        result = execute_round(configuration, {})
        assert result.quiescent
        assert result.num_granted == 0

    def test_stay_proposals_do_not_trigger_requests(self):
        configuration = build_configuration()
        result = execute_round(
            configuration, {"p1": proposal("p1", "c1", "c1", 0.0)}
        )
        assert result.quiescent


class TestGranting:
    def test_highest_gain_granted_first_and_locks_applied(self):
        configuration = build_configuration()
        proposals = {
            # c2's request has the highest gain and is granted first: p3 joins c1.
            # That locks c2 against joins (p3 left it) and c1 against leaves
            # (p3 joined it) for the rest of the round.
            "p3": proposal("p3", "c2", "c1", 0.9),
            # c1's request would take p1 out of c1, which is now leave-locked.
            "p1": proposal("p1", "c1", "c3", 0.5),
            # c3's request would put p4 into c2, which is now join-locked.
            "p4": proposal("p4", "c3", "c2", 0.4),
        }
        result = execute_round(configuration, proposals)
        granted_peers = {move.peer_id for move in result.granted}
        assert granted_peers == {"p3"}
        assert configuration.cluster_of("p3") == "c1"
        assert configuration.cluster_of("p1") == "c1"
        assert configuration.cluster_of("p4") == "c3"
        assert len(result.discarded) == 2

    def test_independent_moves_are_all_granted(self):
        configuration = ClusterConfiguration(
            ["c1", "c2", "c3", "c4"], {"p1": "c1", "p2": "c2", "p3": "c3", "p4": "c4"}
        )
        proposals = {
            "p1": proposal("p1", "c1", "c2", 0.9),
            "p3": proposal("p3", "c3", "c4", 0.8),
        }
        result = execute_round(configuration, proposals)
        assert result.num_granted == 2

    def test_threshold_suppresses_small_gains(self):
        configuration = build_configuration()
        result = execute_round(
            configuration,
            {"p3": proposal("p3", "c2", "c1", 0.0005)},
            gain_threshold=0.001,
        )
        assert result.quiescent

    def test_grant_messages_are_accounted(self):
        configuration = build_configuration()
        bus = MessageBus()
        execute_round(configuration, {"p3": proposal("p3", "c2", "c1", 0.9)}, bus=bus)
        assert bus.count("GrantMessage") == 1


class TestNewClusterCreation:
    def test_new_cluster_target_uses_an_empty_slot(self):
        configuration = build_configuration()
        result = execute_round(
            configuration, {"p2": proposal("p2", "c1", NEW_CLUSTER, 0.6)}
        )
        assert result.num_granted == 1
        move = result.granted[0]
        assert move.created_cluster
        assert move.target_cluster == "c4"
        assert configuration.cluster_of("p2") == "c4"
        # The relocating peer becomes the new cluster's representative.
        assert configuration.cluster("c4").representative == "p2"

    def test_new_cluster_request_discarded_without_empty_slot(self):
        configuration = ClusterConfiguration(["c1", "c2"], {"p1": "c1", "p2": "c2"})
        result = execute_round(
            configuration, {"p1": proposal("p1", "c1", NEW_CLUSTER, 0.6)}
        )
        assert result.num_granted == 0
        assert len(result.discarded) == 1
