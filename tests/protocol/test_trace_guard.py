"""Regression tests: ProtocolResult's traces stay equal-length on every exit path."""

from __future__ import annotations

from repro.core.costs import NEW_CLUSTER
from repro.peers.configuration import ClusterConfiguration
from repro.protocol.reformulation import ProtocolResult, ReformulationProtocol
from repro.strategies.base import RelocationProposal, RelocationStrategy

from tests.conftest import make_tiny_network


class NewClusterStrategy(RelocationStrategy):
    """Always asks for a fresh cluster; with no empty slots every request blocks."""

    name = "new-cluster"

    def propose(self, peer_id, context):
        current = context.game.configuration.cluster_of(peer_id)
        return RelocationProposal(
            peer_id=peer_id, source_cluster=current, target_cluster=NEW_CLUSTER, gain=1.0
        )


class PingPongStrategy(RelocationStrategy):
    """Always moves to the other of two clusters, forcing a configuration cycle."""

    name = "ping-pong"

    def __init__(self, cluster_a, cluster_b) -> None:
        self.cluster_a = cluster_a
        self.cluster_b = cluster_b

    def propose(self, peer_id, context):
        current = context.game.configuration.cluster_of(peer_id)
        target = self.cluster_b if current == self.cluster_a else self.cluster_a
        return RelocationProposal(
            peer_id=peer_id, source_cluster=current, target_cluster=target, gain=1.0
        )


def _trace_lengths(result: ProtocolResult):
    return (
        len(result.social_cost_trace),
        len(result.workload_cost_trace),
        len(result.cluster_count_trace),
    )


def _protocol(strategy, configuration, **kwargs):
    network = make_tiny_network()
    return ReformulationProtocol(network.cost_model(), configuration, strategy, **kwargs)


class TestTraceLengthsPerExitPath:
    def test_quiescent_exit(self):
        from repro.baselines.static import StaticStrategy

        configuration = ClusterConfiguration.singletons(["alice", "bob", "carol"])
        result = _protocol(StaticStrategy(), configuration).run()
        assert result.converged and not result.cycle_detected
        assert result.traces_consistent()
        assert _trace_lengths(result) == (1, 1, 1)  # only the initial record

    def test_blocked_exit(self):
        # Singletons fill every slot, so each NEW_CLUSTER request is discarded:
        # requests are advertised but none can be granted.
        configuration = ClusterConfiguration.singletons(["alice", "bob", "carol"])
        result = _protocol(NewClusterStrategy(), configuration).run()
        assert result.converged
        assert result.rounds[-1].num_requests > 0
        assert result.rounds[-1].num_granted == 0
        assert result.traces_consistent()
        assert _trace_lengths(result) == (2, 2, 2)

    def test_cycle_exit(self):
        configuration = ClusterConfiguration(["c0", "c1"])
        configuration.assign("alice", "c0")
        configuration.assign("bob", "c0")
        configuration.assign("carol", "c0")
        result = _protocol(PingPongStrategy("c0", "c1"), configuration).run()
        assert result.cycle_detected
        assert not result.converged
        assert result.traces_consistent()
        lengths = _trace_lengths(result)
        assert lengths[0] == lengths[1] == lengths[2] >= 2

    def test_round_budget_exit(self):
        configuration = ClusterConfiguration(["c0", "c1"])
        configuration.assign("alice", "c0")
        configuration.assign("bob", "c0")
        configuration.assign("carol", "c0")
        result = _protocol(PingPongStrategy("c0", "c1"), configuration).run(
            max_rounds=1, detect_cycles=False
        )
        assert not result.converged and not result.cycle_detected
        assert result.traces_consistent()
        assert _trace_lengths(result) == (2, 2, 2)


class TestEqualizeTraces:
    def test_equalize_truncates_to_the_shortest(self):
        result = ProtocolResult(converged=True, cycle_detected=False)
        result.social_cost_trace.extend([1.0, 0.5, 0.25])
        result.workload_cost_trace.extend([1.0, 0.5])
        result.cluster_count_trace.extend([3, 2, 1])
        assert not result.traces_consistent()
        result.equalize_traces()
        assert result.traces_consistent()
        assert result.social_cost_trace == [1.0, 0.5]
        assert result.final_social_cost == 0.5
        assert result.final_cluster_count == 2

    def test_run_repairs_externally_skewed_traces(self):
        # A buggy observer appending to one trace mid-run must not leave the
        # final_* properties describing different configurations.
        configuration = ClusterConfiguration.singletons(["alice", "bob", "carol"])
        protocol = _protocol(NewClusterStrategy(), configuration)
        protocol.hooks.on_round_end(
            lambda event: event.result and None  # no-op observer; sanity that hooks work
        )
        result = protocol.run()
        result.social_cost_trace.append(123.0)
        result.equalize_traces()
        assert result.traces_consistent()
        assert result.final_social_cost != 123.0
