"""Tests for the full reformulation protocol driver."""

from __future__ import annotations

import pytest

from repro.game.model import ClusterGame
from repro.peers.configuration import ClusterConfiguration
from repro.protocol.reformulation import ReformulationProtocol
from repro.strategies.selfish import SelfishStrategy
from repro.strategies.altruistic import AltruisticStrategy
from repro.baselines.static import StaticStrategy
from tests.conftest import make_small_scenario, make_tiny_network


class TestTinyNetworkRuns:
    def test_selfish_run_reaches_equilibrium(self):
        network = make_tiny_network()
        configuration = ClusterConfiguration(
            ["c1", "c2", "c3"], {"alice": "c1", "carol": "c1", "bob": "c2"}
        )
        cost_model = network.cost_model(use_matrix=False)
        protocol = ReformulationProtocol(cost_model, configuration, SelfishStrategy())
        result = protocol.run(max_rounds=20)
        assert result.converged
        game = ClusterGame(cost_model, configuration, allow_new_clusters=True)
        assert game.is_nash_equilibrium()

    def test_cost_traces_have_initial_plus_per_round_entries(self):
        network = make_tiny_network()
        configuration = network.singleton_configuration()
        protocol = ReformulationProtocol(
            network.cost_model(use_matrix=False), configuration, SelfishStrategy()
        )
        result = protocol.run(max_rounds=20)
        rounds_with_moves = sum(1 for r in result.rounds if r.num_granted > 0)
        assert len(result.social_cost_trace) == rounds_with_moves + 1
        assert len(result.workload_cost_trace) == len(result.social_cost_trace)
        assert len(result.cluster_count_trace) == len(result.social_cost_trace)

    def test_static_strategy_never_moves(self):
        network = make_tiny_network()
        configuration = network.singleton_configuration()
        protocol = ReformulationProtocol(
            network.cost_model(use_matrix=False), configuration, StaticStrategy()
        )
        result = protocol.run(max_rounds=5)
        assert result.converged
        assert result.total_moves == 0
        assert result.num_rounds == 0

    def test_message_accounting(self):
        network = make_tiny_network()
        configuration = network.singleton_configuration()
        protocol = ReformulationProtocol(
            network.cost_model(use_matrix=False), configuration, SelfishStrategy()
        )
        result = protocol.run(max_rounds=20)
        if result.total_moves:
            assert result.message_counts.get("GrantMessage", 0) == result.total_moves
            assert result.message_counts.get("GainReportMessage", 0) > 0


class TestScenarioRuns:
    def test_selfish_discovers_categories_from_singletons(self):
        scenario = make_small_scenario()
        configuration = scenario.network.singleton_configuration()
        cost_model = scenario.network.cost_model()
        protocol = ReformulationProtocol(cost_model, configuration, SelfishStrategy())
        result = protocol.run(max_rounds=60)
        assert result.converged
        assert configuration.num_nonempty_clusters() == scenario.config.num_categories
        # Ideal clustering: membership cost only, 1 / M per peer.
        assert result.final_social_cost == pytest.approx(
            1.0 / scenario.config.num_categories, abs=0.05
        )

    def test_altruistic_discovers_categories_from_singletons(self):
        scenario = make_small_scenario()
        configuration = scenario.network.singleton_configuration()
        cost_model = scenario.network.cost_model()
        initial_cost = cost_model.social_cost(configuration, normalized=True)
        protocol = ReformulationProtocol(cost_model, configuration, AltruisticStrategy())
        result = protocol.run(max_rounds=60)
        assert result.converged
        # Altruistic relocation consolidates the singletons into far fewer
        # clusters (it may stop short of the exact category partition).
        assert configuration.num_nonempty_clusters() <= scenario.config.num_peers // 2
        assert result.final_social_cost < initial_cost

    def test_gain_threshold_stops_marginal_moves(self):
        scenario = make_small_scenario()
        configuration = scenario.network.singleton_configuration()
        cost_model = scenario.network.cost_model()
        strict = ReformulationProtocol(
            cost_model, configuration, SelfishStrategy(), gain_threshold=10.0
        )
        result = strict.run(max_rounds=10)
        assert result.converged
        assert result.total_moves == 0

    def test_restrict_to_nonempty_keeps_cluster_count_fixed(self):
        scenario = make_small_scenario()
        from repro.datasets.scenarios import category_configuration

        configuration = category_configuration(scenario)
        before = configuration.num_nonempty_clusters()
        cost_model = scenario.network.cost_model()
        protocol = ReformulationProtocol(
            cost_model,
            configuration,
            SelfishStrategy(),
            allow_cluster_creation=False,
            restrict_to_nonempty=True,
        )
        protocol.run(max_rounds=30)
        assert configuration.num_nonempty_clusters() <= before
        assert len(configuration.peer_ids()) == scenario.config.num_peers

    def test_creation_cost_increase_gate(self):
        """With a huge creation threshold and no prior costs remembered, NEW_CLUSTER
        proposals are still allowed on the first period; after remembering costs they
        are filtered unless the peer's cost increased enough."""
        scenario = make_small_scenario()
        configuration = scenario.network.singleton_configuration()
        cost_model = scenario.network.cost_model()
        protocol = ReformulationProtocol(
            cost_model,
            configuration,
            SelfishStrategy(),
            creation_cost_increase=100.0,
        )
        protocol.remember_current_costs()
        result = protocol.run(max_rounds=40)
        assert result.converged
        # No peer's cost increased by 100, so no new cluster was created by a
        # NEW_CLUSTER proposal (moves into existing clusters are unaffected).
        created = [
            move
            for round_result in result.rounds
            for move in round_result.granted
            if move.created_cluster
        ]
        assert created == []
