"""Tests for relocation requests and the cycle-avoiding lock rule."""

from __future__ import annotations

from repro.protocol.locks import LockTable
from repro.protocol.requests import RelocationRequest
from repro.strategies.base import RelocationProposal


def request(source, target, peer, gain):
    return RelocationRequest(source_cluster=source, target_cluster=target, peer_id=peer, gain=gain)


class TestRelocationRequest:
    def test_from_proposal(self):
        proposal = RelocationProposal(
            peer_id="p1", source_cluster="c1", target_cluster="c2", gain=0.4
        )
        built = RelocationRequest.from_proposal(proposal)
        assert built == request("c1", "c2", "p1", 0.4)

    def test_sort_key_orders_by_decreasing_gain(self):
        requests = [request("c1", "c2", "p1", 0.1), request("c3", "c4", "p2", 0.9)]
        ordered = sorted(requests, key=RelocationRequest.sort_key)
        assert ordered[0].gain == 0.9

    def test_sort_key_breaks_ties_deterministically(self):
        left = request("a", "x", "p1", 0.5)
        right = request("b", "y", "p2", 0.5)
        assert sorted([right, left], key=RelocationRequest.sort_key) == [left, right]


class TestLockTable:
    def test_paper_rule(self):
        """After p moves from ci to cj: nobody may join ci, nobody may leave cj."""
        locks = LockTable()
        locks.lock_for(request("ci", "cj", "p", 1.0))
        assert locks.join_blocked("ci")
        assert locks.leave_blocked("cj")
        # Joining ci is now forbidden...
        assert not locks.allows(request("ck", "ci", "q", 0.5))
        # ...and so is leaving cj...
        assert not locks.allows(request("cj", "ck", "r", 0.5))
        # ...but unrelated moves are fine, including further joins to cj.
        assert locks.allows(request("ck", "cj", "s", 0.5))
        assert locks.allows(request("ck", "cm", "t", 0.5))

    def test_leaving_the_source_again_is_allowed(self):
        """The rule does not forbid a second peer leaving ci (only joining it)."""
        locks = LockTable()
        locks.lock_for(request("ci", "cj", "p", 1.0))
        assert locks.allows(request("ci", "ck", "q", 0.5))

    def test_reset(self):
        locks = LockTable()
        locks.lock_for(request("ci", "cj", "p", 1.0))
        locks.reset()
        assert locks.allows(request("ck", "ci", "q", 0.5))
        assert not locks.join_blocked("ci")
        assert not locks.leave_blocked("cj")

    def test_cycle_is_prevented(self):
        """A -> B granted means the reverse move B -> A is blocked within the round."""
        locks = LockTable()
        locks.lock_for(request("A", "B", "p", 1.0))
        assert not locks.allows(request("B", "A", "q", 0.9))
