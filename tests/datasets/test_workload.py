"""Tests for workload assignment across peers (Zipf and uniform)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.workload import uniform_query_volumes, zipf_query_volumes
from repro.errors import DatasetError


class TestZipfVolumes:
    def test_total_is_preserved(self):
        volumes = zipf_query_volumes(20, 200, rng=random.Random(1))
        assert sum(volumes) == 200
        assert len(volumes) == 20

    def test_every_peer_gets_at_least_one_query(self):
        volumes = zipf_query_volumes(50, 60, rng=random.Random(2))
        assert min(volumes) >= 1

    def test_skew_without_shuffle(self):
        volumes = zipf_query_volumes(10, 1000, exponent=1.2, shuffle=False)
        assert volumes[0] == max(volumes)
        assert volumes[0] > volumes[-1]

    def test_shuffle_changes_order_not_multiset(self):
        plain = zipf_query_volumes(10, 100, shuffle=False)
        shuffled = zipf_query_volumes(10, 100, rng=random.Random(3), shuffle=True)
        assert sorted(plain) == sorted(shuffled)

    def test_validation(self):
        with pytest.raises(DatasetError):
            zipf_query_volumes(0, 10)
        with pytest.raises(DatasetError):
            zipf_query_volumes(10, 5)

    @settings(max_examples=40, deadline=None)
    @given(
        num_peers=st.integers(min_value=1, max_value=60),
        extra=st.integers(min_value=0, max_value=500),
        exponent=st.floats(min_value=0.0, max_value=2.0),
    )
    def test_totals_property(self, num_peers, extra, exponent):
        total = num_peers + extra
        volumes = zipf_query_volumes(num_peers, total, exponent=exponent, shuffle=False)
        assert sum(volumes) == total
        assert min(volumes) >= 1


class TestUniformVolumes:
    def test_even_split(self):
        assert uniform_query_volumes(4, 8) == [2, 2, 2, 2]

    def test_remainder_goes_to_first_peers(self):
        assert uniform_query_volumes(4, 10) == [3, 3, 2, 2]

    def test_validation(self):
        with pytest.raises(DatasetError):
            uniform_query_volumes(0, 10)
        with pytest.raises(DatasetError):
            uniform_query_volumes(3, -1)

    def test_max_difference_is_one(self):
        volumes = uniform_query_volumes(7, 30)
        assert max(volumes) - min(volumes) <= 1
        assert sum(volumes) == 30
