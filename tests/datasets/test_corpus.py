"""Tests for the synthetic corpus generator."""

from __future__ import annotations

import pytest

from repro.datasets.corpus import CorpusConfig, CorpusGenerator
from repro.errors import DatasetError


class TestCorpusConfig:
    def test_category_names(self):
        assert CorpusConfig(num_categories=3).category_names() == ["cat00", "cat01", "cat02"]

    def test_validation_on_generator_construction(self):
        with pytest.raises(DatasetError):
            CorpusGenerator(CorpusConfig(num_categories=0))
        with pytest.raises(DatasetError):
            CorpusGenerator(CorpusConfig(terms_per_document=0))
        with pytest.raises(DatasetError):
            CorpusGenerator(
                CorpusConfig(terms_per_document=10, category_vocabulary_size=5)
            )


class TestDocumentGeneration:
    def test_document_terms_come_from_the_category(self):
        generator = CorpusGenerator(CorpusConfig(num_categories=3), seed=1)
        document = generator.generate_document("cat01")
        assert document.category == "cat01"
        for term in document.attributes:
            assert generator.vocabularies.category_of_term(term) == "cat01"

    def test_document_has_requested_term_count(self):
        config = CorpusConfig(terms_per_document=7)
        generator = CorpusGenerator(config, seed=2)
        assert len(generator.generate_document("cat00")) == 7

    def test_common_terms_are_mixed_in_when_configured(self):
        config = CorpusConfig(
            common_vocabulary_size=5, common_terms_per_document=2, terms_per_document=3
        )
        generator = CorpusGenerator(config, seed=3)
        document = generator.generate_document("cat00")
        common = [
            term
            for term in document.attributes
            if generator.vocabularies.category_of_term(term) is None
        ]
        assert len(common) == 2

    def test_generation_is_deterministic_for_a_seed(self):
        first = CorpusGenerator(CorpusConfig(), seed=42).generate_documents("cat00", 5)
        second = CorpusGenerator(CorpusConfig(), seed=42).generate_documents("cat00", 5)
        assert [doc.attributes for doc in first] == [doc.attributes for doc in second]

    def test_doc_ids_are_unique(self):
        generator = CorpusGenerator(seed=4)
        documents = generator.generate_documents("cat00", 10)
        assert len({doc.doc_id for doc in documents}) == 10

    def test_mixed_documents_span_categories(self):
        generator = CorpusGenerator(CorpusConfig(num_categories=5), seed=5)
        documents = generator.generate_mixed_documents(40)
        assert len({doc.category for doc in documents}) > 1

    def test_negative_count_rejected(self):
        with pytest.raises(DatasetError):
            CorpusGenerator(seed=1).generate_documents("cat00", -1)


class TestQueryGeneration:
    def test_queries_are_single_terms_from_the_category(self):
        generator = CorpusGenerator(CorpusConfig(num_categories=2), seed=6)
        query = generator.generate_query("cat01")
        assert len(query.attributes) == 1
        term = next(iter(query.attributes))
        assert generator.vocabularies.category_of_term(term) == "cat01"

    def test_workload_volume(self):
        generator = CorpusGenerator(seed=7)
        workload = generator.generate_workload("cat00", 25)
        assert workload.total() == 25

    def test_mixed_workload_volume(self):
        generator = CorpusGenerator(seed=8)
        assert generator.generate_mixed_workload(12).total() == 12

    def test_queries_find_category_documents(self):
        """A category's queries should match that category's documents often."""
        generator = CorpusGenerator(CorpusConfig(num_categories=2), seed=9)
        documents = generator.generate_documents("cat00", 30)
        hits = 0
        for _ in range(30):
            query = generator.generate_query("cat00")
            hits += sum(1 for doc in documents if query.attributes.issubset(doc.attributes))
        assert hits > 0

    def test_negative_query_count_rejected(self):
        with pytest.raises(DatasetError):
            CorpusGenerator(seed=1).generate_workload("cat00", -5)
