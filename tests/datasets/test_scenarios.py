"""Tests for the paper's scenario builders and initial configurations."""

from __future__ import annotations

import pytest

from repro.datasets.scenarios import (
    SCENARIO_DIFFERENT_CATEGORY,
    SCENARIO_SAME_CATEGORY,
    SCENARIO_UNIFORM,
    ScenarioConfig,
    build_scenario,
    category_configuration,
    initial_configuration,
)
from repro.errors import DatasetError

SMALL = ScenarioConfig(
    num_peers=20,
    num_categories=4,
    documents_per_peer=4,
    terms_per_document=3,
    category_vocabulary_size=15,
    queries_per_peer=3,
    seed=9,
)


class TestBuildScenario:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(DatasetError):
            build_scenario("mystery", SMALL)

    def test_same_category_scenario(self):
        data = build_scenario(SCENARIO_SAME_CATEGORY, SMALL)
        assert len(data.network) == 20
        assert data.optimal_cluster_count == 4
        for peer_id in data.peer_ids():
            assert data.data_categories[peer_id] == data.query_categories[peer_id]
            assert data.data_categories[peer_id] is not None

    def test_different_category_scenario(self):
        data = build_scenario(SCENARIO_DIFFERENT_CATEGORY, SMALL)
        assert data.optimal_cluster_count == 4 * 3
        for peer_id in data.peer_ids():
            assert data.data_categories[peer_id] != data.query_categories[peer_id]

    def test_uniform_scenario_has_no_labels(self):
        data = build_scenario(SCENARIO_UNIFORM, SMALL)
        assert all(category is None for category in data.data_categories.values())

    def test_workload_volumes(self):
        data = build_scenario(SCENARIO_SAME_CATEGORY, SMALL)
        total = sum(peer.workload.total() for peer in data.network.peers())
        assert total == SMALL.num_peers * SMALL.queries_per_peer

    def test_uniform_workload_flag(self):
        from dataclasses import replace

        data = build_scenario(SCENARIO_SAME_CATEGORY, replace(SMALL, uniform_workload=True))
        volumes = {peer.workload.total() for peer in data.network.peers()}
        assert volumes == {SMALL.queries_per_peer}

    def test_determinism(self):
        first = build_scenario(SCENARIO_SAME_CATEGORY, SMALL)
        second = build_scenario(SCENARIO_SAME_CATEGORY, SMALL)
        for peer_id in first.peer_ids():
            assert first.network.peer(peer_id).workload == second.network.peer(peer_id).workload

    def test_same_category_peer_documents_match_their_category(self):
        data = build_scenario(SCENARIO_SAME_CATEGORY, SMALL)
        peer_id = data.peer_ids()[0]
        category = data.data_categories[peer_id]
        for document in data.network.peer(peer_id).documents:
            assert document.category == category


class TestInitialConfigurations:
    @pytest.fixture(scope="class")
    def data(self):
        return build_scenario(SCENARIO_SAME_CATEGORY, SMALL)

    def test_singletons(self, data):
        configuration = initial_configuration(data, "singletons")
        assert configuration.num_nonempty_clusters() == 20

    def test_random_uses_optimal_cluster_count(self, data):
        configuration = initial_configuration(data, "random")
        assert configuration.num_nonempty_clusters() <= 4
        assert len(configuration.peer_ids()) == 20

    def test_fewer_and_more(self, data):
        fewer = initial_configuration(data, "fewer")
        more = initial_configuration(data, "more")
        assert fewer.num_nonempty_clusters() <= 2
        assert more.num_nonempty_clusters() > 4

    def test_explicit_cluster_count(self, data):
        configuration = initial_configuration(data, "random", num_clusters=3)
        assert configuration.num_nonempty_clusters() <= 3

    def test_unknown_kind_rejected(self, data):
        with pytest.raises(DatasetError):
            initial_configuration(data, "chaotic")

    def test_total_slot_count_is_cmax(self, data):
        configuration = initial_configuration(data, "random")
        assert len(configuration.cluster_ids()) == 20


class TestCategoryConfiguration:
    def test_one_cluster_per_category(self):
        data = build_scenario(SCENARIO_SAME_CATEGORY, SMALL)
        configuration = category_configuration(data)
        assert configuration.num_nonempty_clusters() == SMALL.num_categories
        for peer_id in data.peer_ids():
            members = configuration.members(configuration.cluster_of(peer_id))
            categories = {data.data_categories[member] for member in members}
            assert categories == {data.data_categories[peer_id]}

    def test_requires_labels(self):
        data = build_scenario(SCENARIO_UNIFORM, SMALL)
        with pytest.raises(DatasetError):
            category_configuration(data)
