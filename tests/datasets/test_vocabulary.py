"""Tests for Zipf weights and the synthetic category vocabularies."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, strategies as st

from repro.datasets.vocabulary import CategoryVocabularies, zipf_weights
from repro.errors import DatasetError


class TestZipfWeights:
    def test_weights_sum_to_one(self):
        assert sum(zipf_weights(50, 1.0)) == pytest.approx(1.0)

    def test_weights_are_decreasing(self):
        weights = zipf_weights(20, 1.2)
        assert all(earlier >= later for earlier, later in zip(weights, weights[1:]))

    def test_zero_exponent_is_uniform(self):
        weights = zipf_weights(10, 0.0)
        assert all(weight == pytest.approx(0.1) for weight in weights)

    def test_validation(self):
        with pytest.raises(DatasetError):
            zipf_weights(0)
        with pytest.raises(DatasetError):
            zipf_weights(10, -1.0)

    @given(st.integers(min_value=1, max_value=200), st.floats(min_value=0.0, max_value=3.0))
    def test_normalisation_property(self, count, exponent):
        weights = zipf_weights(count, exponent)
        assert len(weights) == count
        assert sum(weights) == pytest.approx(1.0)


class TestCategoryVocabularies:
    def _vocabularies(self, **kwargs):
        defaults = dict(category_size=10, common_size=3, zipf_exponent=1.0)
        defaults.update(kwargs)
        return CategoryVocabularies(["music", "movies"], **defaults)

    def test_categories_have_disjoint_exclusive_terms(self):
        vocabularies = self._vocabularies()
        music = set(vocabularies.category_terms("music"))
        movies = set(vocabularies.category_terms("movies"))
        assert not music & movies

    def test_vocabulary_includes_common_pool(self):
        vocabularies = self._vocabularies()
        vocabulary = vocabularies.vocabulary("music")
        assert len(vocabulary) == 13

    def test_full_vocabulary_size(self):
        vocabularies = self._vocabularies()
        assert len(vocabularies.full_vocabulary()) == 2 * 10 + 3

    def test_category_of_term(self):
        vocabularies = self._vocabularies()
        term = vocabularies.category_terms("music")[0]
        assert vocabularies.category_of_term(term) == "music"
        assert vocabularies.category_of_term(vocabularies.common_terms()[0]) is None
        assert vocabularies.category_of_term("unknown") is None

    def test_sampling_respects_category(self):
        vocabularies = self._vocabularies()
        rng = random.Random(1)
        for _attempt in range(20):
            term = vocabularies.sample_category_term("music", rng)
            assert vocabularies.category_of_term(term) == "music"

    def test_sampling_common_requires_pool(self):
        vocabularies = self._vocabularies(common_size=0)
        with pytest.raises(DatasetError):
            vocabularies.sample_common_term(random.Random(1))

    def test_zipf_sampling_is_skewed(self):
        vocabularies = self._vocabularies(category_size=50, zipf_exponent=1.5)
        rng = random.Random(3)
        samples = [vocabularies.sample_category_term("music", rng) for _ in range(500)]
        top_term = vocabularies.category_terms("music")[0]
        bottom_term = vocabularies.category_terms("music")[-1]
        assert samples.count(top_term) > samples.count(bottom_term)

    def test_validation(self):
        with pytest.raises(DatasetError):
            CategoryVocabularies([])
        with pytest.raises(DatasetError):
            CategoryVocabularies(["a", "a"])
        with pytest.raises(DatasetError):
            CategoryVocabularies(["a"], category_size=0)
        with pytest.raises(DatasetError):
            CategoryVocabularies(["a"], common_size=-1)
        with pytest.raises(DatasetError):
            self._vocabularies().category_terms("sports")
