"""Tests for queries and query workloads (the num(Q)/num(q, Q) bookkeeping)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.queries import Query, QueryWorkload


class TestQuery:
    def test_value_semantics(self):
        assert Query(["a", "b"]) == Query(["b", "a"])
        assert hash(Query(["a"])) == hash(Query(["a"]))

    def test_single_term_constructor(self):
        assert Query.single_term("music") == Query(["music"])


class TestQueryWorkload:
    def test_counts_and_frequencies(self):
        workload = QueryWorkload()
        workload.add(Query(["a"]), 3)
        workload.add(Query(["b"]), 1)
        assert workload.total() == 4
        assert workload.count(Query(["a"])) == 3
        assert workload.frequency(Query(["a"])) == pytest.approx(0.75)
        assert workload.frequency(Query(["missing"])) == 0.0

    def test_empty_workload_frequency_is_zero(self):
        assert QueryWorkload().frequency(Query(["a"])) == 0.0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            QueryWorkload().add(Query(["a"]), -1)

    def test_merge_adds_counts(self):
        left = QueryWorkload([Query(["a"])])
        right = QueryWorkload([Query(["a"]), Query(["b"])])
        merged = left.merge(right)
        assert merged.count(Query(["a"])) == 2
        assert merged.count(Query(["b"])) == 1
        # The inputs are untouched.
        assert left.total() == 1

    def test_copy_is_independent(self):
        original = QueryWorkload([Query(["a"])])
        duplicate = original.copy()
        duplicate.add(Query(["b"]))
        assert Query(["b"]) not in original

    def test_remove_fraction_preserves_volume(self):
        workload = QueryWorkload()
        workload.add(Query(["a"]), 6)
        workload.add(Query(["b"]), 4)
        removed = workload.remove_fraction(0.5)
        assert removed.total() == 5
        assert workload.total() == 5

    def test_remove_fraction_all_and_none(self):
        workload = QueryWorkload([Query(["a"]), Query(["b"])])
        assert workload.remove_fraction(0.0).total() == 0
        assert workload.total() == 2
        removed = workload.remove_fraction(1.0)
        assert removed.total() == 2
        assert workload.total() == 0

    def test_as_frequency_dict_sums_to_one(self):
        workload = QueryWorkload()
        workload.add(Query(["a"]), 2)
        workload.add(Query(["b"]), 3)
        assert sum(workload.as_frequency_dict().values()) == pytest.approx(1.0)

    def test_distinct_is_deterministic(self):
        workload = QueryWorkload([Query(["b"]), Query(["a"])])
        assert workload.distinct() == [Query(["a"]), Query(["b"])]

    @given(
        st.lists(
            st.tuples(st.sampled_from("abcdef"), st.integers(min_value=1, max_value=5)),
            min_size=1,
            max_size=10,
        ),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_remove_fraction_conserves_total_volume(self, entries, fraction):
        workload = QueryWorkload()
        for term, count in entries:
            workload.add(Query([term]), count)
        total_before = workload.total()
        removed = workload.remove_fraction(fraction)
        assert removed.total() + workload.total() == total_before
        assert removed.total() == int(round(fraction * total_before))
