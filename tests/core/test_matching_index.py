"""Matching semantics and inverted-index equivalence with the reference scan."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.documents import Document
from repro.core.index import InvertedIndex
from repro.core.matching import matches, matching_documents, result_count
from repro.core.queries import Query


def _documents():
    return [
        Document(["music", "rock"], doc_id="1"),
        Document(["music", "jazz"], doc_id="2"),
        Document(["movies", "drama", "music"], doc_id="3"),
        Document(["sports"], doc_id="4"),
    ]


class TestReferenceMatching:
    def test_matches_subset_rule(self):
        document = Document(["music", "rock"])
        assert matches(Query(["music"]), document)
        assert matches(Query(["music", "rock"]), document)
        assert not matches(Query(["music", "jazz"]), document)

    def test_result_count(self):
        assert result_count(Query(["music"]), _documents()) == 3
        assert result_count(Query(["music", "jazz"]), _documents()) == 1
        assert result_count(Query(["unknown"]), _documents()) == 0

    def test_matching_documents_preserve_order(self):
        found = matching_documents(Query(["music"]), _documents())
        assert [doc.doc_id for doc in found] == ["1", "2", "3"]

    def test_empty_query_matches_everything(self):
        assert result_count(Query([]), _documents()) == 4


class TestInvertedIndex:
    def test_counts_match_reference(self):
        index = InvertedIndex(_documents())
        for attributes in (["music"], ["music", "jazz"], ["movies"], ["unknown"], []):
            query = Query(attributes)
            assert index.result_count(query) == result_count(query, _documents())

    def test_matching_documents_match_reference(self):
        index = InvertedIndex(_documents())
        query = Query(["music"])
        assert index.matching_documents(query) == matching_documents(query, _documents())

    def test_add_updates_counts(self):
        index = InvertedIndex(_documents())
        index.add(Document(["music", "metal"], doc_id="5"))
        assert index.result_count(Query(["music"])) == 4
        assert len(index) == 5

    def test_rebuild_replaces_content(self):
        index = InvertedIndex(_documents())
        index.rebuild([Document(["fresh"])])
        assert index.result_count(Query(["music"])) == 0
        assert index.result_count(Query(["fresh"])) == 1
        assert len(index) == 1

    def test_vocabulary_lists_attributes(self):
        index = InvertedIndex([Document(["b", "a"])])
        assert index.vocabulary() == ["a", "b"]


# Strategy: documents over a small alphabet so that collisions are frequent.
_terms = st.sampled_from(["alpha", "beta", "gamma", "delta", "epsilon"])
_document_lists = st.lists(
    st.lists(_terms, min_size=1, max_size=4).map(lambda terms: Document(terms)),
    min_size=0,
    max_size=12,
)
_queries = st.lists(_terms, min_size=0, max_size=3).map(Query)


class TestIndexEquivalenceProperty:
    @settings(max_examples=60, deadline=None)
    @given(documents=_document_lists, query=_queries)
    def test_index_equals_reference_scan(self, documents, query):
        index = InvertedIndex(documents)
        assert index.result_count(query) == result_count(query, documents)
