"""Tests for the recall model ``r(q, p)``."""

from __future__ import annotations

import pytest

from repro.core.documents import Document
from repro.core.queries import Query
from repro.core.recall import RecallModel, ResultProvider
from repro.errors import UnknownPeerError


class TestResultProvider:
    def test_wraps_document_collection(self, tiny_network):
        provider = ResultProvider(tiny_network.peer("alice").documents)
        assert provider.result_count(Query(["music"])) == 2

    def test_wraps_index(self, tiny_network):
        provider = ResultProvider(tiny_network.peer("alice").index)
        assert provider.result_count(Query(["music"])) == 2

    def test_rejects_unknown_content(self):
        with pytest.raises(TypeError):
            ResultProvider(object())


class TestRecallModel:
    def _model(self, tiny_network) -> RecallModel:
        return tiny_network.recall_model()

    def test_result_counts(self, tiny_network):
        model = self._model(tiny_network)
        movies = Query(["movies"])
        assert model.result(movies, "alice") == 0
        assert model.result(movies, "bob") == 1
        assert model.result(movies, "carol") == 1
        assert model.total_results(movies) == 2

    def test_recall_values(self, tiny_network):
        model = self._model(tiny_network)
        movies = Query(["movies"])
        assert model.recall(movies, "bob") == pytest.approx(0.5)
        assert model.recall(movies, "alice") == 0.0

    def test_recall_vector_sums_to_one(self, tiny_network):
        model = self._model(tiny_network)
        vector = model.recall_vector(Query(["music"]))
        assert sum(vector.values()) == pytest.approx(1.0)

    def test_recall_vector_all_zero_when_no_results(self, tiny_network):
        model = self._model(tiny_network)
        vector = model.recall_vector(Query(["nonexistent"]))
        assert set(vector.values()) == {0.0}

    def test_group_recall_and_loss_are_complements(self, tiny_network):
        model = self._model(tiny_network)
        music = Query(["music"])
        covered = {"alice", "carol"}
        assert model.group_recall(music, covered) + model.recall_loss(music, covered) == pytest.approx(
            1.0
        )

    def test_unknown_peer_raises(self, tiny_network):
        model = self._model(tiny_network)
        with pytest.raises(UnknownPeerError):
            model.result(Query(["music"]), "mallory")

    def test_set_content_invalidates(self, tiny_network):
        from repro.core.index import InvertedIndex

        model = self._model(tiny_network)
        music = Query(["music"])
        assert model.total_results(music) == 3
        model.set_content("alice", InvertedIndex([Document(["movies"])]))
        assert model.total_results(music) == 1

    def test_remove_peer(self, tiny_network):
        model = self._model(tiny_network)
        model.remove_peer("alice")
        assert "alice" not in model
        assert len(model) == 2
        with pytest.raises(UnknownPeerError):
            model.remove_peer("alice")

    def test_caching_returns_consistent_values(self, tiny_network):
        model = self._model(tiny_network)
        music = Query(["music"])
        first = model.recall(music, "alice")
        second = model.recall(music, "alice")
        assert first == second
