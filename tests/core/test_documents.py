"""Tests for documents and document collections."""

from __future__ import annotations

import pytest

from repro.core.attributes import AttributeSet
from repro.core.documents import Document, DocumentCollection


class TestDocument:
    def test_matches_subset(self):
        document = Document(["music", "rock", "guitar"])
        assert document.matches(AttributeSet(["music"]))
        assert document.matches(AttributeSet(["music", "rock"]))
        assert not document.matches(AttributeSet(["music", "jazz"]))

    def test_accepts_attribute_set(self):
        attributes = AttributeSet(["a", "b"])
        assert Document(attributes).attributes == attributes

    def test_equality_includes_identity_fields(self):
        assert Document(["a"], doc_id="1") != Document(["a"], doc_id="2")
        assert Document(["a"], doc_id="1", category="x") == Document(["a"], doc_id="1", category="x")

    def test_len_counts_attributes(self):
        assert len(Document(["a", "b", "b"])) == 2


class TestDocumentCollection:
    def _collection(self):
        return DocumentCollection(
            [
                Document(["music"], doc_id="1", category="music"),
                Document(["movies"], doc_id="2", category="movies"),
                Document(["music", "movies"], doc_id="3", category="music"),
            ]
        )

    def test_match_count(self):
        collection = self._collection()
        assert collection.match_count(AttributeSet(["music"])) == 2
        assert collection.match_count(AttributeSet(["movies"])) == 2
        assert collection.match_count(AttributeSet(["music", "movies"])) == 1

    def test_replace_swaps_content(self):
        collection = self._collection()
        collection.replace([Document(["sports"])])
        assert len(collection) == 1
        assert collection.match_count(AttributeSet(["music"])) == 0

    def test_remove_fraction(self):
        collection = self._collection()
        removed = collection.remove_fraction(2 / 3)
        assert len(removed) == 2
        assert len(collection) == 1

    def test_remove_fraction_validates(self):
        with pytest.raises(ValueError):
            self._collection().remove_fraction(1.5)

    def test_categories(self):
        assert sorted(self._collection().categories()) == ["movies", "music", "music"]

    def test_iteration_and_indexing(self):
        collection = self._collection()
        assert [doc.doc_id for doc in collection] == ["1", "2", "3"]
        assert collection[0].doc_id == "1"
