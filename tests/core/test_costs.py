"""Tests for the cost model: Eq. 1 (pcost), Eq. 2 (SCost), Eq. 3 (WCost).

The most important checks reproduce, by hand, the numbers of the paper's
two-peer example from Section 2.3 and verify that the matrix-accelerated
evaluation returns exactly what the per-query reference evaluation returns.
"""

from __future__ import annotations

import pytest

from repro.core.costs import NEW_CLUSTER, CostModel
from repro.core.theta import LinearTheta, LogarithmicTheta
from repro.peers.configuration import ClusterConfiguration


class TestPaperTwoPeerExample:
    """The individual costs worked out in Section 2.3 (alpha = 1, linear theta)."""

    def _split_configuration(self):
        return ClusterConfiguration(["c1", "c2"], {"p1": "c1", "p2": "c2"})

    def _together_configuration(self):
        return ClusterConfiguration(["c1", "c2"], {"p1": "c1", "p2": "c1"})

    def test_split_costs(self, counterexample):
        cost_model = counterexample.cost_model
        configuration = self._split_configuration()
        # pcost(p1, c1) = alpha * 1/2 + 1 ; pcost(p2, c2) = alpha * 1/2
        assert cost_model.pcost("p1", configuration) == pytest.approx(0.5 + 1.0)
        assert cost_model.pcost("p2", configuration) == pytest.approx(0.5)

    def test_p1_moving_to_p2_reduces_cost(self, counterexample):
        cost_model = counterexample.cost_model
        configuration = self._split_configuration()
        # pcost(p1, c2) = alpha (cluster of size 2, no recall loss)
        assert cost_model.prospective_pcost("p1", "c2", configuration) == pytest.approx(1.0)
        assert cost_model.prospective_pcost("p1", "c2", configuration) < cost_model.pcost(
            "p1", configuration
        )

    def test_together_costs(self, counterexample):
        cost_model = counterexample.cost_model
        configuration = self._together_configuration()
        assert cost_model.pcost("p1", configuration) == pytest.approx(1.0)
        assert cost_model.pcost("p2", configuration) == pytest.approx(1.0)
        # p2 can move to the empty cluster and pay only alpha * 1/2.
        assert cost_model.prospective_pcost("p2", "c2", configuration) == pytest.approx(0.5)

    def test_new_cluster_option_equals_empty_cluster(self, counterexample):
        cost_model = counterexample.cost_model
        configuration = self._together_configuration()
        assert cost_model.prospective_pcost(
            "p2", NEW_CLUSTER, configuration
        ) == pytest.approx(cost_model.prospective_pcost("p2", "c2", configuration))


class TestCostModelBasics:
    def test_alpha_must_be_non_negative(self, tiny_network):
        with pytest.raises(ValueError):
            CostModel(tiny_network.recall_model(), tiny_network.workloads(), alpha=-1.0)

    def test_membership_cost(self, tiny_network):
        cost_model = tiny_network.cost_model(alpha=2.0, use_matrix=False)
        # alpha * (theta(2) + theta(1)) / |P| = 2 * 3 / 3
        assert cost_model.membership_cost([2, 1]) == pytest.approx(2.0)

    def test_membership_cost_scales_with_theta(self, tiny_network):
        log_model = tiny_network.cost_model(theta=LogarithmicTheta(), use_matrix=False)
        linear_model = tiny_network.cost_model(theta=LinearTheta(), use_matrix=False)
        assert log_model.membership_cost([8]) < linear_model.membership_cost([8])

    def test_pcost_in_tiny_configuration(self, tiny_network, tiny_configuration):
        cost_model = tiny_network.cost_model(use_matrix=False)
        # alice is clustered with carol: her "movies" query finds 1 of 2 results
        # inside the cluster, so the recall loss is 0.5; membership = 2/3.
        assert cost_model.pcost("alice", tiny_configuration) == pytest.approx(2 / 3 + 0.5)
        # bob is alone: loses all 3 "music" results except... none are his, loss=1.
        assert cost_model.pcost("bob", tiny_configuration) == pytest.approx(1 / 3 + 1.0)

    def test_social_cost_is_sum_of_pcosts(self, tiny_network, tiny_configuration):
        cost_model = tiny_network.cost_model(use_matrix=False)
        total = sum(cost_model.per_peer_costs(tiny_configuration).values())
        assert cost_model.social_cost(tiny_configuration) == pytest.approx(total)
        assert cost_model.social_cost(tiny_configuration, normalized=True) == pytest.approx(
            total / 3
        )

    def test_prospective_pcost_matches_pcost_after_move(self, tiny_network, tiny_configuration):
        cost_model = tiny_network.cost_model(use_matrix=False)
        prospective = cost_model.prospective_pcost("bob", "c1", tiny_configuration)
        moved = tiny_configuration.copy()
        moved.move("bob", "c2", "c1")
        assert cost_model.pcost("bob", moved) == pytest.approx(prospective)

    def test_peer_workload_unknown_peer(self, tiny_network):
        cost_model = tiny_network.cost_model(use_matrix=False)
        from repro.errors import UnknownPeerError

        with pytest.raises(UnknownPeerError):
            cost_model.peer_workload("mallory")


class TestWorkloadCost:
    def test_workload_cost_definition(self, tiny_network, tiny_configuration):
        """WCost = maintenance term + globally-weighted recall loss."""
        cost_model = tiny_network.cost_model(use_matrix=False)
        maintenance = sum(
            size * LinearTheta()(size) for size in tiny_configuration.sizes().values()
        ) / 3
        loss = sum(
            cost_model.global_recall_loss(
                peer_id, set(tiny_configuration.covered_peers(peer_id)) | {peer_id}
            )
            for peer_id in tiny_network.peer_ids()
        )
        assert cost_model.workload_cost(tiny_configuration) == pytest.approx(maintenance + loss)

    def test_social_and_workload_membership_terms_agree(self, tiny_network):
        """With every peer in one cluster both costs share the same membership total."""
        cost_model = tiny_network.cost_model(use_matrix=False)
        configuration = ClusterConfiguration(
            ["c1"], {peer_id: "c1" for peer_id in tiny_network.peer_ids()}
        )
        # All recall is inside the single cluster, so both costs reduce to the
        # membership / maintenance term, which are equal by construction.
        assert cost_model.social_cost(configuration) == pytest.approx(
            cost_model.workload_cost(configuration)
        )


class TestMatrixEquivalence:
    def test_matrix_and_reference_costs_agree(self, tiny_network, tiny_configuration):
        reference = tiny_network.cost_model(use_matrix=False)
        accelerated = tiny_network.cost_model(use_matrix=True)
        for peer_id in tiny_network.peer_ids():
            assert accelerated.pcost(peer_id, tiny_configuration) == pytest.approx(
                reference.pcost(peer_id, tiny_configuration)
            )
            for cluster_id in tiny_configuration.cluster_ids():
                assert accelerated.prospective_pcost(
                    peer_id, cluster_id, tiny_configuration
                ) == pytest.approx(
                    reference.prospective_pcost(peer_id, cluster_id, tiny_configuration)
                )
        assert accelerated.social_cost(tiny_configuration) == pytest.approx(
            reference.social_cost(tiny_configuration)
        )
        assert accelerated.workload_cost(tiny_configuration) == pytest.approx(
            reference.workload_cost(tiny_configuration)
        )

    def test_build_matrix_attaches(self, tiny_network):
        cost_model = tiny_network.cost_model(use_matrix=False)
        assert cost_model.matrix is None
        cost_model.build_matrix()
        assert cost_model.matrix is not None
        cost_model.attach_matrix(None)
        assert cost_model.matrix is None
