"""Tests for the attribute model (normalisation, AttributeSet, Vocabulary)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.attributes import AttributeSet, Vocabulary, normalize_attribute
from repro.errors import DatasetError


class TestNormalizeAttribute:
    def test_lowercases_and_strips(self):
        assert normalize_attribute("  Databases ") == "databases"

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            normalize_attribute("   ")

    def test_rejects_non_string(self):
        with pytest.raises(TypeError):
            normalize_attribute(42)  # type: ignore[arg-type]


class TestAttributeSet:
    def test_equality_is_order_insensitive(self):
        assert AttributeSet(["p2p", "Clustering"]) == AttributeSet(["clustering", "p2p"])

    def test_hashable_and_usable_as_dict_key(self):
        counts = {AttributeSet(["a", "b"]): 1}
        counts[AttributeSet(["b", "a"])] = counts.get(AttributeSet(["b", "a"]), 0) + 1
        assert counts[AttributeSet(["a", "b"])] == 2

    def test_subset_semantics(self):
        small = AttributeSet(["p2p"])
        large = AttributeSet(["p2p", "overlay"])
        assert small.issubset(large)
        assert not large.issubset(small)

    def test_contains_normalises(self):
        attributes = AttributeSet(["Music"])
        assert "music" in attributes
        assert " MUSIC " in attributes

    def test_intersection_and_union(self):
        left = AttributeSet(["a", "b"])
        right = AttributeSet(["b", "c"])
        assert set(left.intersection(right)) == {"b"}
        assert set(left.union(right)) == {"a", "b", "c"}

    def test_iteration_is_sorted(self):
        assert list(AttributeSet(["b", "a", "c"])) == ["a", "b", "c"]

    def test_duplicates_collapse(self):
        assert len(AttributeSet(["x", "X", " x "])) == 1

    @given(st.lists(st.text(alphabet="abcde", min_size=1, max_size=4), min_size=1, max_size=8))
    def test_subset_of_union_property(self, terms):
        base = AttributeSet(terms)
        extended = base.union(AttributeSet(["extra"]))
        assert base.issubset(extended)
        assert base.intersection(extended) == base


class TestVocabulary:
    def test_add_is_idempotent(self):
        vocabulary = Vocabulary()
        first = vocabulary.add("term")
        second = vocabulary.add("Term")
        assert first == second
        assert len(vocabulary) == 1

    def test_id_roundtrip(self):
        vocabulary = Vocabulary(["alpha", "beta"])
        assert vocabulary.term_of(vocabulary.id_of("beta")) == "beta"

    def test_unknown_term_raises(self):
        vocabulary = Vocabulary(["alpha"])
        with pytest.raises(DatasetError):
            vocabulary.id_of("missing")
        with pytest.raises(DatasetError):
            vocabulary.term_of(99)

    def test_preserves_insertion_order(self):
        vocabulary = Vocabulary(["zeta", "alpha"])
        assert vocabulary.terms() == ("zeta", "alpha")

    def test_from_frequency_table_orders_by_frequency(self):
        vocabulary = Vocabulary.from_frequency_table({"rare": 1, "common": 10, "mid": 5})
        assert vocabulary.terms() == ("common", "mid", "rare")

    def test_merge_keeps_both(self):
        left = Vocabulary(["a"], name="left")
        right = Vocabulary(["b"], name="right")
        merged = left.merge(right)
        assert "a" in merged and "b" in merged
        assert len(merged) == 2
