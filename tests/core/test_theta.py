"""Tests for the cluster membership cost functions ``theta``."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.theta import (
    ConstantTheta,
    LinearTheta,
    LogarithmicTheta,
    PolynomialTheta,
    theta_from_name,
)

ALL_THETAS = [LinearTheta(), LogarithmicTheta(), ConstantTheta(), PolynomialTheta(exponent=1.5)]


class TestThetaValues:
    def test_linear(self):
        theta = LinearTheta(slope=2.0)
        assert theta(5) == 10.0

    def test_logarithmic(self):
        theta = LogarithmicTheta()
        assert theta(1) == pytest.approx(1.0)
        assert theta(7) == pytest.approx(3.0)

    def test_constant(self):
        theta = ConstantTheta(value=4.0)
        assert theta(1) == 4.0
        assert theta(100) == 4.0

    def test_polynomial(self):
        theta = PolynomialTheta(exponent=2.0, scale=0.5)
        assert theta(4) == pytest.approx(8.0)

    def test_empty_cluster_costs_nothing(self):
        for theta in ALL_THETAS:
            assert theta(0) == 0.0

    def test_negative_size_rejected(self):
        for theta in ALL_THETAS:
            with pytest.raises(ValueError):
                theta(-1)


class TestThetaValidation:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LinearTheta(slope=0)
        with pytest.raises(ValueError):
            LogarithmicTheta(scale=-1)
        with pytest.raises(ValueError):
            ConstantTheta(value=-0.1)
        with pytest.raises(ValueError):
            PolynomialTheta(exponent=-1)


class TestThetaRegistry:
    @pytest.mark.parametrize(
        "name, expected",
        [
            ("linear", LinearTheta),
            ("logarithmic", LogarithmicTheta),
            ("log", LogarithmicTheta),
            ("constant", ConstantTheta),
            ("polynomial", PolynomialTheta),
        ],
    )
    def test_lookup(self, name, expected):
        assert isinstance(theta_from_name(name), expected)

    def test_lookup_is_case_insensitive(self):
        assert isinstance(theta_from_name("Linear"), LinearTheta)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            theta_from_name("exponential")

    def test_kwargs_forwarded(self):
        assert theta_from_name("linear", slope=3.0)(2) == 6.0


class TestMonotonicityProperty:
    @given(st.integers(min_value=0, max_value=500), st.integers(min_value=0, max_value=500))
    def test_monotonically_non_decreasing(self, a, b):
        small, large = min(a, b), max(a, b)
        for theta in ALL_THETAS:
            assert theta(small) <= theta(large) + 1e-12

    @given(st.integers(min_value=1, max_value=500))
    def test_positive_for_nonempty_clusters(self, size):
        for theta in ALL_THETAS:
            assert theta(size) > 0.0
            assert math.isfinite(theta(size))
