"""Tests for the dense weighted recall matrices (fast path == exact path)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.recall_matrix import WeightedRecallMatrix
from repro.errors import UnknownPeerError


@pytest.fixture
def matrix(tiny_network):
    return WeightedRecallMatrix(tiny_network.recall_model(), tiny_network.workloads())


class TestConstruction:
    def test_peer_order_matches_network(self, matrix, tiny_network):
        assert matrix.peer_order == tiny_network.peer_ids()
        assert len(matrix) == 3

    def test_duplicate_peer_order_rejected(self, tiny_network):
        with pytest.raises(ValueError):
            WeightedRecallMatrix(
                tiny_network.recall_model(),
                tiny_network.workloads(),
                peer_order=["alice", "alice", "bob"],
            )

    def test_unknown_peer_raises(self, matrix):
        with pytest.raises(UnknownPeerError):
            matrix.index_of("mallory")


class TestLocalMatrix:
    def test_rows_match_exact_recall(self, matrix, tiny_network):
        """W[i, j] equals the exact frequency-weighted recall of peer j for peer i's workload."""
        model = tiny_network.recall_model()
        workloads = tiny_network.workloads()
        local = matrix.local_matrix()
        for row, issuer in enumerate(matrix.peer_order):
            workload = workloads[issuer]
            for column, provider in enumerate(matrix.peer_order):
                expected = sum(
                    (count / workload.total()) * model.recall(query, provider)
                    for query, count in workload.items()
                )
                assert local[row, column] == pytest.approx(expected)

    def test_total_weight_is_row_sum(self, matrix):
        local = matrix.local_matrix()
        for row, peer_id in enumerate(matrix.peer_order):
            assert matrix.total_weight(peer_id) == pytest.approx(local[row].sum())

    def test_recall_loss_is_total_minus_covered(self, matrix):
        covered = ["alice", "carol"]
        for peer_id in matrix.peer_order:
            loss = matrix.recall_loss(peer_id, covered)
            assert loss == pytest.approx(
                matrix.total_weight(peer_id) - matrix.covered_weight(peer_id, covered)
            )
            assert loss >= -1e-12

    def test_covered_weight_with_unknown_peers_is_ignored(self, matrix):
        assert matrix.covered_weight("alice", ["mallory"]) == 0.0


class TestGlobalMatrix:
    def test_global_rows_scale_with_workload_share(self, matrix, tiny_network):
        """V row = W row * num(Q(p)) / num(Q)."""
        workloads = tiny_network.workloads()
        total = sum(workload.total() for workload in workloads.values())
        local = matrix.local_matrix()
        global_matrix = matrix.global_matrix()
        for row, peer_id in enumerate(matrix.peer_order):
            share = workloads[peer_id].total() / total
            assert np.allclose(global_matrix[row], local[row] * share)


class TestServiceMatrix:
    def test_service_counts_match_definition(self, matrix, tiny_network):
        """S[p, j] = sum over q in Q(p_j) of num(q, Q(p_j)) * result(q, p)."""
        model = tiny_network.recall_model()
        workloads = tiny_network.workloads()
        service = matrix.service_matrix()
        for provider_index, provider in enumerate(matrix.peer_order):
            for issuer_index, issuer in enumerate(matrix.peer_order):
                expected = sum(
                    count * model.result(query, provider)
                    for query, count in workloads[issuer].items()
                )
                assert service[provider_index, issuer_index] == pytest.approx(expected)

    def test_contribution_matrix_rows_sum_to_one_or_zero(self, matrix, tiny_configuration):
        membership, _clusters = tiny_configuration.membership_matrix(matrix.peer_order)
        contributions = matrix.contribution_matrix(membership)
        for row in range(contributions.shape[0]):
            row_sum = contributions[row].sum()
            assert row_sum == pytest.approx(1.0) or row_sum == pytest.approx(0.0)

    def test_contribution_matrix_shape_validation(self, matrix):
        with pytest.raises(ValueError):
            matrix.contribution_matrix(np.zeros((2, 2)))


class TestLossMatrix:
    def test_matches_per_cluster_recall_loss(self, matrix, tiny_configuration):
        membership, clusters = tiny_configuration.membership_matrix(matrix.peer_order)
        losses = matrix.loss_matrix_for_clusters(membership)
        for row, peer_id in enumerate(matrix.peer_order):
            for column, cluster_id in enumerate(clusters):
                members = set(tiny_configuration.members(cluster_id))
                members.add(peer_id)
                expected = matrix.recall_loss(peer_id, sorted(members))
                assert losses[row, column] == pytest.approx(expected)

    def test_shape_validation(self, matrix):
        with pytest.raises(ValueError):
            matrix.loss_matrix_for_clusters(np.zeros((1, 1)))


class TestCoveredIndices:
    def test_duplicate_peer_mentions_are_counted_once(self, tiny_network):
        """The matrix path dedups covered peers exactly like the set() of the exact path."""
        model = tiny_network.cost_model(use_matrix=True)
        exact = tiny_network.cost_model(use_matrix=False)
        duplicated = ["alice", "alice", "carol", "carol"]
        assert model.recall_loss("bob", duplicated) == pytest.approx(
            exact.recall_loss("bob", duplicated)
        )
        assert model.recall_loss("bob", duplicated) == pytest.approx(
            model.recall_loss("bob", ["alice", "carol"])
        )

    def test_frozenset_translation_is_memoised(self, tiny_network):
        matrix = tiny_network.recall_matrix()
        covered = frozenset({"alice", "carol"})
        first = matrix.covered_indices(covered)
        second = matrix.covered_indices(covered)
        assert first is second
