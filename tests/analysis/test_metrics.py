"""Tests for the external clustering metrics (purity, entropy, Rand index)."""

from __future__ import annotations

import pytest

from repro.analysis.metrics import (
    cluster_entropy,
    cluster_purity,
    cluster_size_distribution,
    rand_index,
)
from repro.peers.configuration import ClusterConfiguration

LABELS = {"p1": "music", "p2": "music", "p3": "movies", "p4": "movies"}


def perfect_configuration():
    return ClusterConfiguration(
        ["c1", "c2"], {"p1": "c1", "p2": "c1", "p3": "c2", "p4": "c2"}
    )


def mixed_configuration():
    return ClusterConfiguration(
        ["c1", "c2"], {"p1": "c1", "p3": "c1", "p2": "c2", "p4": "c2"}
    )


class TestPurity:
    def test_perfect_clustering(self):
        assert cluster_purity(perfect_configuration(), LABELS) == 1.0

    def test_fully_mixed_clustering(self):
        assert cluster_purity(mixed_configuration(), LABELS) == 0.5

    def test_unlabelled_peers_are_ignored(self):
        labels = dict(LABELS)
        labels["p4"] = None
        assert cluster_purity(perfect_configuration(), labels) == 1.0

    def test_no_labels_gives_zero(self):
        assert cluster_purity(perfect_configuration(), {}) == 0.0


class TestEntropy:
    def test_perfect_clustering_has_zero_entropy(self):
        assert cluster_entropy(perfect_configuration(), LABELS) == 0.0

    def test_mixed_clustering_has_one_bit_of_entropy(self):
        assert cluster_entropy(mixed_configuration(), LABELS) == pytest.approx(1.0)

    def test_no_labels_gives_zero(self):
        assert cluster_entropy(perfect_configuration(), {}) == 0.0


class TestRandIndex:
    def test_perfect_agreement(self):
        assert rand_index(perfect_configuration(), LABELS) == 1.0

    def test_mixed_clustering_is_worse(self):
        assert rand_index(mixed_configuration(), LABELS) < 1.0

    def test_single_labelled_peer(self):
        assert rand_index(perfect_configuration(), {"p1": "music"}) == 1.0


class TestSizeDistribution:
    def test_sizes(self):
        assert cluster_size_distribution(perfect_configuration()) == {"c1": 2, "c2": 2}
