"""Tests for convergence tracking and plain-text reporting."""

from __future__ import annotations

import pytest

from repro.analysis.convergence import ConvergenceTracker, relative_change
from repro.analysis.reporting import format_markdown_table, format_series, format_table


class TestRelativeChange:
    def test_zero_to_zero(self):
        assert relative_change(0.0, 0.0) == 0.0

    def test_symmetric(self):
        assert relative_change(1.0, 2.0) == relative_change(2.0, 1.0)

    def test_scale(self):
        assert relative_change(1.0, 1.1) == pytest.approx(0.1 / 1.1)


class TestConvergenceTracker:
    def test_detects_repeated_signature(self):
        tracker = ConvergenceTracker()
        tracker.observe(("a",), 1.0)
        tracker.observe(("b",), 0.9)
        assert not tracker.cycle_detected
        tracker.observe(("a",), 1.0)
        assert tracker.cycle_detected
        assert tracker.cycle_length == 2

    def test_stability_window(self):
        tracker = ConvergenceTracker()
        tracker.observe(("a",), 1.0)
        assert not tracker.is_stable()
        tracker.observe(("b",), 1.0)
        assert tracker.is_stable()
        tracker.observe(("c",), 0.5)
        assert not tracker.is_stable()

    def test_cost_trace(self):
        tracker = ConvergenceTracker()
        tracker.observe(("a",), 1.0)
        tracker.observe(("b",), 0.5)
        assert tracker.cost_trace() == [1.0, 0.5]
        assert tracker.rounds_observed == 2


class TestReporting:
    def test_format_table_aligns_columns(self):
        text = format_table(["name", "value"], [["selfish", 0.123456], ["alt", 2]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "selfish" in lines[2]
        assert "0.123" in lines[2]

    def test_format_markdown_table(self):
        text = format_markdown_table(["a", "b"], [[1, 2]])
        assert text.splitlines()[0] == "| a | b |"
        assert text.splitlines()[2] == "| 1 | 2 |"

    def test_format_series(self):
        text = format_series("social cost", {0: 1.0, 1: 0.5})
        assert text.startswith("social cost")
        assert "0.500" in text
