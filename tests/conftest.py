"""Shared fixtures for the test suite.

The fixtures build small, deterministic networks so tests stay fast:

* ``tiny_network`` — three hand-crafted peers whose recall values are easy to
  verify by hand,
* ``small_scenario`` — a seeded synthetic scenario (16 peers, 4 categories)
  used by protocol / experiment level tests,
* ``counterexample`` — the paper's two-peer no-equilibrium instance.

Heavier, session-scoped fixtures are cached because many tests only read
them; tests that mutate state build their own copies.
"""

from __future__ import annotations

import pytest

from repro.core.documents import Document
from repro.core.queries import Query
from repro.datasets.scenarios import (
    SCENARIO_SAME_CATEGORY,
    ScenarioConfig,
    build_scenario,
)
from repro.game.equilibrium import build_two_peer_counterexample
from repro.peers.configuration import ClusterConfiguration
from repro.peers.network import PeerNetwork
from repro.peers.peer import Peer


def make_tiny_network() -> PeerNetwork:
    """Three peers with hand-checkable content and workloads.

    * ``alice`` holds two "music" documents and asks about "movies".
    * ``bob`` holds one "movies" document and asks about "music".
    * ``carol`` holds one "movies" and one "music" document and asks about "movies".
    """
    alice = Peer(
        "alice",
        documents=[
            Document(["music", "rock"], doc_id="a1", category="music"),
            Document(["music", "jazz"], doc_id="a2", category="music"),
        ],
    )
    bob = Peer(
        "bob",
        documents=[Document(["movies", "drama"], doc_id="b1", category="movies")],
    )
    carol = Peer(
        "carol",
        documents=[
            Document(["movies", "comedy"], doc_id="c1", category="movies"),
            Document(["music", "pop"], doc_id="c2", category="music"),
        ],
    )
    alice.issue_query(Query(["movies"]), 2)
    bob.issue_query(Query(["music"]), 1)
    carol.issue_query(Query(["movies"]), 1)
    return PeerNetwork([alice, bob, carol])


@pytest.fixture
def tiny_network() -> PeerNetwork:
    """A fresh three-peer network (safe to mutate)."""
    return make_tiny_network()


@pytest.fixture
def tiny_configuration(tiny_network) -> ClusterConfiguration:
    """alice+carol share cluster c1, bob is alone in c2 (c3 empty)."""
    return ClusterConfiguration(
        ["c1", "c2", "c3"], {"alice": "c1", "carol": "c1", "bob": "c2"}
    )


SMALL_SCENARIO_CONFIG = ScenarioConfig(
    num_peers=16,
    num_categories=4,
    documents_per_peer=5,
    terms_per_document=4,
    category_vocabulary_size=20,
    queries_per_peer=3,
    seed=5,
)


@pytest.fixture(scope="session")
def small_scenario():
    """A small same-category scenario shared (read-only) across tests."""
    return build_scenario(SCENARIO_SAME_CATEGORY, SMALL_SCENARIO_CONFIG)


def make_small_scenario(**overrides):
    """Build a fresh copy of the small scenario (for tests that mutate it)."""
    config = SMALL_SCENARIO_CONFIG
    if overrides:
        from dataclasses import replace

        config = replace(config, **overrides)
    return build_scenario(SCENARIO_SAME_CATEGORY, config)


@pytest.fixture
def counterexample():
    """The paper's two-peer no-equilibrium instance (alpha = 1)."""
    return build_two_peer_counterexample(alpha=1.0)
