"""Tests for the event hook system (``repro.events``)."""

from __future__ import annotations

import pytest

from repro.datasets.scenarios import SCENARIO_SAME_CATEGORY, ScenarioConfig, build_scenario
from repro.dynamics.periodic import PeriodicMaintenanceLoop
from repro.events import (
    CostTraceRecorder,
    EventHooks,
    PeriodEndEvent,
    RelocationGrantedEvent,
    RoundEndEvent,
)
from repro.peers.configuration import ClusterConfiguration
from repro.protocol.reformulation import ReformulationProtocol
from repro.strategies.selfish import SelfishStrategy

from tests.conftest import make_tiny_network

SMALL = ScenarioConfig(
    num_peers=16,
    num_categories=4,
    documents_per_peer=4,
    terms_per_document=3,
    category_vocabulary_size=15,
    queries_per_peer=3,
    seed=9,
)


class TestEventHooks:
    def test_emit_delivers_in_subscription_order(self):
        hooks = EventHooks()
        seen = []
        hooks.subscribe("ping", lambda payload: seen.append(("a", payload)))
        hooks.subscribe("ping", lambda payload: seen.append(("b", payload)))
        hooks.emit("ping", 1)
        assert seen == [("a", 1), ("b", 1)]

    def test_unsubscribe_stops_delivery(self):
        hooks = EventHooks()
        seen = []
        unsubscribe = hooks.subscribe("ping", seen.append)
        hooks.emit("ping", 1)
        unsubscribe()
        unsubscribe()  # idempotent
        hooks.emit("ping", 2)
        assert seen == [1]
        assert hooks.subscriber_count("ping") == 0

    def test_emit_without_subscribers_is_a_no_op(self):
        EventHooks().emit("ping", 1)

    def test_subscriber_errors_propagate(self):
        hooks = EventHooks()
        hooks.subscribe("ping", lambda payload: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            hooks.emit("ping", 1)


class TestProtocolEvents:
    def _run(self):
        network = make_tiny_network()
        configuration = ClusterConfiguration.singletons(["alice", "bob", "carol"])
        hooks = EventHooks()
        rounds, moves = [], []
        hooks.on_round_end(rounds.append)
        hooks.on_relocation_granted(moves.append)
        protocol = ReformulationProtocol(
            network.cost_model(), configuration, SelfishStrategy(), hooks=hooks
        )
        return protocol.run(), rounds, moves

    def test_round_end_fires_once_per_executed_round(self):
        result, rounds, _moves = self._run()
        assert len(rounds) == len(result.rounds)
        assert all(isinstance(event, RoundEndEvent) for event in rounds)
        assert [event.round_number for event in rounds] == list(range(len(rounds)))

    def test_round_end_carries_the_recorded_costs(self):
        result, rounds, _moves = self._run()
        # Non-quiescent rounds append to the traces; their events mirror them.
        for event in rounds:
            if not event.result.quiescent:
                index = event.round_number + 1  # +1 for the initial record
                assert event.social_cost == result.social_cost_trace[index]
                assert event.cluster_count == result.cluster_count_trace[index]

    def test_relocation_granted_fires_once_per_move(self):
        result, _rounds, moves = self._run()
        assert len(moves) == result.total_moves
        assert all(isinstance(event, RelocationGrantedEvent) for event in moves)

    def test_cost_trace_recorder_matches_post_hoc_traces(self):
        network = make_tiny_network()
        configuration = ClusterConfiguration.singletons(["alice", "bob", "carol"])
        hooks = EventHooks()
        recorder = CostTraceRecorder().attach(hooks)
        protocol = ReformulationProtocol(
            network.cost_model(), configuration, SelfishStrategy(), hooks=hooks
        )
        result = protocol.run()
        # The recorder sees every non-quiescent round's record (the traces
        # additionally hold the initial pre-run record) plus the final
        # quiescent round's repeat of the last costs.
        assert recorder.social_cost[: len(result.social_cost_trace) - 1] == (
            result.social_cost_trace[1:]
        )
        assert len(recorder.moves) == result.total_moves


class TestMaintenanceEvents:
    def test_period_end_fires_once_per_period(self):
        data = build_scenario(SCENARIO_SAME_CATEGORY, SMALL)
        from repro.datasets.scenarios import category_configuration

        hooks = EventHooks()
        periods = []
        hooks.on_period_end(periods.append)
        loop = PeriodicMaintenanceLoop(
            data.network,
            category_configuration(data),
            SelfishStrategy(),
            hooks=hooks,
        )
        loop.run(2)
        assert len(periods) == 2
        assert all(isinstance(event, PeriodEndEvent) for event in periods)
        assert [event.record.period for event in periods] == [0, 1]
        assert periods[0].protocol_result is not None
