"""Tests for the component registry layer (``repro.registry``)."""

from __future__ import annotations

import pytest

from repro import baselines  # noqa: F401  (registers the baseline strategies)
from repro.core.theta import LogarithmicTheta, theta_from_name
from repro.errors import DuplicateComponentError, UnknownComponentError
from repro.registry import (
    ComponentRegistry,
    initializer_registry,
    register_strategy,
    router_registry,
    scenario_registry,
    strategy_registry,
    theta_registry,
)
from repro.strategies import build_strategy
from repro.strategies.base import RelocationStrategy
from repro.strategies.selfish import SelfishStrategy


class TestComponentRegistry:
    def test_register_and_create(self):
        registry = ComponentRegistry("widget")
        registry.register("gear", lambda teeth=8: ("gear", teeth))
        assert registry.create("gear") == ("gear", 8)
        assert registry.create("gear", teeth=12) == ("gear", 12)

    def test_decorator_form_returns_the_component(self):
        registry = ComponentRegistry("widget")

        @registry.register("spring")
        class Spring:
            pass

        assert registry.get("spring") is Spring
        assert Spring.__name__ == "Spring"

    def test_names_are_normalised(self):
        registry = ComponentRegistry("widget")
        registry.register("Same-Category", object())
        assert "same_category" in registry
        assert "SAME-CATEGORY" in registry
        assert registry.canonical_name("same_category") == "same-category"

    def test_aliases_resolve_to_the_canonical_component(self):
        registry = ComponentRegistry("widget")
        registry.register("logarithmic", LogarithmicTheta, aliases=("log",))
        assert registry.get("log") is LogarithmicTheta
        assert registry.names() == ["logarithmic"]  # aliases are not listed

    def test_duplicate_name_raises(self):
        registry = ComponentRegistry("widget")
        registry.register("gear", object())
        with pytest.raises(DuplicateComponentError):
            registry.register("gear", object())

    def test_duplicate_alias_raises(self):
        registry = ComponentRegistry("widget")
        registry.register("gear", object())
        with pytest.raises(DuplicateComponentError):
            registry.register("cog", object(), aliases=("gear",))

    def test_replace_overrides_deliberately(self):
        registry = ComponentRegistry("widget")
        registry.register("gear", "old")
        registry.register("gear", "new", replace=True)
        assert registry.get("gear") == "new"

    def test_unknown_name_error_enumerates_components(self):
        registry = ComponentRegistry("widget")
        registry.register("gear", object())
        registry.register("spring", object())
        with pytest.raises(UnknownComponentError) as excinfo:
            registry.get("piston")
        message = str(excinfo.value)
        assert "gear" in message and "spring" in message
        assert excinfo.value.known == ["gear", "spring"]

    def test_unknown_component_error_is_a_value_error(self):
        registry = ComponentRegistry("widget")
        with pytest.raises(ValueError):
            registry.get("anything")

    def test_unregister_removes_aliases_too(self):
        registry = ComponentRegistry("widget")
        registry.register("gear", object(), aliases=("cog",))
        registry.unregister("gear")
        assert "gear" not in registry
        assert "cog" not in registry


class TestBuiltinRegistrations:
    def test_builtin_strategies_are_registered(self):
        for name in ("selfish", "altruistic", "hybrid", "static", "random"):
            assert name in strategy_registry, name

    def test_builtin_thetas_are_registered(self):
        for name in ("linear", "logarithmic", "constant", "polynomial"):
            assert name in theta_registry, name
        assert theta_registry.canonical_name("log") == "logarithmic"

    def test_builtin_scenarios_are_registered(self):
        for name in ("same-category", "different-category", "uniform"):
            assert name in scenario_registry, name
        # underscore spelling resolves too
        assert scenario_registry.canonical_name("same_category") == "same-category"

    def test_builtin_routers_are_registered(self):
        assert "broadcast" in router_registry
        assert "probe-k" in router_registry

    def test_builtin_initializers_are_registered(self):
        for name in ("singletons", "random", "fewer", "more", "category"):
            assert name in initializer_registry, name


class TestFactoryEntryPoints:
    """The pre-registry factories still resolve, now through the registry."""

    def test_build_strategy_resolves_builtins(self):
        assert isinstance(build_strategy("selfish"), SelfishStrategy)
        assert build_strategy("hybrid", weight=0.25).weight == 0.25
        assert build_strategy("static").name == "static"

    def test_build_strategy_unknown_name_lists_components(self):
        with pytest.raises(ValueError) as excinfo:
            build_strategy("galactic")
        assert "selfish" in str(excinfo.value)

    def test_theta_from_name_resolves_builtins(self):
        assert isinstance(theta_from_name("log"), LogarithmicTheta)

    def test_theta_from_name_unknown_name_lists_components(self):
        with pytest.raises(ValueError) as excinfo:
            theta_from_name("exponential")
        assert "linear" in str(excinfo.value)

    def test_mode_not_forwarded_to_strategies_without_it(self):
        # StaticStrategy takes no ``mode``; build_strategy must not pass one.
        strategy = build_strategy("static", mode="observed")
        assert not hasattr(strategy, "mode")


class TestCustomComponents:
    def test_registered_strategy_usable_by_name(self):
        @register_strategy("test-lazy")
        class LazyStrategy(RelocationStrategy):
            name = "test-lazy"

            def propose(self, peer_id, context):
                return None

        try:
            strategy = build_strategy("test-lazy")
            assert isinstance(strategy, LazyStrategy)
        finally:
            strategy_registry.unregister("test-lazy")

    def test_registered_strategy_visible_in_cli_choices(self):
        from repro.cli import build_parser

        @register_strategy("test-plugin")
        class PluginStrategy(RelocationStrategy):
            name = "test-plugin"

            def propose(self, peer_id, context):
                return None

        try:
            arguments = build_parser().parse_args(
                ["discover", "--scale", "quick", "--strategy", "test-plugin"]
            )
            assert arguments.strategy == "test-plugin"
        finally:
            strategy_registry.unregister("test-plugin")
