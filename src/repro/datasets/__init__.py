"""Synthetic dataset generation: vocabularies, corpus, workloads and scenario builders."""

from repro.datasets.corpus import CorpusConfig, CorpusGenerator
from repro.datasets.scenarios import (
    SCENARIO_DIFFERENT_CATEGORY,
    SCENARIO_SAME_CATEGORY,
    SCENARIO_UNIFORM,
    ScenarioConfig,
    ScenarioData,
    build_scenario,
    category_configuration,
    initial_configuration,
)
from repro.datasets.vocabulary import CategoryVocabularies, zipf_weights
from repro.datasets.workload import uniform_query_volumes, zipf_query_volumes

__all__ = [
    "CorpusConfig",
    "CorpusGenerator",
    "CategoryVocabularies",
    "zipf_weights",
    "zipf_query_volumes",
    "uniform_query_volumes",
    "ScenarioConfig",
    "ScenarioData",
    "build_scenario",
    "initial_configuration",
    "category_configuration",
    "SCENARIO_SAME_CATEGORY",
    "SCENARIO_DIFFERENT_CATEGORY",
    "SCENARIO_UNIFORM",
]
