"""Synthetic categorised corpus generator.

Substitutes for the paper's preprocessed Newsgroup articles (see DESIGN.md):
documents are bags of keywords drawn from their category's Zipfian
vocabulary, optionally mixed with a few terms from a shared pool, and queries
are single random terms drawn "from the texts" of a target category — the
same construction the paper uses, applied to the synthetic vocabularies.
All randomness flows through an explicit seed so datasets are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.core.documents import Document
from repro.core.queries import Query, QueryWorkload
from repro.datasets.vocabulary import CategoryVocabularies
from repro.errors import DatasetError

__all__ = ["CorpusConfig", "CorpusGenerator"]


@dataclass(frozen=True)
class CorpusConfig:
    """Parameters of the synthetic corpus.

    Attributes
    ----------
    num_categories:
        Number of document categories (the paper uses 10).
    category_vocabulary_size:
        Category-exclusive terms per category.
    common_vocabulary_size:
        Terms shared across categories (0 keeps categories disjoint).
    terms_per_document:
        Distinct category terms per document.
    common_terms_per_document:
        Shared-pool terms per document (ignored when the shared pool is empty).
    zipf_exponent:
        Skew of the term frequency distribution.
    """

    num_categories: int = 10
    category_vocabulary_size: int = 60
    common_vocabulary_size: int = 0
    terms_per_document: int = 5
    common_terms_per_document: int = 0
    zipf_exponent: float = 1.0

    def category_names(self) -> List[str]:
        """The generated category names, ``cat00`` ... ``cat{n-1}``."""
        return [f"cat{index:02d}" for index in range(self.num_categories)]


class CorpusGenerator:
    """Generates documents, queries and workloads for the synthetic corpus."""

    def __init__(self, config: Optional[CorpusConfig] = None, *, seed: int = 0) -> None:
        self.config = config if config is not None else CorpusConfig()
        if self.config.num_categories <= 0:
            raise DatasetError("num_categories must be positive")
        if self.config.terms_per_document <= 0:
            raise DatasetError("terms_per_document must be positive")
        if self.config.terms_per_document > self.config.category_vocabulary_size:
            raise DatasetError(
                "terms_per_document cannot exceed category_vocabulary_size"
            )
        self.rng = random.Random(seed)
        self.vocabularies = CategoryVocabularies(
            self.config.category_names(),
            category_size=self.config.category_vocabulary_size,
            common_size=self.config.common_vocabulary_size,
            zipf_exponent=self.config.zipf_exponent,
        )
        self._doc_counter = 0

    # -- categories ------------------------------------------------------------

    @property
    def categories(self) -> List[str]:
        """The category names."""
        return list(self.vocabularies.categories)

    def random_category(self, rng: Optional[random.Random] = None) -> str:
        """A uniformly random category (used by the paper's third scenario)."""
        rng = rng if rng is not None else self.rng
        return rng.choice(self.categories)

    # -- documents --------------------------------------------------------------

    def generate_document(
        self, category: str, *, rng: Optional[random.Random] = None
    ) -> Document:
        """Generate one document of *category*.

        The document's terms are ``terms_per_document`` distinct Zipf-sampled
        category terms plus (optionally) a few shared-pool terms.
        """
        rng = rng if rng is not None else self.rng
        terms = set()
        while len(terms) < self.config.terms_per_document:
            terms.add(self.vocabularies.sample_category_term(category, rng))
        if self.config.common_vocabulary_size and self.config.common_terms_per_document:
            added = 0
            while added < self.config.common_terms_per_document:
                term = self.vocabularies.sample_common_term(rng)
                if term not in terms:
                    terms.add(term)
                    added += 1
        self._doc_counter += 1
        return Document(sorted(terms), doc_id=f"doc{self._doc_counter:06d}", category=category)

    def generate_documents(
        self, category: str, count: int, *, rng: Optional[random.Random] = None
    ) -> List[Document]:
        """Generate *count* documents of *category*."""
        if count < 0:
            raise DatasetError(f"count must be non-negative, got {count}")
        return [self.generate_document(category, rng=rng) for _index in range(count)]

    def generate_mixed_documents(
        self, count: int, *, rng: Optional[random.Random] = None
    ) -> List[Document]:
        """Generate *count* documents whose categories are chosen uniformly at random."""
        rng = rng if rng is not None else self.rng
        return [
            self.generate_document(self.random_category(rng), rng=rng) for _index in range(count)
        ]

    # -- queries -------------------------------------------------------------------

    def generate_query(
        self, category: str, *, rng: Optional[random.Random] = None
    ) -> Query:
        """Generate one query: a single random word from *category*'s texts.

        Mirrors the paper's query generation ("choosing a random word from the
        texts"): the term is Zipf-sampled from the category vocabulary, i.e.
        with the same skew with which it appears in documents.
        """
        rng = rng if rng is not None else self.rng
        return Query.single_term(self.vocabularies.sample_category_term(category, rng))

    def generate_workload(
        self,
        category: str,
        num_queries: int,
        *,
        rng: Optional[random.Random] = None,
    ) -> QueryWorkload:
        """Generate a local workload of *num_queries* single-term queries about *category*."""
        if num_queries < 0:
            raise DatasetError(f"num_queries must be non-negative, got {num_queries}")
        rng = rng if rng is not None else self.rng
        workload = QueryWorkload()
        for _index in range(num_queries):
            workload.add(self.generate_query(category, rng=rng))
        return workload

    def generate_mixed_workload(
        self, num_queries: int, *, rng: Optional[random.Random] = None
    ) -> QueryWorkload:
        """A workload whose queries target uniformly random categories (scenario 3)."""
        rng = rng if rng is not None else self.rng
        workload = QueryWorkload()
        for _index in range(num_queries):
            workload.add(self.generate_query(self.random_category(rng), rng=rng))
        return workload

    def __repr__(self) -> str:
        return f"CorpusGenerator(categories={self.config.num_categories})"
