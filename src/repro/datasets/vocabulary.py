"""Synthetic category vocabularies with Zipfian term frequencies.

The paper's corpus is a set of Newsgroup articles in 10 categories,
preprocessed (stop words removed, lemmatised) and with the remaining words
sorted by frequency.  The only properties of that corpus the experiments rely
on are:

* documents are bags of keywords,
* documents of the same category share vocabulary, documents of different
  categories (mostly) do not,
* term frequencies are heavily skewed (Zipf-like).

This module generates per-category vocabularies with exactly those
properties: each category gets ``category_size`` exclusive terms; an optional
shared pool of ``common_size`` terms models stop-word-like overlap between
categories.  Term *ranks* determine their Zipf sampling weight.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.core.attributes import Vocabulary
from repro.errors import DatasetError

__all__ = ["zipf_weights", "CategoryVocabularies"]


def zipf_weights(count: int, exponent: float = 1.0) -> List[float]:
    """Normalised Zipf weights for ranks ``1..count`` with the given exponent.

    ``weight(rank) ∝ 1 / rank ** exponent``; the returned weights sum to 1.
    """
    if count <= 0:
        raise DatasetError(f"count must be positive, got {count}")
    if exponent < 0:
        raise DatasetError(f"exponent must be non-negative, got {exponent}")
    raw = [1.0 / (rank ** exponent) for rank in range(1, count + 1)]
    total = sum(raw)
    return [value / total for value in raw]


class CategoryVocabularies:
    """Per-category term universes with Zipfian sampling.

    Parameters
    ----------
    categories:
        Category names (e.g. ``["cat00", ..., "cat09"]``).
    category_size:
        Number of category-exclusive terms per category.
    common_size:
        Number of terms shared by every category (0 disables overlap, which
        is what the paper's scenario 1 needs for a zero recall loss at the
        ideal clustering).
    zipf_exponent:
        Skew of the term frequency distribution.
    """

    def __init__(
        self,
        categories: Sequence[str],
        *,
        category_size: int = 60,
        common_size: int = 0,
        zipf_exponent: float = 1.0,
    ) -> None:
        if not categories:
            raise DatasetError("at least one category is required")
        if len(set(categories)) != len(categories):
            raise DatasetError("category names must be unique")
        if category_size <= 0:
            raise DatasetError(f"category_size must be positive, got {category_size}")
        if common_size < 0:
            raise DatasetError(f"common_size must be non-negative, got {common_size}")
        self.categories = list(categories)
        self.category_size = category_size
        self.common_size = common_size
        self.zipf_exponent = zipf_exponent

        self._category_terms: Dict[str, List[str]] = {
            category: [f"{category}_term{rank:04d}" for rank in range(category_size)]
            for category in self.categories
        }
        self._common_terms: List[str] = [f"common_term{rank:04d}" for rank in range(common_size)]
        self._category_weights = zipf_weights(category_size, zipf_exponent)
        self._common_weights = (
            zipf_weights(common_size, zipf_exponent) if common_size else []
        )

    # -- accessors -----------------------------------------------------------

    def category_terms(self, category: str) -> List[str]:
        """The category-exclusive terms of *category*, in rank order."""
        try:
            return list(self._category_terms[category])
        except KeyError:
            raise DatasetError(f"unknown category {category!r}") from None

    def common_terms(self) -> List[str]:
        """The shared (category-independent) terms, in rank order."""
        return list(self._common_terms)

    def vocabulary(self, category: str) -> Vocabulary:
        """A :class:`Vocabulary` with the category terms followed by the common terms."""
        return Vocabulary(
            self.category_terms(category) + self._common_terms, name=category
        )

    def full_vocabulary(self) -> Vocabulary:
        """A :class:`Vocabulary` over every term of every category plus the common pool."""
        terms: List[str] = []
        for category in self.categories:
            terms.extend(self._category_terms[category])
        terms.extend(self._common_terms)
        return Vocabulary(terms, name="full")

    def category_of_term(self, term: str) -> Optional[str]:
        """The category a term belongs to, or ``None`` for common terms / unknown terms."""
        for category in self.categories:
            if term in self._category_terms[category]:
                return category
        return None

    # -- sampling --------------------------------------------------------------

    def sample_category_term(self, category: str, rng: random.Random) -> str:
        """Sample one category-exclusive term of *category* with Zipf weights."""
        terms = self.category_terms(category)
        return rng.choices(terms, weights=self._category_weights, k=1)[0]

    def sample_common_term(self, rng: random.Random) -> str:
        """Sample one shared term with Zipf weights (requires ``common_size > 0``)."""
        if not self._common_terms:
            raise DatasetError("no common terms were configured")
        return rng.choices(self._common_terms, weights=self._common_weights, k=1)[0]

    def __repr__(self) -> str:
        return (
            f"CategoryVocabularies(categories={len(self.categories)}, "
            f"category_size={self.category_size}, common_size={self.common_size})"
        )
