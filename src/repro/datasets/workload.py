"""Workload assignment across peers.

The paper distributes the queries among the peers using a Zipf distribution,
"thus, some peers are more demanding than others"; Section 4.2 instead
assumes the workload is assigned uniformly.  Both assignments are provided
here as deterministic (seeded) helpers that return the number of queries each
peer should issue.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.datasets.vocabulary import zipf_weights
from repro.errors import DatasetError

__all__ = ["zipf_query_volumes", "uniform_query_volumes"]


def zipf_query_volumes(
    num_peers: int,
    total_queries: int,
    *,
    exponent: float = 0.8,
    rng: Optional[random.Random] = None,
    shuffle: bool = True,
) -> List[int]:
    """Split *total_queries* across *num_peers* with Zipf-skewed shares.

    Every peer is guaranteed at least one query (a peer with an empty local
    workload would be indifferent between clusters).  With ``shuffle=True``
    (the default) the demanding peers are spread randomly over the peer id
    space rather than always being the first ones.
    """
    if num_peers <= 0:
        raise DatasetError(f"num_peers must be positive, got {num_peers}")
    if total_queries < num_peers:
        raise DatasetError(
            f"total_queries ({total_queries}) must be at least num_peers ({num_peers}) "
            "so every peer issues at least one query"
        )
    weights = zipf_weights(num_peers, exponent)
    volumes = [1] * num_peers
    remaining = total_queries - num_peers
    # Largest remainder apportionment of the remaining volume.
    exact = [weight * remaining for weight in weights]
    floors = [int(value) for value in exact]
    volumes = [base + extra for base, extra in zip(volumes, floors)]
    leftover = remaining - sum(floors)
    remainders = sorted(
        range(num_peers), key=lambda index: (exact[index] - floors[index]), reverse=True
    )
    for index in remainders[:leftover]:
        volumes[index] += 1
    if shuffle:
        rng = rng if rng is not None else random.Random(0)
        rng.shuffle(volumes)
    return volumes


def uniform_query_volumes(num_peers: int, total_queries: int) -> List[int]:
    """Split *total_queries* across *num_peers* as evenly as possible.

    This is the Section 4.2 setting ("the total query workload is assigned
    uniformly to peers"), under which Property 1 makes the social and
    workload costs proportional.
    """
    if num_peers <= 0:
        raise DatasetError(f"num_peers must be positive, got {num_peers}")
    if total_queries < 0:
        raise DatasetError(f"total_queries must be non-negative, got {total_queries}")
    base, leftover = divmod(total_queries, num_peers)
    return [base + (1 if index < leftover else 0) for index in range(num_peers)]
