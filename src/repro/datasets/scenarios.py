"""Builders for the paper's experimental scenarios (Section 4).

The evaluation shares Newsgroup-style documents in 10 categories across 200
peers and considers three data/query distributions:

1. **same-category** — each peer's data and queries fall into the same
   category; the ideal clustering has ``M = 10`` equal-sized clusters and a
   zero recall loss.
2. **different-category** — each peer's data is from one category and its
   queries target a single *different* category; the (data, query) category
   pairs are spread evenly, so the paper's ideal cluster count is
   ``M = 10 * 9 = 90``.
3. **uniform** — both data and queries are drawn uniformly at random from all
   categories; no clustering is clearly favoured.

Queries are distributed among the peers with a Zipf distribution (some peers
are more demanding), or uniformly for the Section 4.2 maintenance
experiments.  Four initial configurations are studied: (i) every peer in its
own cluster, (ii) peers randomly spread over ``m = M`` clusters, (iii)
``m < M`` clusters and (iv) ``m > M`` clusters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.datasets.corpus import CorpusConfig, CorpusGenerator
from repro.datasets.workload import uniform_query_volumes, zipf_query_volumes
from repro.errors import DatasetError, UnknownComponentError
from repro.peers.configuration import ClusterConfiguration
from repro.peers.network import PeerNetwork
from repro.peers.peer import Peer
from repro.registry import (
    initializer_registry,
    register_initializer,
    register_scenario,
    scenario_registry,
)

__all__ = [
    "SCENARIO_SAME_CATEGORY",
    "SCENARIO_DIFFERENT_CATEGORY",
    "SCENARIO_UNIFORM",
    "ScenarioConfig",
    "ScenarioData",
    "ScenarioSpec",
    "build_scenario",
    "initial_configuration",
]

SCENARIO_SAME_CATEGORY = "same-category"
SCENARIO_DIFFERENT_CATEGORY = "different-category"
SCENARIO_UNIFORM = "uniform"


@dataclass(frozen=True)
class ScenarioConfig:
    """Knobs of a scenario build (paper defaults, scaled to run quickly)."""

    num_peers: int = 200
    num_categories: int = 10
    documents_per_peer: int = 10
    terms_per_document: int = 5
    category_vocabulary_size: int = 60
    common_vocabulary_size: int = 0
    queries_per_peer: int = 6
    zipf_exponent: float = 0.8
    uniform_workload: bool = False
    seed: int = 7

    def corpus_config(self) -> CorpusConfig:
        """The corresponding corpus generator configuration."""
        return CorpusConfig(
            num_categories=self.num_categories,
            category_vocabulary_size=self.category_vocabulary_size,
            common_vocabulary_size=self.common_vocabulary_size,
            terms_per_document=self.terms_per_document,
        )


@dataclass
class ScenarioData:
    """A fully built scenario: the network plus the ground truth used for analysis."""

    scenario: str
    config: ScenarioConfig
    network: PeerNetwork
    generator: CorpusGenerator
    data_categories: Dict[object, Optional[str]] = field(default_factory=dict)
    query_categories: Dict[object, Optional[str]] = field(default_factory=dict)
    optimal_cluster_count: int = 0

    def peer_ids(self) -> List[object]:
        """The peer ids of the scenario's network."""
        return self.network.peer_ids()


def _peer_name(index: int) -> str:
    return f"peer{index:03d}"


#: Assigns peer *index* its (data category, query category) pair; ``None``
#: means "mixed over all categories".
CategoryAssigner = Callable[[int, Sequence[str]], Tuple[Optional[str], Optional[str]]]


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of a data/query scenario.

    Third parties register new scenarios by name::

        @register_scenario("adversarial")
        def _adversarial_spec() -> ScenarioSpec: ...

    or directly with a spec instance via
    ``scenario_registry.register(name, spec)``.  The registry may hold either
    a spec or a zero-argument factory returning one.
    """

    name: str
    assign_categories: CategoryAssigner
    optimal_clusters: Callable[[ScenarioConfig], int]


def _same_category_assign(index: int, categories: Sequence[str]) -> Tuple[str, str]:
    category = categories[index % len(categories)]
    return category, category


def _different_category_assign(
    index: int, categories: Sequence[str]
) -> Tuple[str, str]:
    # Cycle through all ordered (data, query) pairs with distinct
    # categories so the pairs are spread as evenly as possible.
    pair_index = index % (len(categories) * (len(categories) - 1))
    data_index = pair_index // (len(categories) - 1)
    offset = pair_index % (len(categories) - 1)
    query_index = (data_index + 1 + offset) % len(categories)
    return categories[data_index], categories[query_index]


def _uniform_assign(index: int, categories: Sequence[str]) -> Tuple[None, None]:
    return None, None


scenario_registry.register(
    SCENARIO_SAME_CATEGORY,
    ScenarioSpec(
        name=SCENARIO_SAME_CATEGORY,
        assign_categories=_same_category_assign,
        optimal_clusters=lambda config: config.num_categories,
    ),
    aliases=("scenario1",),
)
scenario_registry.register(
    SCENARIO_DIFFERENT_CATEGORY,
    ScenarioSpec(
        name=SCENARIO_DIFFERENT_CATEGORY,
        assign_categories=_different_category_assign,
        optimal_clusters=lambda config: config.num_categories * (config.num_categories - 1),
    ),
    aliases=("scenario2",),
)
scenario_registry.register(
    SCENARIO_UNIFORM,
    ScenarioSpec(
        name=SCENARIO_UNIFORM,
        assign_categories=_uniform_assign,
        optimal_clusters=lambda config: config.num_categories,
    ),
    aliases=("scenario3",),
)


def scenario_spec(scenario: str) -> ScenarioSpec:
    """Resolve *scenario* to its registered :class:`ScenarioSpec`.

    Unknown names raise :class:`~repro.errors.DatasetError` whose message
    lists the registered scenarios.
    """
    try:
        entry = scenario_registry.get(scenario)
    except UnknownComponentError as error:
        raise DatasetError(str(error)) from None
    if isinstance(entry, ScenarioSpec):
        return entry
    spec = entry()
    if not isinstance(spec, ScenarioSpec):
        raise DatasetError(
            f"scenario {scenario!r} resolved to {type(spec).__name__}, expected ScenarioSpec"
        )
    return spec


__all__.append("scenario_spec")


def build_scenario(scenario: str, config: Optional[ScenarioConfig] = None) -> ScenarioData:
    """Build the network (peers, content, workloads) for a registered scenario."""
    spec = scenario_spec(scenario)
    config = config if config is not None else ScenarioConfig()
    generator = CorpusGenerator(config.corpus_config(), seed=config.seed)
    rng = random.Random(config.seed + 1)
    categories = generator.categories

    total_queries = config.num_peers * config.queries_per_peer
    if config.uniform_workload:
        volumes = uniform_query_volumes(config.num_peers, total_queries)
    else:
        volumes = zipf_query_volumes(
            config.num_peers, total_queries, exponent=config.zipf_exponent, rng=rng
        )

    data = ScenarioData(
        scenario=spec.name,
        config=config,
        network=PeerNetwork(),
        generator=generator,
    )

    for index in range(config.num_peers):
        peer_id = _peer_name(index)
        data_category, query_category = spec.assign_categories(index, categories)

        if data_category is None:
            documents = generator.generate_mixed_documents(config.documents_per_peer, rng=rng)
        else:
            documents = generator.generate_documents(
                data_category, config.documents_per_peer, rng=rng
            )
        if query_category is None:
            workload = generator.generate_mixed_workload(volumes[index], rng=rng)
        else:
            workload = generator.generate_workload(query_category, volumes[index], rng=rng)

        peer = Peer(peer_id, documents=documents, workload=workload)
        data.network.add_peer(peer)
        data.data_categories[peer_id] = data_category
        data.query_categories[peer_id] = query_category

    data.optimal_cluster_count = spec.optimal_clusters(config)
    return data


def _random_spread(
    data: ScenarioData, cluster_count: int, seed: int
) -> ClusterConfiguration:
    """Assign every peer to a uniformly random cluster out of *cluster_count* slots."""
    peer_ids = data.peer_ids()
    cluster_count = max(1, min(cluster_count, len(peer_ids)))
    configuration = ClusterConfiguration.with_slots(len(peer_ids))
    slots = configuration.cluster_ids()[:cluster_count]
    rng = random.Random(seed)
    for peer_id in peer_ids:
        configuration.assign(peer_id, rng.choice(slots))
    return configuration


@register_initializer("singletons", aliases=("i",))
def _initial_singletons(
    data: ScenarioData, *, num_clusters: Optional[int] = None, seed: int = 11
) -> ClusterConfiguration:
    """Case i — every peer alone in its own cluster."""
    return ClusterConfiguration.singletons(data.peer_ids())


@register_initializer("random", aliases=("ii",))
def _initial_random(
    data: ScenarioData, *, num_clusters: Optional[int] = None, seed: int = 11
) -> ClusterConfiguration:
    """Case ii — peers spread randomly over ``m = M`` clusters."""
    optimal = max(data.optimal_cluster_count, 1)
    return _random_spread(data, num_clusters if num_clusters is not None else optimal, seed)


@register_initializer("fewer", aliases=("iii",))
def _initial_fewer(
    data: ScenarioData, *, num_clusters: Optional[int] = None, seed: int = 11
) -> ClusterConfiguration:
    """Case iii — peers spread randomly over ``m < M`` clusters."""
    optimal = max(data.optimal_cluster_count, 1)
    cluster_count = num_clusters if num_clusters is not None else max(2, optimal // 2)
    return _random_spread(data, cluster_count, seed)


@register_initializer("more", aliases=("iv",))
def _initial_more(
    data: ScenarioData, *, num_clusters: Optional[int] = None, seed: int = 11
) -> ClusterConfiguration:
    """Case iv — peers spread randomly over ``m > M`` clusters."""
    optimal = max(data.optimal_cluster_count, 1)
    cluster_count = (
        num_clusters if num_clusters is not None else min(len(data.peer_ids()), optimal * 2)
    )
    return _random_spread(data, cluster_count, seed)


def initial_configuration(
    data: ScenarioData,
    kind: str,
    *,
    num_clusters: Optional[int] = None,
    seed: int = 11,
) -> ClusterConfiguration:
    """Build a registered initial configuration.

    Parameters
    ----------
    kind:
        ``"singletons"`` (i — every peer its own cluster), ``"random"``
        (ii — peers random over ``m = M`` clusters), ``"fewer"`` (iii —
        ``m < M``), ``"more"`` (iv — ``m > M``), ``"category"`` (the
        ground-truth clustering) or any name registered through
        :func:`repro.registry.register_initializer`.
    num_clusters:
        Explicit ``m`` overriding the kind's default.
    """
    try:
        builder = initializer_registry.get(kind)
    except UnknownComponentError as error:
        raise DatasetError(str(error)) from None
    return builder(data, num_clusters=num_clusters, seed=seed)


def category_configuration(data: ScenarioData) -> ClusterConfiguration:
    """The ground-truth clustering: one cluster per data category.

    Only defined for scenarios with per-peer data categories; this is the
    "good cluster configuration" from which the Section 4.2 maintenance
    experiments start.
    """
    configuration = ClusterConfiguration.with_slots(len(data.peer_ids()))
    slots = configuration.cluster_ids()
    categories = sorted({category for category in data.data_categories.values() if category})
    if not categories:
        raise DatasetError("category_configuration requires per-peer data categories")
    slot_of_category = {category: slots[index] for index, category in enumerate(categories)}
    for peer_id in data.peer_ids():
        category = data.data_categories.get(peer_id)
        if category is None:
            raise DatasetError(f"peer {peer_id!r} has no data category")
        configuration.assign(peer_id, slot_of_category[category])
    return configuration


@register_initializer("category", aliases=("ground-truth",))
def _initial_category(
    data: ScenarioData, *, num_clusters: Optional[int] = None, seed: int = 11
) -> ClusterConfiguration:
    """The ground-truth clustering (one cluster per data category)."""
    return category_configuration(data)


__all__.append("category_configuration")
