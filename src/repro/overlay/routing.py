"""Query routing over the clustered overlay.

The paper assumes that every result returned to a peer is annotated with the
``cid`` of the cluster that provided it, and defines *cluster recall* as the
fraction of the results returned by a cluster relative to all results
returned for the query.  How many clusters a query reaches depends on the
routing algorithm; when a query reaches every cluster, cluster recall is
exact.

Two routers are provided:

* :class:`BroadcastRouter` — the query is evaluated against every non-empty
  cluster (exact cluster recall; the setting under which the paper's
  definitions coincide with the global recall model).
* :class:`ProbeKRouter` — the query only reaches the issuer's own cluster
  plus the ``k - 1`` largest other clusters, modelling a cheaper routing
  scheme; observed cluster recall then under-estimates remote clusters,
  which is exactly the approximation the local strategies have to live with.

Both routers return :class:`AnnotatedResult` records and publish query /
result messages to an optional :class:`~repro.overlay.messages.MessageBus`.

:meth:`QueryRouter.route` evaluates one query at a time — the observation
path of :class:`~repro.overlay.simulator.OverlaySimulator`.  For serving
whole workloads, :class:`~repro.traffic.simulator.TrafficSimulator` reuses
only :meth:`QueryRouter.target_clusters` (once per issuer cluster when the
router declares :attr:`QueryRouter.cluster_invariant`) and resolves the
providers vectorised; custom routers work on both paths automatically.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.queries import Query
from repro.overlay.messages import MessageBus, QueryMessage, ResultMessage
from repro.peers.configuration import ClusterConfiguration
from repro.peers.network import PeerNetwork
from repro.registry import register_router, router_registry

__all__ = [
    "AnnotatedResult",
    "QueryRouter",
    "BroadcastRouter",
    "ProbeKRouter",
    "build_router",
]

PeerId = Hashable
ClusterId = Hashable


@dataclass(frozen=True)
class AnnotatedResult:
    """Results for one query served by one peer, annotated with the providing cluster's cid."""

    query: Query
    issuer: PeerId
    provider: PeerId
    cluster_id: ClusterId
    result_count: int


class QueryRouter:
    """Base class for routing a query from its issuer over the clustered overlay."""

    #: Whether :meth:`target_clusters` depends only on the issuer's *cluster*
    #: (not on the issuer's identity or the query).  Both built-in routers
    #: qualify; the traffic simulator uses the flag to collapse its routing
    #: tables to one row per cluster instead of one per peer.
    cluster_invariant = False

    def __init__(self, network: PeerNetwork, bus: Optional[MessageBus] = None) -> None:
        self.network = network
        self.bus = bus
        self._peer_rank: Dict[PeerId, int] = {}

    def _ordered_members(self, members: List[PeerId]) -> List[PeerId]:
        """Sort *members* by the network's stable peer order without repr calls.

        ``network.peer_ids()`` is already repr-sorted, so ranking by its
        cached index array reproduces the historical ``sorted(members,
        key=repr)`` order while costing one dict lookup per member instead of
        a repr per comparison (this loop runs once per cluster per query).
        The rank cache rebuilds lazily when it meets a member it has never
        seen (churn); members missing from the network fall back to the repr
        sort.
        """
        rank = self._peer_rank
        try:
            return sorted(members, key=rank.__getitem__)
        except KeyError:
            self._peer_rank = rank = {
                peer_id: position for position, peer_id in enumerate(self.network.peer_ids())
            }
            try:
                return sorted(members, key=rank.__getitem__)
            except KeyError:
                return sorted(members, key=repr)

    def target_clusters(
        self, issuer: PeerId, configuration: ClusterConfiguration
    ) -> List[ClusterId]:
        """The clusters the query will reach (routing policy); implemented by subclasses."""
        raise NotImplementedError

    def route(
        self, issuer: PeerId, query: Query, configuration: ClusterConfiguration
    ) -> List[AnnotatedResult]:
        """Evaluate *query* issued by *issuer* and return the annotated results."""
        results: List[AnnotatedResult] = []
        for cluster_id in self.target_clusters(issuer, configuration):
            members = configuration.members(cluster_id)
            if self.bus is not None:
                self.bus.publish(
                    QueryMessage(
                        sender=issuer,
                        receiver=cluster_id,
                        query=query,
                        target_cluster=cluster_id,
                    )
                )
            for provider in self._ordered_members(members):
                count = self.network.peer(provider).result_count(query)
                if count == 0:
                    continue
                results.append(
                    AnnotatedResult(
                        query=query,
                        issuer=issuer,
                        provider=provider,
                        cluster_id=cluster_id,
                        result_count=count,
                    )
                )
                if self.bus is not None:
                    self.bus.publish(
                        ResultMessage(
                            sender=provider,
                            receiver=issuer,
                            query=query,
                            cluster_id=cluster_id,
                            result_count=count,
                        )
                    )
        return results

    @staticmethod
    def cluster_recall(results: List[AnnotatedResult], cluster_id: ClusterId) -> float:
        """Observed cluster recall: share of the returned results provided by *cluster_id*."""
        total = sum(result.result_count for result in results)
        if total == 0:
            return 0.0
        from_cluster = sum(
            result.result_count for result in results if result.cluster_id == cluster_id
        )
        return from_cluster / total


@register_router("broadcast")
class BroadcastRouter(QueryRouter):
    """Route every query to every non-empty cluster (exact cluster recall)."""

    cluster_invariant = True

    def target_clusters(
        self, issuer: PeerId, configuration: ClusterConfiguration
    ) -> List[ClusterId]:
        return configuration.nonempty_clusters()


@register_router("probe-k", aliases=("probe",))
class ProbeKRouter(QueryRouter):
    """Route a query to the issuer's cluster plus the ``k - 1`` largest other clusters."""

    cluster_invariant = True

    def __init__(
        self, network: PeerNetwork, k: int, bus: Optional[MessageBus] = None
    ) -> None:
        super().__init__(network, bus)
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        self.k = k

    def target_clusters(
        self, issuer: PeerId, configuration: ClusterConfiguration
    ) -> List[ClusterId]:
        own_cluster = configuration.cluster_of(issuer)
        others = [
            cluster_id
            for cluster_id in configuration.nonempty_clusters()
            if cluster_id != own_cluster
        ]
        others.sort(key=lambda cluster_id: (-configuration.size(cluster_id), repr(cluster_id)))
        return [own_cluster] + others[: self.k - 1]


def build_router(
    name: str,
    network: PeerNetwork,
    *,
    bus: Optional[MessageBus] = None,
    **kwargs: object,
) -> QueryRouter:
    """Construct a query router by its registered *name*.

    Built-ins: ``broadcast`` and ``probe-k`` (the latter takes ``k``); new
    routers plug in through :func:`repro.registry.register_router`.
    """
    return router_registry.create(name, network, bus=bus, **kwargs)
