"""Overlay substrate: topologies, messages, routing and the period simulator."""

from repro.overlay.messages import (
    GainReportMessage,
    GrantMessage,
    Message,
    MessageBus,
    QueryMessage,
    RelocationRequestMessage,
    ResultMessage,
)
from repro.overlay.routing import AnnotatedResult, BroadcastRouter, ProbeKRouter, QueryRouter
from repro.overlay.simulator import OverlaySimulator, PeriodReport
from repro.overlay.topology import (
    ClusterTopology,
    FullMeshTopology,
    RingTopology,
    StructuredTopology,
)

__all__ = [
    "Message",
    "MessageBus",
    "QueryMessage",
    "ResultMessage",
    "GainReportMessage",
    "RelocationRequestMessage",
    "GrantMessage",
    "QueryRouter",
    "BroadcastRouter",
    "ProbeKRouter",
    "AnnotatedResult",
    "OverlaySimulator",
    "PeriodReport",
    "ClusterTopology",
    "FullMeshTopology",
    "RingTopology",
    "StructuredTopology",
]
