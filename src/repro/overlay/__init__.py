"""Overlay substrate: topologies, messages, routing and the period simulator.

The routers defined here serve two consumers: the per-query observation
path in this package (:class:`OverlaySimulator`, one Python call per routed
query, feeding :class:`~repro.peers.statistics.PeerStatistics`) and the
batched replay path in :mod:`repro.traffic`, which resolves whole event
batches against a router's :meth:`~repro.overlay.routing.QueryRouter.target_clusters`
through recall-matrix products.  Both paths share the message accounting
conventions of :class:`MessageBus`, so their totals agree query for query.
"""

from repro.overlay.messages import (
    GainReportMessage,
    GrantMessage,
    Message,
    MessageBus,
    QueryMessage,
    RelocationRequestMessage,
    ResultMessage,
)
from repro.overlay.routing import AnnotatedResult, BroadcastRouter, ProbeKRouter, QueryRouter
from repro.overlay.simulator import OverlaySimulator, PeriodReport
from repro.overlay.topology import (
    ClusterTopology,
    FullMeshTopology,
    RingTopology,
    StructuredTopology,
)

__all__ = [
    "Message",
    "MessageBus",
    "QueryMessage",
    "ResultMessage",
    "GainReportMessage",
    "RelocationRequestMessage",
    "GrantMessage",
    "QueryRouter",
    "BroadcastRouter",
    "ProbeKRouter",
    "AnnotatedResult",
    "OverlaySimulator",
    "PeriodReport",
    "ClusterTopology",
    "FullMeshTopology",
    "RingTopology",
    "StructuredTopology",
]
