"""Period simulation: evaluate every peer's workload and collect observations.

The relocation strategies are *periodic*: over a period ``T`` each peer
observes where the results of its queries come from (and, symmetrically,
which clusters it serves), then re-evaluates its cluster membership.  The
:class:`OverlaySimulator` runs one such period: it routes every occurrence of
every peer's local workload through a :class:`~repro.overlay.routing.QueryRouter`
and feeds the per-peer :class:`~repro.peers.statistics.PeerStatistics`.

At experiment scale the strategies are usually evaluated directly against the
exact cost model (the broadcast router makes the observed statistics equal to
the exact quantities anyway); the simulator exists so that the observation-
driven path of the paper can be exercised end-to-end and compared with the
oracle path (there is a dedicated integration test and an ablation bench).

This is the *reference* path: one Python call per routed query.  For load
studies — hundreds of thousands of events with latency/bandwidth/recall
distributions — use the batched :class:`~repro.traffic.simulator.TrafficSimulator`,
which reproduces this simulator's message accounting and (under a broadcast
router and a ``replay`` workload) its observed recall exactly, orders of
magnitude faster.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.overlay.messages import MessageBus
from repro.overlay.routing import BroadcastRouter, QueryRouter
from repro.peers.configuration import ClusterConfiguration
from repro.peers.network import PeerNetwork
from repro.peers.statistics import PeerStatistics

__all__ = ["PeriodReport", "OverlaySimulator"]

PeerId = Hashable
ClusterId = Hashable


@dataclass
class PeriodReport:
    """Summary of one simulated observation period ``T``."""

    queries_routed: int = 0
    results_returned: int = 0
    messages: Dict[str, int] = field(default_factory=dict)

    def __repr__(self) -> str:
        return (
            f"PeriodReport(queries={self.queries_routed}, results={self.results_returned}, "
            f"messages={sum(self.messages.values())})"
        )


class OverlaySimulator:
    """Runs observation periods over a network and a cluster configuration."""

    def __init__(
        self,
        network: PeerNetwork,
        configuration: ClusterConfiguration,
        *,
        router: Optional[QueryRouter] = None,
        bus: Optional[MessageBus] = None,
    ) -> None:
        self.network = network
        self.configuration = configuration
        self.bus = bus if bus is not None else MessageBus()
        self.router = router if router is not None else BroadcastRouter(network, self.bus)
        if self.router.bus is None:
            # Attach the simulator's bus so a caller-supplied router is still accounted.
            self.router.bus = self.bus
        self.statistics: Dict[PeerId, PeerStatistics] = {
            peer_id: PeerStatistics() for peer_id in network.peer_ids()
        }

    def reset_statistics(self) -> None:
        """Start a fresh observation period for every peer."""
        for peer_id in self.network.peer_ids():
            self.statistics.setdefault(peer_id, PeerStatistics()).reset()

    def statistics_for(self, peer_id: PeerId) -> PeerStatistics:
        """The observation trackers of *peer_id* (created on demand for new peers)."""
        return self.statistics.setdefault(peer_id, PeerStatistics())

    def run_period(self) -> PeriodReport:
        """Route every occurrence of every peer's local workload once.

        Each routed query updates the issuer's cluster-recall tracker and each
        provider's contribution tracker (keyed by the *issuer's* cluster,
        which is what Eq. 6 aggregates over).
        """
        report = PeriodReport()
        self.bus.reset()
        for issuer in self.network.peer_ids():
            peer = self.network.peer(issuer)
            issuer_cluster = self.configuration.cluster_of(issuer)
            issuer_stats = self.statistics_for(issuer)
            for query, count in peer.workload.items():
                for _occurrence in range(count):
                    results = self.router.route(issuer, query, self.configuration)
                    issuer_stats.recall_tracker.record_query()
                    report.queries_routed += 1
                    for result in results:
                        issuer_stats.recall_tracker.record(
                            query, result.cluster_id, result.result_count
                        )
                        provider_stats = self.statistics_for(result.provider)
                        provider_stats.contribution_tracker.record_served(
                            issuer_cluster, result.result_count
                        )
                        report.results_returned += result.result_count
        report.messages = self.bus.snapshot()
        return report

    def __repr__(self) -> str:
        return f"OverlaySimulator(peers={len(self.network)}, router={type(self.router).__name__})"
