"""Intra-cluster topologies.

The paper leaves the internal organisation of a cluster abstract and only
requires that the membership cost function ``theta`` reflects it: a fully
connected cluster gives a linear ``theta``, a structured (DHT-like) cluster a
logarithmic one.  The overlay simulator additionally needs a notion of how
many hops a query travels inside a cluster, so each topology exposes both:

* :meth:`ClusterTopology.theta` — the matching membership cost function,
* :meth:`ClusterTopology.lookup_hops` — expected intra-cluster hops to reach
  all members (used for the message accounting of the simulator and for the
  per-query hop/latency charges of :mod:`repro.traffic`),
* :meth:`ClusterTopology.maintenance_messages` — messages needed per
  join/leave event.
"""

from __future__ import annotations

import math

from repro.core.theta import LinearTheta, LogarithmicTheta, ThetaFunction

__all__ = ["ClusterTopology", "FullMeshTopology", "RingTopology", "StructuredTopology"]


class ClusterTopology:
    """Base class for intra-cluster topologies."""

    name = "topology"

    def theta(self) -> ThetaFunction:
        """The membership cost function induced by this topology."""
        raise NotImplementedError

    def lookup_hops(self, size: int) -> int:
        """Hops needed to deliver a query to every member of a cluster of *size* peers."""
        raise NotImplementedError

    def maintenance_messages(self, size: int) -> int:
        """Messages exchanged when a peer joins or leaves a cluster of *size* peers."""
        raise NotImplementedError

    def _validate(self, size: int) -> None:
        if size < 0:
            raise ValueError(f"cluster size must be non-negative, got {size}")

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class FullMeshTopology(ClusterTopology):
    """All peers in the cluster are directly connected (the paper's evaluation setting)."""

    name = "full-mesh"

    def theta(self) -> ThetaFunction:
        return LinearTheta()

    def lookup_hops(self, size: int) -> int:
        self._validate(size)
        # One hop from the issuer (or the entry point) to each other member.
        return max(size - 1, 0)

    def maintenance_messages(self, size: int) -> int:
        self._validate(size)
        # The joining/leaving peer must (dis)connect from every other member.
        return max(size - 1, 0)


class RingTopology(ClusterTopology):
    """Members form a ring; queries are forwarded around it."""

    name = "ring"

    def theta(self) -> ThetaFunction:
        return LinearTheta(slope=0.5)

    def lookup_hops(self, size: int) -> int:
        self._validate(size)
        return max(size - 1, 0)

    def maintenance_messages(self, size: int) -> int:
        self._validate(size)
        # Joining a ring only touches the two neighbours.
        return min(size, 2)


class StructuredTopology(ClusterTopology):
    """A structured (DHT-like) intra-cluster overlay with logarithmic routing."""

    name = "structured"

    def theta(self) -> ThetaFunction:
        return LogarithmicTheta()

    def lookup_hops(self, size: int) -> int:
        self._validate(size)
        if size <= 1:
            return 0
        return int(math.ceil(math.log2(size)))

    def maintenance_messages(self, size: int) -> int:
        self._validate(size)
        if size <= 1:
            return 0
        return int(math.ceil(math.log2(size))) * 2
