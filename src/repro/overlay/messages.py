"""Protocol messages and message accounting.

Two parts of the system exchange messages:

* the **query layer** (queries broadcast to clusters and their annotated
  results coming back), and
* the **reformulation protocol** (gain reports to representatives,
  relocation requests among representatives, grant notifications).

The paper's motivation for local maintenance is precisely communication
cost, so :class:`MessageBus` records every message by type.  The simulator
and the protocol both publish to a bus, and the experiment layer reads the
per-type counters when reporting overheads (an ablation bench compares the
protocol's traffic with the global re-clustering baseline).

The bus counts one :class:`QueryMessage` per reached cluster and one
:class:`ResultMessage` per provider holding results.  The batched
:class:`~repro.traffic.simulator.TrafficSimulator` reproduces exactly these
conventions vectorised (its totals match a :meth:`MessageBus.snapshot` of
the same replay), so message studies can move between the two paths freely.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "Message",
    "QueryMessage",
    "ResultMessage",
    "GainReportMessage",
    "RelocationRequestMessage",
    "GrantMessage",
    "MessageBus",
]

PeerId = Hashable
ClusterId = Hashable


@dataclass(frozen=True)
class Message:
    """Base class for all messages; carries the sender and receiver identifiers."""

    sender: object
    receiver: object

    @property
    def kind(self) -> str:
        """Short type name used for accounting."""
        return type(self).__name__


@dataclass(frozen=True)
class QueryMessage(Message):
    """A query sent from its issuer to (a representative of) a cluster."""

    query: object = None
    target_cluster: Optional[ClusterId] = None


@dataclass(frozen=True)
class ResultMessage(Message):
    """Query results returned to the issuer, annotated with the providing cluster's cid."""

    query: object = None
    cluster_id: Optional[ClusterId] = None
    result_count: int = 0


@dataclass(frozen=True)
class GainReportMessage(Message):
    """Phase-1 message: a peer reports its gain to its cluster representative."""

    gain: float = 0.0
    target_cluster: Optional[ClusterId] = None


@dataclass(frozen=True)
class RelocationRequestMessage(Message):
    """Phase-1 message: a representative advertises its best relocation request to the others."""

    source_cluster: Optional[ClusterId] = None
    target_cluster: Optional[ClusterId] = None
    gain: float = 0.0
    peer_id: Optional[PeerId] = None


@dataclass(frozen=True)
class GrantMessage(Message):
    """Phase-2 message: two representatives agree to satisfy a relocation request."""

    peer_id: Optional[PeerId] = None
    source_cluster: Optional[ClusterId] = None
    target_cluster: Optional[ClusterId] = None


@dataclass
class MessageBus:
    """Counts every message published to it, by message type.

    The bus optionally retains the full message log (disabled by default at
    experiment scale to keep memory bounded).
    """

    keep_log: bool = False
    counts: Dict[str, int] = field(default_factory=dict)
    log: List[Message] = field(default_factory=list)

    def publish(self, message: Message) -> None:
        """Record *message*."""
        self.counts[message.kind] = self.counts.get(message.kind, 0) + 1
        if self.keep_log:
            self.log.append(message)

    def count(self, kind: str) -> int:
        """Number of messages of the given type name recorded so far."""
        return self.counts.get(kind, 0)

    def total(self) -> int:
        """Total number of messages recorded."""
        return sum(self.counts.values())

    def reset(self) -> None:
        """Clear all counters and the log."""
        self.counts.clear()
        self.log.clear()

    def snapshot(self) -> Dict[str, int]:
        """Copy of the per-type counters."""
        return dict(self.counts)

    def __repr__(self) -> str:
        return f"MessageBus(total={self.total()}, kinds={sorted(self.counts)})"
