"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library-specific failures with a single ``except`` clause
while letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """Raised when a cluster configuration or experiment setup is invalid.

    Examples include assigning a peer to a cluster that does not exist,
    assigning the same peer twice, or building a network with duplicate
    peer identifiers.
    """


class UnknownPeerError(ReproError):
    """Raised when a peer identifier is not part of the network."""

    def __init__(self, peer_id: object) -> None:
        super().__init__(f"unknown peer: {peer_id!r}")
        self.peer_id = peer_id


class UnknownClusterError(ReproError):
    """Raised when a cluster identifier is not part of the configuration."""

    def __init__(self, cluster_id: object) -> None:
        super().__init__(f"unknown cluster: {cluster_id!r}")
        self.cluster_id = cluster_id


class ProtocolError(ReproError):
    """Raised when the reformulation protocol is driven incorrectly.

    For example serving relocation requests before the gathering phase has
    completed, or granting a request that violates the lock rule.
    """


class DatasetError(ReproError):
    """Raised when synthetic dataset generation parameters are invalid."""


class StrategyError(ReproError):
    """Raised when a relocation strategy is misconfigured or misused."""


class TaskTimeoutError(ReproError):
    """Raised inside a sweep worker when a task exceeds its time budget.

    Raised from the ``SIGALRM`` handler armed by
    :func:`repro.sweep.faults.task_timeout_guard`, so the task fails in
    place (and becomes retryable) instead of wedging its worker.
    """

    def __init__(self, seconds: float) -> None:
        super().__init__(f"task exceeded its {seconds:g}s time budget")
        self.seconds = seconds


class InjectedFaultError(ReproError):
    """Raised by a :class:`repro.sweep.faults.FaultPlan` rule firing.

    Marks a failure as deliberately injected by the chaos harness so
    failure records can distinguish it from organic errors.
    """


class RegistryError(ReproError, ValueError):
    """Base class for component-registry failures.

    Derives from :class:`ValueError` as well so that the pre-registry factory
    entry points (``theta_from_name``, ``build_strategy``) keep raising a
    ``ValueError`` subclass for unknown names, as their callers expect.
    """


class UnknownComponentError(RegistryError):
    """Raised when a name is not registered; the message lists what is."""

    def __init__(self, kind: str, name: object, known: "list[str]") -> None:
        listing = ", ".join(sorted(known)) if known else "(none registered)"
        super().__init__(f"unknown {kind} {name!r}; known: {listing}")
        self.kind = kind
        self.name = name
        self.known = sorted(known)


class DuplicateComponentError(RegistryError):
    """Raised when a name (or alias) is registered twice without ``replace=True``."""

    def __init__(self, kind: str, name: str) -> None:
        super().__init__(
            f"{kind} {name!r} is already registered; "
            "pass replace=True to override it deliberately"
        )
        self.kind = kind
        self.name = name
