"""The batched, vectorised query-traffic simulator.

:class:`TrafficSimulator` replays a time-stamped query-event stream against
a clustered overlay and measures what the clustering is actually worth under
load: per-query latency, hops, bandwidth and recall distributions.

Design
------

**Heap-ordered event loop.**  Workload generators emit one or more sorted
:class:`~repro.traffic.events.QueryEventStream`\\ s (e.g. a base arrival
process plus a flash-crowd burst).  The loop keeps the head timestamp of
every live stream in a heap and repeatedly drains the earliest stream's
contiguous run of events up to the next other-stream head (ties broken by
stream order), collecting runs until a batch is full — so events are
processed in exact global time order without ever merging streams up front.

**Batched routing.**  Per batch, events are grouped by issuer cluster (for
routers whose targets depend only on the issuer's cluster — both built-ins —
the group table is one row per cluster; third-party routers fall back to one
row per issuer).  Providers are resolved from column slices of the recall
matrix products ``R @ M`` (per-query recall / provider counts / result items
per cluster), so a whole batch reduces to a handful of fancy-indexed numpy
gathers; no per-provider Python loop survives on the hot path.

**Accounting.**  Messages and bytes follow the legacy
:class:`~repro.overlay.messages.MessageBus` convention — one query message
per reached cluster, one result message per provider holding results — with
latency and bandwidth charged through a pluggable
:class:`~repro.traffic.link.LinkModel`.  Every served event lands in a
:class:`~repro.traffic.events.TrafficLog` whose per-issuer/per-query indexes
stay in lockstep with the append stream, and the per-(issuer, cluster)
observed recall of the paper's Eq. 6 observation model is accumulated as an
event-count matrix multiplied back through ``R @ M`` at the end.
"""

from __future__ import annotations

import heapq
import time
from collections.abc import Hashable
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.events import (
    QUERY_ROUTED,
    TRAFFIC_SUMMARY,
    EventHooks,
    QueryRoutedEvent,
    TrafficSummaryEvent,
)
from repro.overlay.routing import BroadcastRouter, QueryRouter
from repro.overlay.topology import ClusterTopology, FullMeshTopology
from repro.peers.configuration import ClusterConfiguration
from repro.peers.network import PeerNetwork
from repro.traffic.events import QueryEventStream, TrafficLog
from repro.traffic.link import LinkModel
from repro.traffic.report import TrafficReport, empty_distribution
from repro.traffic.workloads import (
    WorkloadContext,
    WorkloadGenerator,
    build_workload,
)
from repro.analysis.reporting import distribution_summary

__all__ = ["TrafficSimulator"]

PeerId = Hashable

#: Default number of events resolved per vectorised routing step.
DEFAULT_BATCH_SIZE = 8192


class _RoutingTables:
    """Per-run vectorised routing state: group tables over the recall matrix.

    One group per issuer cluster (cluster-invariant routers) or per issuer
    (fallback); each group row aggregates the ``R @ M`` column slice of the
    clusters the router targets for that group.
    """

    def __init__(
        self,
        network: PeerNetwork,
        configuration: ClusterConfiguration,
        router: QueryRouter,
        link: LinkModel,
        topology: ClusterTopology,
        context: WorkloadContext,
    ) -> None:
        peers = context.peers
        queries = context.queries
        model = network.recall_model()
        # R: per-distinct-query result counts / recall over the peer order.
        counts = np.empty((len(queries), len(peers)), dtype=np.float64)
        for row, query in enumerate(queries):
            for column, peer_id in enumerate(peers):
                counts[row, column] = model.result(query, peer_id)
        totals = counts.sum(axis=1)
        recall = np.divide(
            counts,
            totals[:, None],
            out=np.zeros_like(counts),
            where=totals[:, None] > 0,
        )
        membership, cluster_order = configuration.membership_matrix(peers)
        self.cluster_order = cluster_order
        column_of = {cluster_id: column for column, cluster_id in enumerate(cluster_order)}
        # Q x C products: per-cluster recall, provider count and result items.
        cluster_recall = recall @ membership
        cluster_providers = (counts > 0).astype(np.float64) @ membership
        cluster_items = counts @ membership
        sizes = membership.sum(axis=0).astype(int)
        intra_hops = np.array(
            [topology.lookup_hops(int(size)) for size in sizes], dtype=np.float64
        )

        # Group the issuers: by cluster when the router's targets only depend
        # on the issuer's cluster, by issuer otherwise.
        invariant = bool(getattr(router, "cluster_invariant", False))
        group_of = np.empty(len(peers), dtype=np.int64)
        group_columns: List[np.ndarray] = []
        key_to_group: Dict[object, int] = {}
        for row, peer_id in enumerate(peers):
            key: object
            if invariant:
                try:
                    key = ("cluster", configuration.cluster_of(peer_id))
                except ConfigurationError:
                    key = ("peer", row)  # multi-cluster member: no shared key
            else:
                key = ("peer", row)
            group = key_to_group.get(key)
            if group is None:
                targets = router.target_clusters(peer_id, configuration)
                columns = np.array(
                    [column_of[cluster_id] for cluster_id in targets], dtype=np.int64
                )
                group = len(group_columns)
                key_to_group[key] = group
                group_columns.append(columns)
            group_of[row] = group
        self.group_of = group_of

        num_groups = len(group_columns)
        num_queries = len(queries)
        self.recall_table = np.zeros((num_groups, num_queries))
        self.provider_table = np.zeros((num_groups, num_queries))
        self.item_table = np.zeros((num_groups, num_queries))
        self.query_messages = np.zeros(num_groups)
        self.hops = np.zeros(num_groups)
        self.base_latency_ms = np.zeros(num_groups)
        self.target_mask = np.zeros((num_groups, len(cluster_order)))
        for group, columns in enumerate(group_columns):
            if columns.size == 0:
                continue
            self.recall_table[group] = cluster_recall[:, columns].sum(axis=1)
            self.provider_table[group] = cluster_providers[:, columns].sum(axis=1)
            self.item_table[group] = cluster_items[:, columns].sum(axis=1)
            self.query_messages[group] = columns.size
            # Reaching cluster c costs one hop to its entry point plus the
            # intra-cluster fan-out; the fan-out happens in parallel across
            # clusters, so latency follows the slowest branch's round trip.
            self.hops[group] = (1.0 + intra_hops[columns]).sum()
            self.base_latency_ms[group] = link.hop_latency_ms * (
                2.0 + float(intra_hops[columns].max())
            )
            self.target_mask[group, columns] = 1.0
        self.cluster_recall = cluster_recall


class TrafficSimulator:
    """Replays query-event streams against a clustered overlay, batched.

    Parameters
    ----------
    network, configuration:
        The overlay to serve traffic against; the configuration is read-only
        during a run (routing tables are built once per :meth:`run_streams`).
    router:
        A :class:`~repro.overlay.routing.QueryRouter` instance; broadcast by
        default.
    link:
        A :class:`~repro.traffic.link.LinkModel`, mapping or ``None``.
    topology:
        The intra-cluster topology charged for fan-out hops (full mesh by
        default, the paper's evaluation setting).
    hooks:
        Event hub receiving ``query_routed`` (per batch) and
        ``traffic_summary`` (once per run).
    batch_size:
        Events resolved per vectorised step; results are independent of it.
    keep_log:
        Maintain the indexed :class:`~repro.traffic.events.TrafficLog`
        (disable for maximum-throughput benchmarking).
    """

    def __init__(
        self,
        network: PeerNetwork,
        configuration: ClusterConfiguration,
        *,
        router: Optional[QueryRouter] = None,
        link: Optional[Union[LinkModel, Dict[str, Any]]] = None,
        topology: Optional[ClusterTopology] = None,
        hooks: Optional[EventHooks] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        keep_log: bool = True,
        histogram_bins: int = 20,
    ) -> None:
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be at least 1, got {batch_size}")
        self.network = network
        self.configuration = configuration
        self.router = router if router is not None else BroadcastRouter(network)
        self.link = LinkModel.from_options(link)
        self.topology = topology if topology is not None else FullMeshTopology()
        self.hooks = hooks if hooks is not None else EventHooks()
        self.batch_size = int(batch_size)
        self.keep_log = keep_log
        self.histogram_bins = int(histogram_bins)
        #: The indexed log of the most recent run (when ``keep_log``).
        self.log: Optional[TrafficLog] = None

    # -- entry points ----------------------------------------------------------------

    def run(
        self,
        *,
        num_events: int = 10_000,
        workload: Union[str, WorkloadGenerator] = "uniform",
        workload_options: Optional[Dict[str, Any]] = None,
        seed: int = 0,
        horizon: float = 1.0,
    ) -> TrafficReport:
        """Generate a workload and replay it (the one-call entry point).

        *workload* is a registered generator name (``uniform`` / ``zipf`` /
        ``flash-crowd`` / ``replay``) or an instance; *seed* makes the run
        reproducible — identical seeds yield byte-identical reports.
        """
        if isinstance(workload, WorkloadGenerator):
            generator = workload
            if workload_options:
                raise ConfigurationError(
                    "workload_options cannot be combined with a generator instance"
                )
        else:
            generator = build_workload(workload, **dict(workload_options or {}))
        context = WorkloadContext.from_network(
            self.network, num_events=num_events, horizon=horizon, seed=seed
        )
        streams = generator.streams(context)
        return self.run_streams(
            streams, context, workload_label=getattr(generator, "name", "custom")
        )

    def run_streams(
        self,
        streams: Sequence[QueryEventStream],
        context: WorkloadContext,
        *,
        workload_label: str = "events",
    ) -> TrafficReport:
        """Replay pre-built *streams* (sharing *context*'s index space)."""
        started = time.perf_counter()
        tables = _RoutingTables(
            self.network,
            self.configuration,
            self.router,
            self.link,
            self.topology,
            context,
        )
        log = TrafficLog() if self.keep_log else None
        self.log = log
        num_peers = len(context.peers)
        num_queries = len(context.queries)
        event_matrix = np.zeros((num_peers, num_queries), dtype=np.int64)
        latency_chunks: List[np.ndarray] = []
        hops_chunks: List[np.ndarray] = []
        bandwidth_chunks: List[np.ndarray] = []
        recall_chunks: List[np.ndarray] = []
        total_events = 0
        total_query_messages = 0
        total_result_messages = 0
        total_result_items = 0
        batches = 0

        link = self.link
        for times, issuers, queries in self._drain_batches(streams):
            groups = tables.group_of[issuers]
            recall_e = tables.recall_table[groups, queries]
            providers_e = tables.provider_table[groups, queries]
            items_e = tables.item_table[groups, queries]
            messages_e = tables.query_messages[groups]
            hops_e = tables.hops[groups]
            latency_e = tables.base_latency_ms[groups] + link.result_latency_ms * items_e
            bandwidth_e = (
                link.query_bytes * messages_e
                + link.result_message_bytes * providers_e
                + link.result_item_bytes * items_e
            )
            np.add.at(event_matrix, (issuers, queries), 1)
            if log is not None:
                log.append_batch(times, issuers, queries)
            latency_chunks.append(latency_e)
            hops_chunks.append(hops_e)
            bandwidth_chunks.append(bandwidth_e)
            recall_chunks.append(recall_e)
            batch_query_messages = int(round(messages_e.sum()))
            batch_result_messages = int(round(providers_e.sum()))
            batch_result_items = int(round(items_e.sum()))
            total_events += times.size
            total_query_messages += batch_query_messages
            total_result_messages += batch_result_messages
            total_result_items += batch_result_items
            self.hooks.emit(
                QUERY_ROUTED,
                QueryRoutedEvent(
                    batch_index=batches,
                    events=int(times.size),
                    time_start=float(times[0]),
                    time_end=float(times[-1]),
                    query_messages=batch_query_messages,
                    result_messages=batch_result_messages,
                    result_items=batch_result_items,
                ),
            )
            batches += 1

        def summarise(chunks: List[np.ndarray]):
            if not chunks:
                return empty_distribution()
            return distribution_summary(
                np.concatenate(chunks), bins=self.histogram_bins
            )

        bandwidth = summarise(bandwidth_chunks)
        issuer_recall_sums = (
            event_matrix.astype(np.float64) @ tables.cluster_recall
        ) * tables.target_mask[tables.group_of]
        report = TrafficReport(
            events=total_events,
            horizon=context.horizon,
            router=type(self.router).__name__,
            workload=workload_label,
            batches=batches,
            latency_ms=summarise(latency_chunks),
            hops=summarise(hops_chunks),
            bandwidth_bytes=bandwidth,
            recall=summarise(recall_chunks),
            query_messages=total_query_messages,
            result_messages=total_result_messages,
            result_items=total_result_items,
            total_bandwidth_bytes=float(
                sum(float(chunk.sum()) for chunk in bandwidth_chunks)
            ),
            cluster_order=list(tables.cluster_order),
            peer_order=list(context.peers),
            issuer_recall_sums=issuer_recall_sums,
            issuer_event_counts=event_matrix.sum(axis=1),
            wall_seconds=time.perf_counter() - started,
        )
        self.hooks.emit(TRAFFIC_SUMMARY, TrafficSummaryEvent(report=report))
        return report

    # -- the heap-ordered event loop --------------------------------------------------

    def _drain_batches(
        self, streams: Sequence[QueryEventStream]
    ) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Drain *streams* in global time order, yielding batched event arrays.

        A heap keyed by ``(head timestamp, stream order)`` always knows which
        stream owns the next event; the owner's contiguous run up to the next
        other-stream head (equal timestamps resolve by stream order) is taken
        in one slice.  Runs accumulate until at least ``batch_size`` events
        are pending, then flush as one batch — the vectorised step never sees
        the stream structure, only time-ordered arrays.
        """
        cursors = [0] * len(streams)
        heap: List[Tuple[float, int]] = [
            (float(stream.times[0]), order)
            for order, stream in enumerate(streams)
            if len(stream)
        ]
        heapq.heapify(heap)
        pending: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        pending_count = 0
        while heap:
            _, order = heapq.heappop(heap)
            stream = streams[order]
            start = cursors[order]
            if heap:
                limit_time, limit_order = heap[0]
                side = "right" if order < limit_order else "left"
                end = int(np.searchsorted(stream.times, limit_time, side=side))
            else:
                end = len(stream)
            end = min(max(end, start + 1), len(stream), start + self.batch_size)
            pending.append(
                (
                    stream.times[start:end],
                    stream.issuers[start:end],
                    stream.queries[start:end],
                )
            )
            pending_count += end - start
            cursors[order] = end
            if end < len(stream):
                heapq.heappush(heap, (float(stream.times[end]), order))
            if pending_count >= self.batch_size:
                yield self._flush(pending)
                pending, pending_count = [], 0
        if pending:
            yield self._flush(pending)

    @staticmethod
    def _flush(
        pending: List[Tuple[np.ndarray, np.ndarray, np.ndarray]]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if len(pending) == 1:
            return pending[0]
        return (
            np.concatenate([piece[0] for piece in pending]),
            np.concatenate([piece[1] for piece in pending]),
            np.concatenate([piece[2] for piece in pending]),
        )

    def __repr__(self) -> str:
        return (
            f"TrafficSimulator(peers={len(self.network)}, "
            f"router={type(self.router).__name__}, batch_size={self.batch_size})"
        )
