"""The pluggable link model: what a hop and a byte cost.

The paper reports communication overhead in messages; a traffic simulator
additionally needs to charge *time* and *bytes* per message so latency and
bandwidth become first-class metrics.  :class:`LinkModel` holds those unit
costs.  It is deliberately deterministic (no jitter): traffic runs must be
byte-identical across worker counts, so all randomness lives in the workload
generators, never in the links.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Mapping, Optional, Union

from repro.errors import ConfigurationError

__all__ = ["LinkModel"]


@dataclass(frozen=True)
class LinkModel:
    """Per-hop latency and per-message byte costs of the overlay links."""

    #: One-way latency of a single overlay hop, in milliseconds.
    hop_latency_ms: float = 5.0
    #: Serialisation delay charged per returned result item, in milliseconds.
    result_latency_ms: float = 0.02
    #: Size of one query message, in bytes.
    query_bytes: int = 128
    #: Fixed size of one result message (header), in bytes.
    result_message_bytes: int = 64
    #: Size of one result item inside a result message, in bytes.
    result_item_bytes: int = 16

    def __post_init__(self) -> None:
        for name in (
            "hop_latency_ms",
            "result_latency_ms",
            "query_bytes",
            "result_message_bytes",
            "result_item_bytes",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(
                    f"LinkModel.{name} must be non-negative, got {getattr(self, name)}"
                )

    @classmethod
    def from_options(
        cls, value: Optional[Union["LinkModel", Mapping[str, Any]]]
    ) -> "LinkModel":
        """Coerce *value* (``None``, LinkModel or plain mapping) to a link model.

        Unknown mapping keys raise :class:`~repro.errors.ConfigurationError`
        listing the valid field names, mirroring ``SessionConfig.from_dict``.
        """
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, Mapping):
            known = set(cls().to_dict())
            unknown = sorted(set(value) - known)
            if unknown:
                raise ConfigurationError(
                    f"unknown link model keys {unknown}; valid keys: {sorted(known)}"
                )
            return cls(**dict(value))
        raise ConfigurationError(
            f"expected a LinkModel, mapping or None, got {type(value).__name__}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable mapping that round-trips through :meth:`from_options`."""
        return asdict(self)
