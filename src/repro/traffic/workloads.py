"""Registered query-arrival generators for the traffic simulator.

A *workload generator* turns the network's recorded per-peer workloads into
one or more time-sorted :class:`~repro.traffic.events.QueryEventStream`\\ s.
Generators are registered by name in
:data:`repro.registry.workload_registry`, so the arrival pattern is a sweep
axis like every other component:

* ``uniform`` — issuers drawn uniformly, each asking from its own local
  workload, arrivals uniform over the horizon;
* ``zipf`` — Zipf-heavy-tailed issuer popularity (rank by local workload
  volume), modelling a few peers generating most of the traffic;
* ``flash-crowd`` — a uniform base stream plus a concentrated burst window
  in which everyone hammers the globally hottest queries (two streams, so
  the simulator's heap merge is exercised);
* ``replay`` — every occurrence of every peer's recorded workload exactly
  once per pass, evenly spaced; with a broadcast router this reproduces the
  exact recall model (the parity tests rely on it).

All randomness comes from the :class:`WorkloadContext`'s seeded generator —
given the same seed a generator emits byte-identical streams, which is what
makes traffic metrics sweep-safe for any worker count.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass, field
from typing import Any, List, Tuple

import numpy as np

from repro.core.queries import Query
from repro.errors import ConfigurationError
from repro.peers.network import PeerNetwork
from repro.registry import register_workload, workload_registry
from repro.traffic.events import QueryEventStream

__all__ = [
    "WorkloadContext",
    "WorkloadGenerator",
    "UniformWorkload",
    "ZipfWorkload",
    "FlashCrowdWorkload",
    "ReplayWorkload",
    "build_workload",
]

PeerId = Hashable


@dataclass
class WorkloadContext:
    """Everything a generator needs to emit event streams.

    Index space: ``peers[i]`` / ``queries[j]`` fix the meaning of the issuer
    and query indexes carried by every emitted stream; ``counts[i, j]`` is
    how often peer *i*'s recorded local workload contains distinct query *j*.
    """

    peers: List[PeerId]
    queries: List[Query]
    #: ``(|P|, |Q|)`` local workload occurrence counts.
    counts: np.ndarray
    #: Number of events a sampling generator should emit.
    num_events: int
    #: Length of the simulated time horizon, in seconds.
    horizon: float
    rng: np.random.Generator = field(
        default_factory=lambda: np.random.Generator(np.random.PCG64(0))
    )

    @classmethod
    def from_network(
        cls,
        network: PeerNetwork,
        *,
        num_events: int,
        horizon: float = 1.0,
        seed: int = 0,
    ) -> "WorkloadContext":
        """Build a context over *network*'s stable peer order and global workload."""
        if num_events < 0:
            raise ConfigurationError(f"num_events must be non-negative, got {num_events}")
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be positive, got {horizon}")
        peers = network.peer_ids()
        queries = network.global_workload().distinct()
        query_column = {query: column for column, query in enumerate(queries)}
        counts = np.zeros((len(peers), len(queries)), dtype=np.int64)
        workloads = network.workloads()
        for row, peer_id in enumerate(peers):
            for query, count in workloads[peer_id].items():
                counts[row, query_column[query]] = count
        return cls(
            peers=peers,
            queries=queries,
            counts=counts,
            num_events=int(num_events),
            horizon=float(horizon),
            rng=np.random.Generator(np.random.PCG64(np.random.SeedSequence(seed))),
        )

    # -- sampling helpers ----------------------------------------------------------

    def issuing_rows(self) -> np.ndarray:
        """Peer rows with a non-empty local workload (the only possible issuers)."""
        return np.flatnonzero(self.counts.sum(axis=1) > 0)

    def sample_events(
        self, issuer_weights: np.ndarray, size: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Draw ``(issuers, queries)`` index arrays from the joint distribution.

        The joint law is ``P(i, q) ∝ issuer_weights[i] * counts[i, q] /
        counts[i].sum()`` — an issuer chosen by *issuer_weights*, then a query
        from its own local workload.  Sampling the flattened non-zero pairs
        in one vectorised draw keeps 100k+ events out of Python loops.
        """
        rows, columns = np.nonzero(self.counts)
        if rows.size == 0 or size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        row_totals = self.counts.sum(axis=1)
        pair_weights = (
            issuer_weights[rows] * self.counts[rows, columns] / row_totals[rows]
        )
        total = pair_weights.sum()
        if total <= 0:
            raise ConfigurationError("issuer weights select no peer with a workload")
        choices = self.rng.choice(rows.size, size=size, p=pair_weights / total)
        return rows[choices].astype(np.int64), columns[choices].astype(np.int64)

    def uniform_times(self, size: int, start: float, duration: float) -> np.ndarray:
        """*size* sorted arrival times uniform over ``[start, start + duration)``."""
        return np.sort(self.rng.random(size)) * duration + start


class WorkloadGenerator:
    """Base class for registered arrival generators."""

    name = "workload"

    def streams(self, context: WorkloadContext) -> List[QueryEventStream]:
        """The time-sorted event streams this generator emits for *context*."""
        raise NotImplementedError


@register_workload("uniform")
class UniformWorkload(WorkloadGenerator):
    """Issuers uniform over the population, arrivals uniform over the horizon."""

    name = "uniform"

    def streams(self, context: WorkloadContext) -> List[QueryEventStream]:
        weights = np.zeros(len(context.peers))
        weights[context.issuing_rows()] = 1.0
        issuers, queries = context.sample_events(weights, context.num_events)
        times = context.uniform_times(issuers.size, 0.0, context.horizon)
        return [QueryEventStream(times, issuers, queries, label="uniform")]


@register_workload("zipf", aliases=("zipf-heavy-tail",))
class ZipfWorkload(WorkloadGenerator):
    """Zipf-heavy-tailed issuer popularity: rank peers by workload volume.

    The *i*-th most demanding peer issues with weight ``1 / rank**exponent``;
    each issuer still asks queries from its own local workload, so content
    skew comes from the scenario and demand skew from this generator.
    """

    name = "zipf"

    def __init__(self, exponent: float = 1.1) -> None:
        if exponent <= 0:
            raise ConfigurationError(f"zipf exponent must be positive, got {exponent}")
        self.exponent = float(exponent)

    def streams(self, context: WorkloadContext) -> List[QueryEventStream]:
        rows = context.issuing_rows()
        volumes = context.counts.sum(axis=1)[rows]
        # Stable rank: volume descending, row index ascending on ties.
        order = np.lexsort((rows, -volumes))
        weights = np.zeros(len(context.peers))
        weights[rows[order]] = 1.0 / np.arange(1, rows.size + 1) ** self.exponent
        issuers, queries = context.sample_events(weights, context.num_events)
        times = context.uniform_times(issuers.size, 0.0, context.horizon)
        return [QueryEventStream(times, issuers, queries, label="zipf")]


@register_workload("flash-crowd", aliases=("flash", "burst"))
class FlashCrowdWorkload(WorkloadGenerator):
    """A uniform base stream plus a burst hammering the hottest queries.

    ``burst_fraction`` of the events land inside the window
    ``[burst_start, burst_start + burst_duration]`` (fractions of the
    horizon) and all pose one of the ``hot_queries`` globally most frequent
    distinct queries; the rest behave like ``uniform``.  Emitted as two
    streams so the event loop genuinely merges concurrent sources.
    """

    name = "flash-crowd"

    def __init__(
        self,
        burst_fraction: float = 0.5,
        burst_start: float = 0.4,
        burst_duration: float = 0.1,
        hot_queries: int = 1,
    ) -> None:
        if not 0.0 <= burst_fraction <= 1.0:
            raise ConfigurationError(
                f"burst_fraction must be in [0, 1], got {burst_fraction}"
            )
        if not 0.0 <= burst_start <= 1.0 or burst_duration <= 0:
            raise ConfigurationError(
                "burst window must satisfy 0 <= burst_start <= 1 and "
                f"burst_duration > 0, got start={burst_start}, duration={burst_duration}"
            )
        if hot_queries < 1:
            raise ConfigurationError(f"hot_queries must be at least 1, got {hot_queries}")
        self.burst_fraction = float(burst_fraction)
        self.burst_start = float(burst_start)
        self.burst_duration = float(burst_duration)
        self.hot_queries = int(hot_queries)

    def streams(self, context: WorkloadContext) -> List[QueryEventStream]:
        burst_size = int(round(context.num_events * self.burst_fraction))
        base_size = context.num_events - burst_size
        weights = np.zeros(len(context.peers))
        rows = context.issuing_rows()
        weights[rows] = 1.0
        base_issuers, base_queries = context.sample_events(weights, base_size)
        base_times = context.uniform_times(base_issuers.size, 0.0, context.horizon)
        streams = [
            QueryEventStream(base_times, base_issuers, base_queries, label="base")
        ]
        if burst_size and rows.size:
            popularity = context.counts.sum(axis=0)
            hot = np.argsort(-popularity, kind="stable")[: self.hot_queries]
            burst_issuers = rows[context.rng.integers(0, rows.size, size=burst_size)]
            burst_queries = hot[context.rng.integers(0, hot.size, size=burst_size)]
            start = self.burst_start * context.horizon
            duration = min(
                self.burst_duration * context.horizon, context.horizon - start
            )
            burst_times = context.uniform_times(burst_size, start, max(duration, 1e-12))
            streams.append(
                QueryEventStream(
                    burst_times,
                    burst_issuers.astype(np.int64),
                    burst_queries.astype(np.int64),
                    label="burst",
                )
            )
        return streams


@register_workload("replay")
class ReplayWorkload(WorkloadGenerator):
    """Replay every recorded workload occurrence exactly once per pass.

    Ignores ``num_events``: the event count is ``passes * counts.sum()``.
    Events are evenly spaced over the horizon in deterministic (peer order,
    query order) sequence — no randomness at all, so with a broadcast router
    the observed per-cluster recall equals the exact recall model's.
    """

    name = "replay"

    def __init__(self, passes: int = 1) -> None:
        if passes < 1:
            raise ConfigurationError(f"passes must be at least 1, got {passes}")
        self.passes = int(passes)

    def streams(self, context: WorkloadContext) -> List[QueryEventStream]:
        rows, columns = np.nonzero(context.counts)
        occurrences = context.counts[rows, columns]
        issuers_once = np.repeat(rows, occurrences).astype(np.int64)
        queries_once = np.repeat(columns, occurrences).astype(np.int64)
        issuers = np.tile(issuers_once, self.passes)
        queries = np.tile(queries_once, self.passes)
        size = issuers.size
        times = (
            (np.arange(size, dtype=np.float64) + 0.5) / max(size, 1) * context.horizon
        )
        return [QueryEventStream(times, issuers, queries, label="replay")]


def build_workload(name: str, **options: Any) -> WorkloadGenerator:
    """Construct a workload generator by its registered *name*.

    Built-ins: ``uniform``, ``zipf`` (takes ``exponent``), ``flash-crowd``
    (takes the burst window knobs) and ``replay`` (takes ``passes``); new
    generators plug in through :func:`repro.registry.register_workload`.
    """
    return workload_registry.create(name, **options)
