"""Query events, time-ordered event streams and the indexed traffic log.

The traffic simulator works in *index space*: peers and distinct queries are
numbered once (by the surrounding :class:`~repro.traffic.workloads.WorkloadContext`)
and every event is three scalars — a timestamp, an issuer index and a query
index.  A :class:`QueryEventStream` is one time-sorted, array-backed source
of such events; the simulator heap-merges any number of streams (a base
arrival process plus e.g. a flash-crowd burst) and drains them in global
time order.

:class:`TrafficLog` is the append-only record of every event the simulator
served.  Its per-key secondary indexes (events by issuer, events by query)
are maintained *in lockstep with the append stream* — each appended batch
immediately lands in the indexes and in a new-events trigger buffer that
observers drain with :meth:`TrafficLog.consume_new`, so a consumer never
scans the whole log to find what changed.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

__all__ = ["QueryEvent", "QueryEventStream", "TrafficLog", "merge_streams"]

PeerId = Hashable


@dataclass(frozen=True)
class QueryEvent:
    """One query arrival: *issuer* poses *query* at simulated *time*."""

    time: float
    issuer: object
    query: object


class QueryEventStream:
    """A time-sorted, array-backed source of query events.

    Parameters
    ----------
    times:
        Non-decreasing event timestamps (simulated seconds).
    issuers, queries:
        Per-event issuer / distinct-query indexes into the owning
        :class:`~repro.traffic.workloads.WorkloadContext` orders.
    label:
        Short name used in reports (``"base"``, ``"burst"``, ...).
    """

    __slots__ = ("times", "issuers", "queries", "label")

    def __init__(
        self,
        times: np.ndarray,
        issuers: np.ndarray,
        queries: np.ndarray,
        *,
        label: str = "events",
    ) -> None:
        self.times = np.ascontiguousarray(times, dtype=np.float64)
        self.issuers = np.ascontiguousarray(issuers, dtype=np.int64)
        self.queries = np.ascontiguousarray(queries, dtype=np.int64)
        if not (self.times.shape == self.issuers.shape == self.queries.shape):
            raise ValueError(
                "times, issuers and queries must have identical shapes, got "
                f"{self.times.shape}, {self.issuers.shape}, {self.queries.shape}"
            )
        if self.times.ndim != 1:
            raise ValueError(f"event arrays must be one-dimensional, got {self.times.ndim}D")
        if self.times.size > 1 and np.any(np.diff(self.times) < 0):
            raise ValueError(f"stream {label!r} is not sorted by time")
        self.label = label

    def __len__(self) -> int:
        return int(self.times.size)

    def event(
        self, position: int, peers: Sequence[PeerId], queries: Sequence[object]
    ) -> QueryEvent:
        """Materialise event *position* against the context's peer/query orders."""
        return QueryEvent(
            time=float(self.times[position]),
            issuer=peers[int(self.issuers[position])],
            query=queries[int(self.queries[position])],
        )

    def __repr__(self) -> str:
        return f"QueryEventStream(label={self.label!r}, events={len(self)})"


def merge_streams(streams: Sequence[QueryEventStream]) -> QueryEventStream:
    """Merge several sorted streams into one globally time-sorted stream.

    Ties are broken by stream position (earlier stream first), so the merge
    is deterministic: it is exactly the order the heap-driven event loop
    drains the sources in.
    """
    live = [stream for stream in streams if len(stream)]
    if not live:
        empty = np.empty(0)
        return QueryEventStream(empty, empty, empty, label="merged")
    times = np.concatenate([stream.times for stream in live])
    issuers = np.concatenate([stream.issuers for stream in live])
    queries = np.concatenate([stream.queries for stream in live])
    # A stable sort on time reproduces the heap's tie-breaking rule.
    order = np.argsort(times, kind="stable")
    return QueryEventStream(
        times[order], issuers[order], queries[order], label="merged"
    )


class TrafficLog:
    """Append-only event log with live secondary indexes (the ``IEPCol`` idiom).

    Events are appended in batches of parallel arrays and assigned dense
    event ids.  Two per-key indexes — events by issuer and events by query —
    are updated in the same call, as is the new-events trigger buffer, so
    index reads never lag behind the append stream.  Chunks are kept as-is
    (no quadratic re-concatenation); accessors concatenate on demand.
    """

    def __init__(self) -> None:
        self._time_chunks: List[np.ndarray] = []
        self._issuer_chunks: List[np.ndarray] = []
        self._query_chunks: List[np.ndarray] = []
        self._by_issuer: Dict[int, List[np.ndarray]] = {}
        self._by_query: Dict[int, List[np.ndarray]] = {}
        self._size = 0
        #: Half-open id ranges appended since the last :meth:`consume_new`.
        self._fresh: List[Tuple[int, int]] = []

    def __len__(self) -> int:
        return self._size

    # -- appending -----------------------------------------------------------------

    def append_batch(
        self, times: np.ndarray, issuers: np.ndarray, queries: np.ndarray
    ) -> Tuple[int, int]:
        """Append one batch; returns the half-open event-id range assigned to it.

        The per-issuer and per-query indexes and the new-events buffer are
        updated before returning — the log is never observable in a state
        where the append stream and its indexes disagree.
        """
        count = int(np.asarray(times).size)
        if count == 0:
            return (self._size, self._size)
        times = np.ascontiguousarray(times, dtype=np.float64)
        issuers = np.ascontiguousarray(issuers, dtype=np.int64)
        queries = np.ascontiguousarray(queries, dtype=np.int64)
        start = self._size
        event_ids = np.arange(start, start + count, dtype=np.int64)
        self._time_chunks.append(times)
        self._issuer_chunks.append(issuers)
        self._query_chunks.append(queries)
        self._index_batch(self._by_issuer, issuers, event_ids)
        self._index_batch(self._by_query, queries, event_ids)
        self._size = start + count
        self._fresh.append((start, self._size))
        return (start, self._size)

    @staticmethod
    def _index_batch(
        index: Dict[int, List[np.ndarray]], keys: np.ndarray, event_ids: np.ndarray
    ) -> None:
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
        for segment in np.split(order, boundaries):
            index.setdefault(int(keys[segment[0]]), []).append(event_ids[segment])

    # -- reads ---------------------------------------------------------------------

    @staticmethod
    def _concatenate(chunks: List[np.ndarray], dtype: type) -> np.ndarray:
        if not chunks:
            return np.empty(0, dtype=dtype)
        return np.concatenate(chunks)

    def times(self) -> np.ndarray:
        """All event timestamps, in append (= time) order."""
        return self._concatenate(self._time_chunks, np.float64)

    def issuers(self) -> np.ndarray:
        """All per-event issuer indexes, in append order."""
        return self._concatenate(self._issuer_chunks, np.int64)

    def queries(self) -> np.ndarray:
        """All per-event distinct-query indexes, in append order."""
        return self._concatenate(self._query_chunks, np.int64)

    def event_ids_for_issuer(self, issuer_index: int) -> np.ndarray:
        """Event ids issued by *issuer_index*, ascending (live index read)."""
        return self._concatenate(self._by_issuer.get(int(issuer_index), []), np.int64)

    def event_ids_for_query(self, query_index: int) -> np.ndarray:
        """Event ids that posed *query_index*, ascending (live index read)."""
        return self._concatenate(self._by_query.get(int(query_index), []), np.int64)

    def issuer_counts(self) -> Dict[int, int]:
        """Events per issuer index (from the live index, not a scan)."""
        return {
            key: int(sum(chunk.size for chunk in chunks))
            for key, chunks in self._by_issuer.items()
        }

    # -- new-events trigger buffer ---------------------------------------------------

    def has_new(self) -> bool:
        """Whether events were appended since the last :meth:`consume_new`."""
        return bool(self._fresh)

    def consume_new(self) -> np.ndarray:
        """Drain and return the ids appended since the last call (resets the trigger)."""
        if not self._fresh:
            return np.empty(0, dtype=np.int64)
        ranges = self._fresh
        self._fresh = []
        return np.concatenate(
            [np.arange(start, stop, dtype=np.int64) for start, stop in ranges]
        )

    def __repr__(self) -> str:
        return (
            f"TrafficLog(events={self._size}, issuers={len(self._by_issuer)}, "
            f"queries={len(self._by_query)}, fresh={self.has_new()})"
        )
