"""The :class:`TrafficReport`: what a traffic run measured.

A report condenses a full event replay into four per-query distributions
(latency, hops, bandwidth, recall — p50/p95/p99 plus histograms via
:func:`repro.analysis.reporting.distribution_summary`), message/byte totals
that line up with the legacy :class:`~repro.overlay.messages.MessageBus`
accounting, and the per-(issuer, cluster) observed recall the paper's Eq. 6
observation model aggregates.  Everything except the observation matrices is
JSON-safe through :meth:`TrafficReport.to_dict`.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.analysis.reporting import (
    DistributionSummary,
    distribution_summary,
    format_table,
)

__all__ = ["TrafficReport", "empty_distribution"]

PeerId = Hashable
ClusterId = Hashable


def empty_distribution() -> DistributionSummary:
    """The all-zero summary of a run that served no events."""
    return DistributionSummary(
        count=0,
        mean=0.0,
        minimum=0.0,
        maximum=0.0,
        p50=0.0,
        p95=0.0,
        p99=0.0,
        bin_edges=(),
        bin_counts=(),
    )


def _summarise(values: np.ndarray, bins: int) -> DistributionSummary:
    if values.size == 0:
        return empty_distribution()
    return distribution_summary(values, bins=bins)


@dataclass
class TrafficReport:
    """Aggregated outcome of one traffic run."""

    #: Query events served.
    events: int
    #: Simulated horizon length, in seconds.
    horizon: float
    #: Router class/registered name the run used.
    router: str
    #: Workload generator label the run replayed.
    workload: str
    #: Vectorised batches the event loop drained.
    batches: int
    latency_ms: DistributionSummary = field(default_factory=empty_distribution)
    hops: DistributionSummary = field(default_factory=empty_distribution)
    bandwidth_bytes: DistributionSummary = field(default_factory=empty_distribution)
    recall: DistributionSummary = field(default_factory=empty_distribution)
    #: Query messages sent (one per reached cluster per event).
    query_messages: int = 0
    #: Result messages returned (one per providing peer per event).
    result_messages: int = 0
    #: Result items carried by those messages.
    result_items: int = 0
    total_bandwidth_bytes: float = 0.0
    #: Column order of the observation matrices.
    cluster_order: List[ClusterId] = field(default_factory=list)
    #: Row order of the observation matrices.
    peer_order: List[PeerId] = field(default_factory=list)
    #: ``(|P|, |C|)`` summed per-event recall each issuer observed per cluster.
    issuer_recall_sums: Optional[np.ndarray] = None
    #: Events issued per peer (observation denominator).
    issuer_event_counts: Optional[np.ndarray] = None
    #: Coordinator wall-clock seconds for the replay (informational; not serialised).
    wall_seconds: float = 0.0

    # -- derived metrics -----------------------------------------------------------

    @property
    def qps(self) -> float:
        """Served events per simulated second (deterministic, unlike wall time)."""
        if self.horizon <= 0:
            return 0.0
        return self.events / self.horizon

    @property
    def message_counts(self) -> Dict[str, int]:
        """Message totals keyed like the legacy :class:`MessageBus` snapshot."""
        return {
            "QueryMessage": self.query_messages,
            "ResultMessage": self.result_messages,
        }

    def observed_cluster_recall(self, issuer: PeerId) -> Dict[ClusterId, float]:
        """Mean per-event recall *issuer* observed from every cluster.

        This is the traffic-side counterpart of the exact
        ``covered_weight``: with a broadcast router and a ``replay`` workload
        the two agree to floating-point accuracy (see the parity tests).
        Clusters the issuer's queries never reached score 0.
        """
        if self.issuer_recall_sums is None or self.issuer_event_counts is None:
            raise ValueError("this report was built without observation matrices")
        row = self.peer_order.index(issuer)
        issued = float(self.issuer_event_counts[row])
        if issued == 0:
            return {cluster_id: 0.0 for cluster_id in self.cluster_order}
        sums = self.issuer_recall_sums[row]
        return {
            cluster_id: float(sums[column]) / issued
            for column, cluster_id in enumerate(self.cluster_order)
        }

    def flat_metrics(self) -> Dict[str, Any]:
        """Flat JSON-safe scalars for ``RunResult.extras`` (= sweep metrics).

        Keys like ``latency_p50`` / ``bandwidth_p99`` / ``recall_mean`` are
        directly usable as ``repro sweep`` metrics because
        ``SweepResult._metric_value`` reads runner extras first.
        """
        metrics: Dict[str, Any] = {
            "traffic_events": self.events,
            "qps": self.qps,
            "query_messages": self.query_messages,
            "result_messages": self.result_messages,
            "result_items": self.result_items,
            "bandwidth_total_bytes": self.total_bandwidth_bytes,
        }
        for prefix, summary in (
            ("latency", self.latency_ms),
            ("hops", self.hops),
            ("bandwidth", self.bandwidth_bytes),
            ("recall", self.recall),
        ):
            metrics[f"{prefix}_mean"] = summary.mean
            metrics[f"{prefix}_p50"] = summary.p50
            metrics[f"{prefix}_p95"] = summary.p95
            metrics[f"{prefix}_p99"] = summary.p99
        return metrics

    # -- rendering / serialisation ---------------------------------------------------

    def summary_table(self) -> str:
        """Plain-text distribution table (one row per metric)."""
        headers = ("metric", "n", "mean", "p50", "p95", "p99", "max")
        rows = [
            ("latency_ms",) + tuple(self.latency_ms.as_row()),
            ("hops",) + tuple(self.hops.as_row()),
            ("bandwidth_bytes",) + tuple(self.bandwidth_bytes.as_row()),
            ("recall",) + tuple(self.recall.as_row()),
        ]
        return format_table(headers, rows)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable summary (observation matrices reduced to means)."""
        payload: Dict[str, Any] = {
            "events": self.events,
            "horizon": self.horizon,
            "router": self.router,
            "workload": self.workload,
            "batches": self.batches,
            "qps": self.qps,
            "latency_ms": self.latency_ms.to_dict(),
            "hops": self.hops.to_dict(),
            "bandwidth_bytes": self.bandwidth_bytes.to_dict(),
            "recall": self.recall.to_dict(),
            "query_messages": self.query_messages,
            "result_messages": self.result_messages,
            "result_items": self.result_items,
            "total_bandwidth_bytes": self.total_bandwidth_bytes,
            "message_counts": self.message_counts,
        }
        if self.issuer_recall_sums is not None and self.issuer_event_counts is not None:
            issued = self.issuer_event_counts.astype(float)
            total = float(issued.sum())
            if total > 0:
                per_cluster = self.issuer_recall_sums.sum(axis=0) / total
                payload["mean_cluster_recall"] = {
                    str(cluster_id): float(value)
                    for cluster_id, value in zip(self.cluster_order, per_cluster)
                    if value > 0
                }
        return payload

    def __repr__(self) -> str:
        return (
            f"TrafficReport(events={self.events}, router={self.router!r}, "
            f"workload={self.workload!r}, recall_mean={self.recall.mean:.3f}, "
            f"latency_p95={self.latency_ms.p95:.2f}ms)"
        )
