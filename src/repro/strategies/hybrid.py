"""Hybrid relocation strategy (the extension sketched in Section 6).

The paper's future-work section suggests "a hybrid strategy taking into
consideration both the individual cost and the contribution measure".  This
strategy scores every candidate cluster with a convex combination of the two
gains::

    score(c) = weight * pgain(p, c) + (1 - weight) * clgain(p, c)

where ``pgain(p, c) = pcost(p, c_cur) - pcost(p, c)`` and ``clgain`` is the
altruistic cluster gain of :class:`~repro.strategies.altruistic.AltruisticStrategy`.
``weight = 1`` recovers the selfish strategy, ``weight = 0`` an altruistic
variant that evaluates every cluster (not only the top-contribution one).
"""

from __future__ import annotations

from collections.abc import Hashable
from typing import Dict, Optional

import numpy as np

from repro.errors import StrategyError
from repro.registry import register_strategy
from repro.strategies.altruistic import AltruisticStrategy
from repro.strategies.base import RelocationProposal, RelocationStrategy, StrategyContext

__all__ = ["HybridStrategy"]

PeerId = Hashable
ClusterId = Hashable


@register_strategy("hybrid")
class HybridStrategy(RelocationStrategy):
    """Blend of the selfish and altruistic criteria with a configurable weight."""

    name = "hybrid"

    def __init__(self, *, weight: float = 0.5, mode: str = "exact") -> None:
        if not 0.0 <= weight <= 1.0:
            raise StrategyError(f"weight must be in [0, 1], got {weight}")
        self.weight = weight
        self._altruistic = AltruisticStrategy(mode=mode)
        self.mode = mode

    def scores(self, peer_id: PeerId, context: StrategyContext) -> Dict[ClusterId, float]:
        """Combined score of every candidate (non-empty) cluster."""
        game = context.game
        configuration = game.configuration
        current_cluster = configuration.cluster_of(peer_id)
        current_cost = game.current_cost(peer_id)
        contributions = self._altruistic.contributions(peer_id, context)

        scores: Dict[ClusterId, float] = {}
        for cluster_id in configuration.nonempty_clusters():
            if cluster_id == current_cluster:
                continue
            selfish_gain = current_cost - game.prospective_cost(peer_id, cluster_id)
            altruistic_gain = self._altruistic.cluster_gain(
                peer_id,
                cluster_id,
                context,
                source_cluster=current_cluster,
                contributions=contributions,
            )
            scores[cluster_id] = self.weight * selfish_gain + (1.0 - self.weight) * altruistic_gain
        return scores

    def propose(self, peer_id: PeerId, context: StrategyContext) -> Optional[RelocationProposal]:
        scores = self.scores(peer_id, context)
        if not scores:
            return self._stay(peer_id, context)
        best_cluster = max(sorted(scores, key=repr), key=lambda cluster_id: scores[cluster_id])
        best_score = scores[best_cluster]
        if best_score <= 0.0:
            return self._stay(peer_id, context)
        return RelocationProposal(
            peer_id=peer_id,
            source_cluster=context.game.configuration.cluster_of(peer_id),
            target_cluster=best_cluster,
            gain=best_score,
        )

    def propose_all(self, peer_ids, context: StrategyContext):
        """Vectorised batch evaluation on the best-response kernel.

        Scores every peer against every non-empty cluster in one shot: the
        selfish gains come from the kernel's prospective cost table, the
        altruistic gains from the vectorised contribution matrix.  Falls back
        to the per-peer path in observed mode or without a kernel; decisions
        match :meth:`propose` (verified by the test suite).
        """
        game = context.game
        kernel = game._active_kernel()
        matrix = game.cost_model.matrix
        if self.mode != "exact" or kernel is None or matrix is None:
            return super().propose_all(peer_ids, context)
        configuration = game.configuration
        cluster_order = configuration.nonempty_clusters()
        if not cluster_order:
            return super().propose_all(peer_ids, context)
        costs = kernel.cost_table(cluster_order)
        contributions, join_increases, leave_decreases = self._altruistic.batch_state(
            context, cluster_order
        )
        cluster_index = {cluster_id: column for column, cluster_id in enumerate(cluster_order)}
        wanted = set(peer_ids)
        proposals = {}
        for row, peer_id in enumerate(matrix.peer_order):
            if peer_id not in wanted or peer_id not in configuration:
                continue
            current_cluster = configuration.cluster_of(peer_id)
            current_column = cluster_index.get(current_cluster)
            if current_column is None:
                continue  # handled by the per-peer fallback below
            selfish_gains = costs[row, current_column] - costs[row]
            altruistic_gains = (
                contributions[row] - contributions[row, current_column]
            ) - (join_increases - leave_decreases[current_column])
            scores = self.weight * selfish_gains + (1.0 - self.weight) * altruistic_gains
            scores[current_column] = -np.inf
            best_column = int(np.argmax(scores))
            best_score = float(scores[best_column])
            if best_score <= 0.0:
                proposals[peer_id] = self._stay(peer_id, context)
                continue
            proposals[peer_id] = RelocationProposal(
                peer_id=peer_id,
                source_cluster=current_cluster,
                target_cluster=cluster_order[best_column],
                gain=best_score,
            )
        for peer_id in wanted - set(proposals):
            proposal = self.propose(peer_id, context)
            if proposal is not None:
                proposals[peer_id] = proposal
        return proposals

    def __repr__(self) -> str:
        return f"HybridStrategy(weight={self.weight}, mode={self.mode!r})"
