"""Relocation strategies: selfish, altruistic, and the hybrid extension.

Strategies are registered in :data:`repro.registry.strategy_registry`;
:func:`build_strategy` constructs one by name.  Importing this package (or
:mod:`repro.baselines` for the baseline strategies) registers the built-ins.
"""

from __future__ import annotations

import inspect
from typing import Any

from repro.registry import strategy_registry
from repro.strategies.altruistic import AltruisticStrategy, exact_contributions
from repro.strategies.base import RelocationProposal, RelocationStrategy, StrategyContext
from repro.strategies.hybrid import HybridStrategy
from repro.strategies.selfish import SelfishStrategy

__all__ = [
    "RelocationStrategy",
    "RelocationProposal",
    "StrategyContext",
    "SelfishStrategy",
    "AltruisticStrategy",
    "HybridStrategy",
    "exact_contributions",
    "build_strategy",
]


def _accepts_keyword(factory: Any, keyword: str) -> bool:
    """Whether calling *factory* with ``keyword=...`` is valid."""
    try:
        parameters = inspect.signature(factory).parameters
    except (TypeError, ValueError):
        return True
    if keyword in parameters:
        return True
    return any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    )


def build_strategy(name: str, *, mode: str = "exact", **kwargs: object) -> RelocationStrategy:
    """Construct a relocation strategy by its registered *name*.

    The built-ins are ``selfish``, ``altruistic`` and ``hybrid`` plus the
    ``static`` and ``random`` baselines; anything registered through
    :func:`repro.registry.register_strategy` resolves the same way.  *mode*
    is forwarded only to strategies that take it (the paper's strategies
    distinguish ``exact`` and ``observed`` evaluation; baselines do not).
    """
    if name not in strategy_registry:
        # The baseline strategies register on import of repro.baselines; pull
        # them in before giving up so e.g. "static" resolves from a cold start.
        import repro.baselines  # noqa: F401  (registration side effect)
    factory = strategy_registry.get(name)
    options = dict(kwargs)
    if _accepts_keyword(factory, "mode"):
        options.setdefault("mode", mode)
    return factory(**options)
