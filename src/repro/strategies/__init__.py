"""Relocation strategies: selfish, altruistic, and the hybrid extension."""

from repro.strategies.altruistic import AltruisticStrategy, exact_contributions
from repro.strategies.base import RelocationProposal, RelocationStrategy, StrategyContext
from repro.strategies.hybrid import HybridStrategy
from repro.strategies.selfish import SelfishStrategy

__all__ = [
    "RelocationStrategy",
    "RelocationProposal",
    "StrategyContext",
    "SelfishStrategy",
    "AltruisticStrategy",
    "HybridStrategy",
    "exact_contributions",
]
