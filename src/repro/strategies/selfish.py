"""The selfish relocation strategy (Section 3.1.1).

A selfish peer tracks, per cluster, the individual cost it would incur if it
belonged to that cluster, and at the end of the period selects the cluster
with the minimum cost (Eq. 5).  The gain of the move is::

    pgain(p, c_new) = pcost(p, c_cur) - pcost(p, c_new)

In *exact* mode the per-cluster costs are evaluated with the cost model
(equivalently: the peer's best response in the game).  In *observed* mode
they are estimated from the cid-annotated results the peer received during
the period: the recall term of the cost for cluster ``c`` is approximated by
``1 - share of observed results provided by c`` (with the peer's own results
counted as reachable regardless, since its content moves with it).
"""

from __future__ import annotations

from collections.abc import Hashable
from typing import Dict, Optional

from repro.registry import register_strategy
from repro.strategies.base import RelocationProposal, RelocationStrategy, StrategyContext
from repro.errors import StrategyError

__all__ = ["SelfishStrategy"]

PeerId = Hashable
ClusterId = Hashable


@register_strategy("selfish")
class SelfishStrategy(RelocationStrategy):
    """Move to the cluster minimising the peer's own individual cost."""

    name = "selfish"

    def __init__(self, *, mode: str = "exact") -> None:
        if mode not in {"exact", "observed"}:
            raise StrategyError(f"mode must be 'exact' or 'observed', got {mode!r}")
        self.mode = mode

    # -- exact mode --------------------------------------------------------------

    def _propose_exact(
        self, peer_id: PeerId, context: StrategyContext
    ) -> Optional[RelocationProposal]:
        response = context.game.best_response(peer_id)
        if not response.wants_to_move:
            return self._stay(peer_id, context)
        return RelocationProposal(
            peer_id=peer_id,
            source_cluster=response.current_cluster,
            target_cluster=response.best_cluster,
            gain=response.gain,
        )

    # -- observed mode --------------------------------------------------------------

    def observed_costs(self, peer_id: PeerId, context: StrategyContext) -> Dict[ClusterId, float]:
        """Estimated ``pcost(p, c)`` per cluster from the period's observations."""
        if context.statistics is None or peer_id not in context.statistics:
            raise StrategyError(
                f"observed mode requires period statistics for peer {peer_id!r}"
            )
        configuration = context.game.configuration
        cost_model = context.game.cost_model
        tracker = context.statistics[peer_id].recall_tracker
        shares = tracker.observed_recall_by_cluster()
        current_cluster = configuration.cluster_of(peer_id)
        own_share = 0.0
        total_results = tracker.total_results()
        if total_results:
            own_results = sum(
                cost_model.recall_model.result(query, peer_id) * count
                for query, count in cost_model.peer_workload(peer_id).items()
            )
            own_share = min(own_results / total_results, 1.0)

        costs: Dict[ClusterId, float] = {}
        for cluster_id in configuration.nonempty_clusters():
            members = set(configuration.members(cluster_id))
            members.add(peer_id)
            membership = cost_model.membership_cost([len(members)])
            observed_share = shares.get(cluster_id, 0.0)
            if cluster_id != current_cluster:
                # The peer's own results are currently annotated with its own
                # cluster; after moving they would still be reachable.
                observed_share = min(observed_share + own_share, 1.0)
            costs[cluster_id] = membership + (1.0 - observed_share)
        return costs

    def _propose_observed(
        self, peer_id: PeerId, context: StrategyContext
    ) -> Optional[RelocationProposal]:
        costs = self.observed_costs(peer_id, context)
        if not costs:
            return self._stay(peer_id, context)
        current_cluster = context.game.configuration.cluster_of(peer_id)
        best_cluster = min(sorted(costs, key=repr), key=lambda cluster_id: costs[cluster_id])
        current_cost = costs.get(current_cluster)
        if current_cost is None or best_cluster == current_cluster:
            return self._stay(peer_id, context)
        gain = current_cost - costs[best_cluster]
        if gain <= 0.0:
            return self._stay(peer_id, context)
        return RelocationProposal(
            peer_id=peer_id,
            source_cluster=current_cluster,
            target_cluster=best_cluster,
            gain=gain,
        )

    # -- dispatch -----------------------------------------------------------------------

    def propose(self, peer_id: PeerId, context: StrategyContext) -> Optional[RelocationProposal]:
        if self.mode == "exact":
            return self._propose_exact(peer_id, context)
        return self._propose_observed(peer_id, context)

    def propose_all(self, peer_ids, context: StrategyContext):
        """Vectorised batch evaluation in exact mode (per-peer fallback otherwise)."""
        if self.mode != "exact" or context.game.cost_model.matrix is None:
            return super().propose_all(peer_ids, context)
        responses = context.game.best_responses()
        wanted = set(peer_ids)
        proposals = {}
        for peer_id, response in responses.items():
            if peer_id not in wanted:
                continue
            if response.wants_to_move:
                proposals[peer_id] = RelocationProposal(
                    peer_id=peer_id,
                    source_cluster=response.current_cluster,
                    target_cluster=response.best_cluster,
                    gain=response.gain,
                )
            else:
                proposals[peer_id] = self._stay(peer_id, context)
        for peer_id in wanted - set(proposals):
            proposal = self.propose(peer_id, context)
            if proposal is not None:
                proposals[peer_id] = proposal
        return proposals

    def __repr__(self) -> str:
        return f"SelfishStrategy(mode={self.mode!r})"
