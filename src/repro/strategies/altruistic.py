"""The altruistic relocation strategy (Section 3.1.2).

An altruistic peer moves to the cluster whose recall would improve the most
from the move — i.e. the cluster whose members' queries it serves the most.
The measure tracked over the period ``T`` is Eq. 6::

    contribution(p, c_i) =
        sum over p_i in c_i, q_m in Q(p_i) of result(q_m, p)
        -------------------------------------------------------
        sum over p_j in P,  q_m in Q(p_j) of result(q_m, p)

The peer selects the cluster ``c_new`` with the maximum contribution and
evaluates the *cluster gain* ``clgain`` that the reformulation protocol uses
to rank requests.  The paper defines ``clgain`` tersely ("the increase in the
membership cost of ``c_new`` p will cause if it joins it, minus p's
contribution to it"); this implementation makes the following documented
reading, chosen so that the altruistic dynamics reproduce the behaviour the
paper reports (convergence to topic clusters, no collapse into one giant
cluster, and the Figure 2/3 asymmetries):

* **sign** — the gain is reported as *benefit minus cost* so that, exactly
  like ``pgain``, a larger gain means a more beneficial move and the protocol
  can rank all requests uniformly.
* **benefit** — the system-recall improvement of the move: the target
  cluster's recall improves by the peer's contribution to it, but the cluster
  being left loses the peer's contribution to *it*, so the benefit is the
  contribution difference ``contribution(p, c_new) - contribution(p, c_cur)``.
* **cost** — the *net* increase of the system's cluster-maintenance cost
  caused by the move (the first term of the workload cost):
  ``alpha * [ (|c_new|+1) theta(|c_new|+1) - |c_new| theta(|c_new|) ] / |P|``
  for joining, minus the symmetric decrease for leaving ``c_cur``.  Reading
  the cost as only the joining peer's own membership term makes the penalty
  negligible and lets every provider chase the largest demand pool, which
  collapses the overlay into one or two giant clusters — the opposite of what
  the paper observes.

A peer only proposes a move when the target's contribution strictly exceeds
the current cluster's contribution (the paper's Figure 2 discussion: peers in
``c_new`` only move to ``c_cur`` once the demand from ``c_cur`` matches what
they currently serve).

Exact mode computes contributions from the recall/workload model; observed
mode uses the peer's :class:`~repro.peers.statistics.ContributionTracker`.
"""

from __future__ import annotations

from collections.abc import Hashable
from typing import Dict, Optional

import numpy as np

from repro.errors import StrategyError
from repro.registry import register_strategy
from repro.strategies.base import RelocationProposal, RelocationStrategy, StrategyContext

__all__ = ["AltruisticStrategy", "exact_contributions"]

PeerId = Hashable
ClusterId = Hashable


def exact_contributions(peer_id: PeerId, context: StrategyContext) -> Dict[ClusterId, float]:
    """``contribution(p, c)`` (Eq. 6) for every non-empty cluster, from global knowledge."""
    configuration = context.game.configuration
    cost_model = context.game.cost_model
    recall_model = cost_model.recall_model

    served_per_cluster: Dict[ClusterId, float] = {}
    total_served = 0.0
    for other_id in recall_model.peer_ids:
        workload = cost_model.workloads.get(other_id)
        if workload is None or workload.total() == 0:
            continue
        served_to_other = 0.0
        for query, count in workload.items():
            served_to_other += count * recall_model.result(query, peer_id)
        if served_to_other == 0.0:
            continue
        total_served += served_to_other
        if other_id not in configuration:
            continue
        other_cluster = configuration.cluster_of(other_id)
        served_per_cluster[other_cluster] = (
            served_per_cluster.get(other_cluster, 0.0) + served_to_other
        )

    if total_served == 0.0:
        return {cluster_id: 0.0 for cluster_id in configuration.nonempty_clusters()}
    return {
        cluster_id: served_per_cluster.get(cluster_id, 0.0) / total_served
        for cluster_id in configuration.nonempty_clusters()
    }


@register_strategy("altruistic")
class AltruisticStrategy(RelocationStrategy):
    """Move to the cluster to which the peer contributes the most results."""

    name = "altruistic"

    def __init__(self, *, mode: str = "exact") -> None:
        if mode not in {"exact", "observed"}:
            raise StrategyError(f"mode must be 'exact' or 'observed', got {mode!r}")
        self.mode = mode

    # -- contribution sources ---------------------------------------------------

    def contributions(self, peer_id: PeerId, context: StrategyContext) -> Dict[ClusterId, float]:
        """Contribution of *peer_id* to every cluster, per the configured mode."""
        if self.mode == "exact":
            return exact_contributions(peer_id, context)
        if context.statistics is None or peer_id not in context.statistics:
            raise StrategyError(
                f"observed mode requires period statistics for peer {peer_id!r}"
            )
        tracker = context.statistics[peer_id].contribution_tracker
        observed = tracker.contributions()
        return {
            cluster_id: observed.get(cluster_id, 0.0)
            for cluster_id in context.game.configuration.nonempty_clusters()
        }

    # -- gain ------------------------------------------------------------------------

    @staticmethod
    def join_cost_increase(cost_model, cluster_size: int) -> float:
        """Increase of the system's cluster-maintenance cost when a peer joins a cluster of *cluster_size*."""
        theta = cost_model.theta
        return (
            cost_model.alpha
            * ((cluster_size + 1) * theta(cluster_size + 1) - cluster_size * theta(cluster_size))
            / cost_model.population_size
        )

    @staticmethod
    def leave_cost_decrease(cost_model, cluster_size: int) -> float:
        """Decrease of the system's cluster-maintenance cost when a peer leaves a cluster of *cluster_size*."""
        if cluster_size <= 0:
            return 0.0
        theta = cost_model.theta
        return (
            cost_model.alpha
            * (cluster_size * theta(cluster_size) - (cluster_size - 1) * theta(cluster_size - 1))
            / cost_model.population_size
        )

    def cluster_gain(
        self,
        peer_id: PeerId,
        target_cluster: ClusterId,
        context: StrategyContext,
        *,
        source_cluster: Optional[ClusterId] = None,
        contributions: Optional[Dict[ClusterId, float]] = None,
    ) -> float:
        """``clgain`` of moving *peer_id* from its cluster to *target_cluster* (larger = better)."""
        configuration = context.game.configuration
        cost_model = context.game.cost_model
        if source_cluster is None:
            source_cluster = configuration.cluster_of(peer_id)
        if contributions is None:
            contributions = self.contributions(peer_id, context)
        benefit = contributions.get(target_cluster, 0.0) - contributions.get(source_cluster, 0.0)
        net_increase = self.join_cost_increase(
            cost_model, configuration.size(target_cluster)
        ) - self.leave_cost_decrease(cost_model, configuration.size(source_cluster))
        return benefit - net_increase

    def propose(self, peer_id: PeerId, context: StrategyContext) -> Optional[RelocationProposal]:
        configuration = context.game.configuration
        current_cluster = configuration.cluster_of(peer_id)
        contributions = self.contributions(peer_id, context)
        if not contributions:
            return self._stay(peer_id, context)
        best_cluster = max(
            sorted(contributions, key=repr), key=lambda cluster_id: contributions[cluster_id]
        )
        if best_cluster == current_cluster:
            return self._stay(peer_id, context)
        # The move must help the target cluster more than the peer currently
        # helps the cluster it would leave, otherwise the altruist stays put.
        if contributions[best_cluster] <= contributions.get(current_cluster, 0.0):
            return self._stay(peer_id, context)
        gain = self.cluster_gain(
            peer_id,
            best_cluster,
            context,
            source_cluster=current_cluster,
            contributions=contributions,
        )
        if gain <= 0.0:
            return self._stay(peer_id, context)
        return RelocationProposal(
            peer_id=peer_id,
            source_cluster=current_cluster,
            target_cluster=best_cluster,
            gain=gain,
        )

    def batch_state(self, context: StrategyContext, cluster_order):
        """Shared vectorised scaffolding of the batch (exact-mode) paths.

        Returns ``(contributions, join_increases, leave_decreases)`` over the
        *cluster_order* columns — the peer x cluster contribution matrix
        (Eq. 6) plus the per-cluster maintenance-cost deltas — or ``None``
        when no recall matrix is attached.  The hybrid strategy builds its
        altruistic term from exactly this state, so the two batch paths can
        never diverge.
        """
        matrix = context.game.cost_model.matrix
        if matrix is None:
            return None
        configuration = context.game.configuration
        cost_model = context.game.cost_model
        kernel = context.game._active_kernel()
        if kernel is not None:
            # The kernel's live membership/size caches replace the per-round
            # membership-matrix rebuild.
            membership, sizes = kernel.membership_columns(cluster_order)
        else:
            membership, _ = configuration.membership_matrix(matrix.peer_order, cluster_order)
            sizes = membership.sum(axis=0)
        contributions = matrix.contribution_matrix(membership)
        join_increases = np.array(
            [self.join_cost_increase(cost_model, int(size)) for size in sizes], dtype=float
        )
        leave_decreases = np.array(
            [self.leave_cost_decrease(cost_model, int(size)) for size in sizes], dtype=float
        )
        return contributions, join_increases, leave_decreases

    def propose_all(self, peer_ids, context: StrategyContext):
        """Vectorised batch evaluation in exact mode (per-peer fallback otherwise)."""
        matrix = context.game.cost_model.matrix
        if self.mode != "exact" or matrix is None:
            return super().propose_all(peer_ids, context)
        configuration = context.game.configuration
        peer_order = matrix.peer_order
        cluster_order = configuration.nonempty_clusters()
        contributions, join_increases, leave_decreases = self.batch_state(
            context, cluster_order
        )
        cluster_index = {cluster_id: column for column, cluster_id in enumerate(cluster_order)}
        wanted = set(peer_ids)
        proposals = {}
        for row, peer_id in enumerate(peer_order):
            if peer_id not in wanted or peer_id not in configuration:
                continue
            current_cluster = configuration.cluster_of(peer_id)
            current_column = cluster_index.get(current_cluster)
            row_contributions = contributions[row]
            best_column = int(np.argmax(row_contributions))
            best_cluster = cluster_order[best_column]
            stay = self._stay(peer_id, context)
            if (
                best_cluster == current_cluster
                or current_column is None
                or row_contributions[best_column] <= row_contributions[current_column]
            ):
                proposals[peer_id] = stay
                continue
            benefit = float(row_contributions[best_column] - row_contributions[current_column])
            net_increase = float(join_increases[best_column] - leave_decreases[current_column])
            gain = benefit - net_increase
            if gain <= 0.0:
                proposals[peer_id] = stay
                continue
            proposals[peer_id] = RelocationProposal(
                peer_id=peer_id,
                source_cluster=current_cluster,
                target_cluster=best_cluster,
                gain=gain,
            )
        for peer_id in wanted - set(proposals):
            proposal = self.propose(peer_id, context)
            if proposal is not None:
                proposals[peer_id] = proposal
        return proposals

    def __repr__(self) -> str:
        return f"AltruisticStrategy(mode={self.mode!r})"
