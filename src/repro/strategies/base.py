"""Relocation strategies: the peer-local decision rules of Section 3.1.

At the end of every observation period ``T`` each peer runs its relocation
strategy to decide whether it should move to another cluster and how much it
(or the system) would gain.  A strategy produces a
:class:`RelocationProposal`; the reformulation protocol then gathers the
proposals, keeps the best one per cluster and serves them subject to the
lock rule.

Strategies can work in two modes:

* **exact** — the gain is computed from the cost model / recall model
  (global knowledge).  This is the mode used for the experiment-scale runs;
  under broadcast routing the observed quantities equal the exact ones, so
  nothing is lost.
* **observed** — the gain is computed from the peer's own
  :class:`~repro.peers.statistics.PeerStatistics`, i.e. from the cid-annotated
  results it saw during the period.  This is the faithful, purely local mode;
  it is exercised by the integration tests and an ablation bench.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping
from dataclasses import dataclass
from typing import Optional

from repro.game.model import ClusterGame
from repro.peers.statistics import PeerStatistics

__all__ = ["RelocationProposal", "StrategyContext", "RelocationStrategy"]

PeerId = Hashable
ClusterId = Hashable


@dataclass(frozen=True)
class RelocationProposal:
    """A peer's proposal to relocate, produced by a strategy.

    Attributes
    ----------
    peer_id:
        The peer proposing to move.
    source_cluster:
        The cluster it currently belongs to.
    target_cluster:
        The cluster it wants to move to (possibly
        :data:`~repro.core.costs.NEW_CLUSTER`).
    gain:
        The strategy-specific gain of the move (``pgain`` for the selfish
        strategy, ``clgain`` for the altruistic one).  Larger is better.
    """

    peer_id: PeerId
    source_cluster: ClusterId
    target_cluster: ClusterId
    gain: float

    @property
    def is_move(self) -> bool:
        """``True`` when the proposal actually changes cluster."""
        return self.source_cluster != self.target_cluster


@dataclass
class StrategyContext:
    """Everything a strategy may consult when evaluating one peer.

    Attributes
    ----------
    game:
        The cluster game (cost model + current configuration).
    statistics:
        Optional per-peer observation trackers filled by the overlay
        simulator; required by the ``observed`` strategy mode.
    previous_costs:
        Optional mapping of peer id to its individual cost at the end of the
        *previous* period, used by the new-cluster creation rule ("its cost
        has significantly increased since the last time period").
    """

    game: ClusterGame
    statistics: Optional[Mapping[PeerId, PeerStatistics]] = None
    previous_costs: Optional[Mapping[PeerId, float]] = None


class RelocationStrategy:
    """Base class for relocation strategies."""

    name = "strategy"

    def propose(self, peer_id: PeerId, context: StrategyContext) -> Optional[RelocationProposal]:
        """Return the peer's relocation proposal, or ``None`` if it prefers to stay."""
        raise NotImplementedError

    def propose_all(self, peer_ids, context: StrategyContext):
        """Proposals for many peers at once.

        The default implementation simply calls :meth:`propose` per peer;
        the selfish and altruistic strategies override it with vectorised
        evaluations (identical results, verified by tests) because the
        reformulation protocol calls this every round at experiment scale.
        """
        proposals = {}
        for peer_id in peer_ids:
            proposal = self.propose(peer_id, context)
            if proposal is not None:
                proposals[peer_id] = proposal
        return proposals

    def _stay(self, peer_id: PeerId, context: StrategyContext) -> RelocationProposal:
        """A zero-gain proposal that keeps the peer where it is."""
        current = context.game.configuration.cluster_of(peer_id)
        return RelocationProposal(
            peer_id=peer_id, source_cluster=current, target_cluster=current, gain=0.0
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
