"""Vectorized, incrementally-maintained best-response kernel.

The per-round hot loop of every experiment is "score all candidate clusters
for all peers".  The :class:`~repro.game.model.ClusterGame` reference path
rebuilds the membership matrix and the ``W @ M`` covered-recall product from
scratch on every call; at experiment scale that means re-doing a full GEMM
plus a Python per-peer loop hundreds of times per run even though each round
only moves a handful of peers.

:class:`BestResponseKernel` keeps the pieces of that computation as *live*
state tied to one :class:`~repro.peers.configuration.ClusterConfiguration`,
in one of two backends:

* ``backend="dense"`` — the historical representation: ``M`` (the 0/1
  peers x cluster-slots membership matrix), ``sizes`` and ``CW = W @ M``
  over the dense :class:`~repro.core.recall_matrix.WeightedRecallMatrix`
  (the globally weighted analogue ``CV = V @ M`` builds lazily).  O(|P| x
  |C|) memory — exact, simple, and the right choice up to a few thousand
  peers.
* ``backend="labels"`` — clusters partition peers, so membership collapses
  to an integer *label vector* (one cluster column per peer; the rare
  multi-membership peers spill into a tiny overflow map) and ``CW``/``CV``
  shrink to per-cluster covered columns computed as **segmented reductions**
  over the :class:`~repro.core.recall_matrix.FactoredRecall` arrays: a
  cluster's member columns collapse to a per-query group recall
  (O(|Q_u| x |members|)), then one O(|P| x kmax) gather redistributes it.
  A peer move updates two columns in O(|P|) and **no |P| x |C| matrix
  exists anywhere** — this is what makes best-response rounds at 10k-100k
  peers fit on one box.

``backend="auto"`` (the default) picks ``dense`` below
:data:`~BestResponseKernel.AUTO_LABELS_THRESHOLD` peers and ``labels`` at or
above it.  ``dtype="float32"`` halves the array memory of either backend;
costs are then accurate to roughly 1e-3 relative (vs. the 1e-9 float64
parity the test suite pins), which is plenty for best-response *decisions*
but not for tight cost assertions — see the README's tolerance contract.

The kernel registers itself as a configuration listener, so every
``assign`` / ``move`` / ``remove_peer`` updates the caches in ``O(|P|)``
(one column add/subtract) instead of triggering a full rebuild.
:meth:`best_response_all` then scores *all* candidates for *all* peers with
pure array arithmetic — including the :data:`~repro.core.costs.NEW_CLUSTER`
option — reproducing the reference per-candidate evaluation exactly (the
test suite pins both backends to the exact per-query
:class:`~repro.core.costs.CostModel`).

The kernel is used automatically by :meth:`ClusterGame.best_responses
<repro.game.model.ClusterGame.best_responses>` whenever a recall matrix is
attached; pass ``use_kernel=False`` to the game to force the reference path
(the ablation benchmark does exactly that).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.costs import NEW_CLUSTER, CostModel
from repro.errors import ConfigurationError
from repro.game.model import BestResponse
from repro.peers.configuration import ClusterConfiguration

__all__ = ["BestResponseKernel"]

PeerId = Hashable
ClusterId = Hashable

#: Kernel backends accepted by :class:`BestResponseKernel`.
_BACKENDS = ("dense", "labels")


class BestResponseKernel:
    """Live vectorized cost state over one configuration and cost model.

    Parameters
    ----------
    cost_model:
        Cost model with an attached :class:`WeightedRecallMatrix` (required —
        the kernel *is* the matrix acceleration).
    configuration:
        The configuration whose membership the kernel mirrors.  The kernel
        subscribes to its mutation events; it stays consistent for as long as
        the underlying recall matrix describes the network (content changes
        require a fresh cost model and hence a fresh kernel, exactly like the
        matrix itself).
    backend:
        ``"dense"``, ``"labels"`` or ``"auto"`` (default: dense below
        :data:`AUTO_LABELS_THRESHOLD` peers, labels at or above).
    dtype:
        ``"float64"`` (default) or ``"float32"``.  float32 halves memory and
        relaxes cost accuracy to ~1e-3 relative.
    """

    #: Population at or above which ``backend="auto"`` switches to labels.
    AUTO_LABELS_THRESHOLD = 2048

    def __init__(
        self,
        cost_model: CostModel,
        configuration: ClusterConfiguration,
        *,
        backend: str = "auto",
        dtype: Optional[object] = None,
    ) -> None:
        matrix = cost_model.matrix
        if matrix is None:
            raise ConfigurationError(
                "BestResponseKernel requires a cost model with an attached WeightedRecallMatrix"
            )
        resolved_dtype = np.dtype(dtype) if dtype is not None else np.dtype(np.float64)
        if resolved_dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ConfigurationError(
                f"kernel dtype must be float64 or float32, got {dtype!r}"
            )
        if backend == "auto":
            backend = (
                "labels"
                if len(matrix.peer_order) >= self.AUTO_LABELS_THRESHOLD
                else "dense"
            )
        if backend not in _BACKENDS:
            raise ConfigurationError(
                f"kernel backend must be 'dense', 'labels' or 'auto', got {backend!r}"
            )
        self.backend = backend
        self.dtype = resolved_dtype
        self.cost_model = cost_model
        self.configuration = configuration
        self._recall_matrix = matrix
        self._peer_order: List[PeerId] = matrix.peer_order
        # Shared with the matrix (built exactly once per matrix, not per kernel).
        self._peer_index: Dict[PeerId, int] = matrix.peer_index
        if backend == "labels":
            self._source = matrix.factored(resolved_dtype)
            self._W: Optional[np.ndarray] = None
            self._totals = self._source.totals_local()
            self._own = self._source.own_local()
        else:
            self._source = None
            weights = matrix.local_view()
            if resolved_dtype != np.float64:
                weights = weights.astype(resolved_dtype)
            self._W = weights
            self._totals = self._W.sum(axis=1)
            self._own = np.ascontiguousarray(np.diag(self._W))
        self._theta_table = np.zeros(0, dtype=float)
        #: Set when the configuration gained a peer unknown to the recall
        #: matrix; the kernel can no longer answer for it and callers should
        #: fall back to the reference path.
        self.stale = False
        self._rebuild()
        configuration.add_listener(self)

    # -- state construction --------------------------------------------------

    def _rebuild(self) -> None:
        """(Re)build every cache from the configuration.

        Dense: O(|P|^2 |C|) (the ``W @ M`` product).  Labels: O(|P|) — the
        covered columns materialise lazily per candidate cluster.
        """
        self._cluster_order: List[ClusterId] = list(self.configuration.cluster_ids())
        self._cluster_index: Dict[ClusterId, int] = {
            cluster_id: column for column, cluster_id in enumerate(self._cluster_order)
        }
        if self.backend == "labels":
            self._rebuild_labels()
            return
        membership, _ = self.configuration.membership_matrix(
            self._peer_order, self._cluster_order
        )
        if self.dtype != np.float64:
            membership = membership.astype(self.dtype)
        self._M = membership
        self._sizes = membership.sum(axis=0, dtype=float)
        self._CW = self._W @ membership
        # The globally-weighted analogue (V @ M, backing the vectorized
        # workload cost) is built on first access and maintained thereafter.
        self._V: Optional[np.ndarray] = None
        self._CV: Optional[np.ndarray] = None
        self._V_totals: Optional[np.ndarray] = None

    def _rebuild_labels(self) -> None:
        population = len(self._peer_order)
        #: Each tracked peer's cluster column: -1 unassigned, -2 when the
        #: peer joined several clusters (the actual set lives in _overflow).
        self._labels = np.full(population, -1, dtype=np.int64)
        self._counts = np.zeros(population, dtype=np.int64)
        self._overflow: Dict[int, Set[int]] = {}
        self._sizes = np.zeros(len(self._cluster_order), dtype=float)
        #: Lazily-materialised covered columns: column -> (|P|,) array.  A
        #: column is computed as a segmented reduction on first touch and
        #: incrementally +/- updated from then on.
        self._cw: Dict[int, np.ndarray] = {}
        self._cv: Dict[int, np.ndarray] = {}
        self._cv_active = False
        self._V_totals = None
        for cluster_id in self.configuration.nonempty_clusters():
            column = self._cluster_index[cluster_id]
            for peer_id in self.configuration.members(cluster_id):
                row = self._peer_index.get(peer_id)
                if row is None:
                    continue
                self._sizes[column] += 1.0
                self._assign_label(row, column)

    def rebuild(self) -> None:
        """Public full rebuild (used by tests to cross-check the incremental state).

        The stale flag is recomputed, not blindly cleared: a configuration
        still holding peers the recall matrix does not know stays stale.
        """
        self._rebuild()
        self.stale = self._has_untracked_peers()

    def _has_untracked_peers(self) -> bool:
        """Whether the configuration holds assigned peers outside the matrix."""
        if self.backend == "labels":
            tracked_assigned = int(np.count_nonzero(self._counts))
        else:
            tracked_assigned = int(np.count_nonzero(self._M.sum(axis=1)))
        return self.configuration.num_peers() != tracked_assigned

    def _untracked_peers(self) -> List[PeerId]:
        """Assigned peers the recall matrix (and hence the kernel) cannot score."""
        if not self._has_untracked_peers():
            return []
        return [
            peer_id
            for peer_id in self.configuration.peer_ids()
            if peer_id not in self._peer_index
        ]

    # -- label-vector bookkeeping ---------------------------------------------

    def _assign_label(self, row: int, column: int) -> None:
        count = int(self._counts[row])
        if count == 0:
            self._labels[row] = column
        elif count == 1:
            self._overflow[row] = {int(self._labels[row]), column}
            self._labels[row] = -2
        else:
            self._overflow[row].add(column)
        self._counts[row] = count + 1

    def _unassign_label(self, row: int, column: int) -> None:
        self._counts[row] -= 1
        member_columns = self._overflow.get(row)
        if member_columns is not None:
            member_columns.discard(column)
            if len(member_columns) == 1:
                self._labels[row] = member_columns.pop()
                del self._overflow[row]
        else:
            self._labels[row] = -1

    def _member_rows(self, column: int) -> np.ndarray:
        rows = np.nonzero(self._labels == column)[0]
        if self._overflow:
            extra = [row for row, columns in self._overflow.items() if column in columns]
            if extra:
                rows = np.unique(
                    np.concatenate([rows, np.asarray(extra, dtype=np.intp)])
                )
        return rows

    def _cw_column(self, column: int) -> np.ndarray:
        covered = self._cw.get(column)
        if covered is None:
            covered = self._source.covered_local(self._member_rows(column))
            self._cw[column] = covered
        return covered

    def _cv_column(self, column: int) -> np.ndarray:
        covered = self._cv.get(column)
        if covered is None:
            covered = self._source.covered_global(self._member_rows(column))
            self._cv[column] = covered
        return covered

    def _ensure_global_tracking(self) -> None:
        if not self._cv_active:
            self._V_totals = self._source.totals_global()
            self._cv_active = True

    # -- backend-dispatched state reads ---------------------------------------

    def _membership_block(self, columns: Sequence[int]) -> np.ndarray:
        """0/1 membership of every peer against the given cluster columns."""
        if self.backend != "labels":
            return self._M[:, columns]
        cols = np.asarray(columns, dtype=np.int64)
        block = (self._labels[:, None] == cols[None, :]).astype(float)
        if self._overflow:
            position = {int(column): k for k, column in enumerate(cols)}
            for row, member_columns in self._overflow.items():
                for column in member_columns:
                    k = position.get(column)
                    if k is not None:
                        block[row, k] = 1.0
        return block

    def _covered_block(self, columns: Sequence[int]) -> np.ndarray:
        """``CW`` restricted to the given cluster columns."""
        if self.backend != "labels":
            return self._CW[:, columns]
        population = len(self._peer_order)
        if not len(columns):
            return np.zeros((population, 0), dtype=self.dtype)
        return np.stack([self._cw_column(int(column)) for column in columns], axis=1)

    def _counts_all(self) -> np.ndarray:
        """Per-peer cluster-membership counts (over every cluster slot)."""
        if self.backend == "labels":
            return self._counts.astype(float)
        return self._M.sum(axis=1)

    def _covered_at(self, columns: np.ndarray) -> np.ndarray:
        """Per-peer covered recall from its *own* column: ``CW[i, columns[i]]``."""
        if self.backend != "labels":
            return self._CW[np.arange(columns.size), columns]
        out = np.empty(columns.size, dtype=float)
        for column in np.unique(columns):
            rows = np.nonzero(columns == column)[0]
            out[rows] = self._cw_column(int(column))[rows]
        return out

    def _global_covered_at(self, columns: np.ndarray) -> np.ndarray:
        """Per-peer globally-weighted covered recall: ``CV[i, columns[i]]``."""
        if self.backend != "labels":
            covered = self.global_covered()
            return covered[np.arange(columns.size), columns]
        self._ensure_global_tracking()
        out = np.empty(columns.size, dtype=float)
        for column in np.unique(columns):
            rows = np.nonzero(columns == column)[0]
            out[rows] = self._cv_column(int(column))[rows]
        return out

    # -- configuration listener callbacks ------------------------------------

    def configuration_assigned(self, peer_id: PeerId, cluster_id: ClusterId) -> None:
        row = self._peer_index.get(peer_id)
        if row is None:
            self.stale = True
            return
        column = self._cluster_index.get(cluster_id)
        if column is None:
            column = self._add_cluster_column(cluster_id)
        if self.backend == "labels":
            self._sizes[column] += 1.0
            self._assign_label(row, column)
            covered = self._cw.get(column)
            if covered is not None:
                covered += self._source.column_local(row)
            if self._cv_active:
                covered_global = self._cv.get(column)
                if covered_global is not None:
                    covered_global += self._source.column_global(row)
            return
        self._M[row, column] = 1.0
        self._sizes[column] += 1.0
        self._CW[:, column] += self._W[:, row]
        if self._CV is not None:
            self._CV[:, column] += self._V[:, row]

    def configuration_unassigned(self, peer_id: PeerId, cluster_id: ClusterId) -> None:
        row = self._peer_index.get(peer_id)
        if row is None:
            return  # never tracked; nothing to undo
        column = self._cluster_index.get(cluster_id)
        if column is None:
            self.stale = True
            return
        if self.backend == "labels":
            self._sizes[column] -= 1.0
            self._unassign_label(row, column)
            covered = self._cw.get(column)
            if covered is not None:
                covered -= self._source.column_local(row)
            if self._cv_active:
                covered_global = self._cv.get(column)
                if covered_global is not None:
                    covered_global -= self._source.column_global(row)
            return
        self._M[row, column] = 0.0
        self._sizes[column] -= 1.0
        self._CW[:, column] -= self._W[:, row]
        if self._CV is not None:
            self._CV[:, column] -= self._V[:, row]

    def configuration_cluster_added(self, cluster_id: ClusterId) -> None:
        if cluster_id not in self._cluster_index:
            self._add_cluster_column(cluster_id)

    def _add_cluster_column(self, cluster_id: ClusterId) -> int:
        column = len(self._cluster_order)
        self._cluster_order.append(cluster_id)
        self._cluster_index[cluster_id] = column
        self._sizes = np.append(self._sizes, 0.0)
        if self.backend == "labels":
            return column
        population = len(self._peer_order)
        self._M = np.hstack([self._M, np.zeros((population, 1), dtype=self._M.dtype)])
        self._CW = np.hstack([self._CW, np.zeros((population, 1), dtype=self._CW.dtype)])
        if self._CV is not None:
            self._CV = np.hstack(
                [self._CV, np.zeros((population, 1), dtype=self._CV.dtype)]
            )
        return column

    # -- accessors ------------------------------------------------------------

    @property
    def peer_order(self) -> List[PeerId]:
        """The row ordering of peer ids (the recall matrix's order)."""
        return list(self._peer_order)

    def global_covered(self) -> np.ndarray:
        """``V @ M`` — globally-weighted covered recall per cluster column.

        Built lazily on first access (the best-response path never needs it)
        and incrementally maintained from then on; the raw material of
        :meth:`workload_cost`.  Under the labels backend the full matrix only
        materialises for this dense-shaped accessor — the workload-cost path
        itself reads per-cluster columns.
        """
        if self.backend == "labels":
            self._ensure_global_tracking()
            population = len(self._peer_order)
            out = np.zeros((population, len(self._cluster_order)))
            for column in range(len(self._cluster_order)):
                if column in self._cv or self._sizes[column] > 0:
                    out[:, column] = self._cv_column(column)
            return out
        if self._CV is None:
            weights = self._recall_matrix.global_view()
            if self.dtype != np.float64:
                weights = weights.astype(self.dtype)
            self._V = weights
            self._CV = self._V @ self._M
            self._V_totals = self._V.sum(axis=1)
        return self._CV

    def membership_columns(
        self, cluster_order: Sequence[ClusterId]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(membership, sizes)`` restricted to *cluster_order* columns.

        The membership block is a copy (callers may scale it freely); the
        sizes are the live cluster sizes gathered in the same order.
        """
        columns = [self._cluster_index[cluster_id] for cluster_id in cluster_order]
        if self.backend == "labels":
            return self._membership_block(columns), self._sizes[columns].copy()
        return self._M[:, columns].copy(), self._sizes[columns].copy()

    def _theta_values(self, max_size: int) -> np.ndarray:
        if max_size >= self._theta_table.size:
            theta = self.cost_model.theta
            self._theta_table = np.array(
                [theta(size) for size in range(max_size + 1)], dtype=float
            )
        return self._theta_table

    # -- vectorized cost evaluation -------------------------------------------

    def _cost_table_for(
        self, membership: np.ndarray, covered: np.ndarray, columns: Sequence[int]
    ) -> np.ndarray:
        own = self._own[:, None]
        own_counted = membership * own
        covered_adjusted = covered - own_counted + own
        losses = self._totals[:, None] - covered_adjusted
        effective_sizes = self._sizes[columns][None, :] + (1.0 - membership)
        max_size = int(effective_sizes.max()) if effective_sizes.size else 0
        theta_table = self._theta_values(max_size)
        membership_costs = (
            self.cost_model.alpha
            * theta_table[effective_sizes.astype(int)]
            / self.cost_model.population_size
        )
        return membership_costs + losses

    def cost_table(self, candidate_clusters: Sequence[ClusterId]) -> np.ndarray:
        """Prospective ``pcost`` of every peer against every candidate cluster.

        ``table[i, k]`` is the individual cost peer ``i`` would incur with the
        single-cluster strategy ``candidate_clusters[k]`` — clusters the peer
        does not belong to are evaluated "as if joined" (size + 1, its own
        content always reachable), exactly like
        :meth:`CostModel.prospective_pcost`.
        """
        columns = [self._cluster_index[cluster_id] for cluster_id in candidate_clusters]
        return self._cost_table_for(
            self._membership_block(columns), self._covered_block(columns), columns
        )

    def new_cluster_costs(self) -> np.ndarray:
        """Cost of moving to a fresh, empty cluster, for every peer."""
        theta_one = float(self._theta_values(1)[1])
        membership = self.cost_model.alpha * theta_one / self.cost_model.population_size
        return membership + (self._totals - self._own)

    def _single_cluster_columns(self) -> Optional[np.ndarray]:
        """Column of each peer's single cluster, or ``None`` if any peer deviates.

        ``None`` means some tracked peer belongs to zero or several clusters
        (multi-membership is legal in the model but outside the vector fast
        path) — callers fall back to the per-peer reference evaluation.
        """
        if self.backend == "labels":
            if self._counts.size == 0:
                return None
            if self._overflow or not bool(np.all(self._counts == 1)):
                return None
            return self._labels
        counts = self._M.sum(axis=1)
        if counts.size == 0 or not np.all(counts == 1.0):
            return None
        return np.argmax(self._M, axis=1)

    def _current_cost_vector(self, columns: np.ndarray) -> np.ndarray:
        sizes = self._sizes[columns]
        theta_table = self._theta_values(int(sizes.max()) if sizes.size else 0)
        membership = (
            self.cost_model.alpha
            * theta_table[sizes.astype(int)]
            / self.cost_model.population_size
        )
        losses = self._totals - self._covered_at(columns)
        return membership + losses

    def current_costs(self) -> Dict[PeerId, float]:
        """``pcost`` of every assigned peer under its current strategy."""
        configuration = self.configuration
        columns = self._single_cluster_columns()
        if columns is not None and not self._has_untracked_peers():
            values = self._current_cost_vector(columns)
            return {
                peer_id: float(value)
                for peer_id, value in zip(self._peer_order, values)
            }
        return {
            peer_id: self.cost_model.pcost(peer_id, configuration)
            for peer_id in configuration.peer_ids()
        }

    def social_cost(self, *, normalized: bool = False) -> float:
        """Social cost (Eq. 2) of the current configuration, fully vectorized.

        Falls back to the cost model's per-peer evaluation whenever a tracked
        peer is not in the single-cluster regime, so the result always agrees
        with :meth:`CostModel.social_cost` (up to float summation order).
        """
        columns = self._single_cluster_columns()
        if columns is None or self._has_untracked_peers():
            return self.cost_model.social_cost(self.configuration, normalized=normalized)
        total = float(self._current_cost_vector(columns).sum())
        if normalized:
            return total / self.cost_model.population_size
        return total

    def workload_cost(self, *, normalized: bool = False) -> float:
        """Workload cost (Eq. 3) of the current configuration, fully vectorized.

        The maintenance term is ``alpha * sum |c| * theta(|c|) / |P|`` over the
        live cluster-size vector; the recall term reads the lazily-built,
        incrementally-maintained covered-recall state (``CV = V @ M`` columns
        under the dense backend, per-cluster segmented reductions under the
        labels backend), replacing the per-peer Python loop of
        :meth:`CostModel.workload_cost` on the per-round trace path.  Falls
        back to the cost model whenever a tracked peer is outside the
        single-cluster regime, so the result always agrees with the reference
        (up to float summation order).
        """
        columns = self._single_cluster_columns()
        if columns is None or self._has_untracked_peers():
            return self.cost_model.workload_cost(self.configuration, normalized=normalized)
        sizes = self._sizes
        theta_table = self._theta_values(int(sizes.max()) if sizes.size else 0)
        maintenance = (
            self.cost_model.alpha
            * float((sizes * theta_table[sizes.astype(int)]).sum())
            / self.cost_model.population_size
        )
        if self.backend == "labels":
            self._ensure_global_tracking()
            loss = float((self._V_totals - self._global_covered_at(columns)).sum())
        else:
            covered = self.global_covered()
            rows = np.arange(columns.size)
            loss = float((self._V_totals - covered[rows, columns]).sum())
        if normalized:
            return maintenance / self.cost_model.population_size + loss
        return maintenance + loss

    # -- best responses --------------------------------------------------------

    class _Selection:
        """Arrays of one vectorized best-response evaluation (internal)."""

        __slots__ = (
            "candidates",
            "eligible",
            "fallback_rows",
            "current_columns",
            "current_costs",
            "best_columns",
            "best_costs",
            "use_new",
            "stay",
            "gains",
        )

    def _select(
        self,
        candidates: Sequence[ClusterId],
        *,
        include_new_cluster: bool,
        tolerance: float,
    ) -> "BestResponseKernel._Selection":
        """Vectorized best-response selection over every tracked peer.

        Mirrors the reference semantics bit for bit: global argmin over the
        candidate columns, a strictly-better-by-*tolerance* test for the
        fresh-cluster option, and "stay unless strictly better than the
        current cost".  Rows outside the single-cluster regime (or whose
        cluster is not a candidate) land in ``fallback_rows``.
        """
        columns = [self._cluster_index[cluster_id] for cluster_id in candidates]
        membership = self._membership_block(columns)
        costs = self._cost_table_for(membership, self._covered_block(columns), columns)
        counts_all = self._counts_all()
        assigned = counts_all > 0.0
        eligible = assigned & (counts_all == 1.0) & (membership.sum(axis=1) == 1.0)
        rows = np.arange(len(self._peer_order))
        current_columns = np.argmax(membership, axis=1)
        current_costs = costs[rows, current_columns]
        best_columns = np.argmin(costs, axis=1)
        best_costs = costs[rows, best_columns]
        if include_new_cluster:
            new_costs = self.new_cluster_costs()
            use_new = new_costs < best_costs - tolerance
            best_costs = np.where(use_new, new_costs, best_costs)
        else:
            use_new = np.zeros(rows.size, dtype=bool)
        stay = best_costs >= current_costs - tolerance
        selection = BestResponseKernel._Selection()
        selection.candidates = list(candidates)
        selection.eligible = eligible
        selection.fallback_rows = np.nonzero(assigned & ~eligible)[0]
        selection.current_columns = current_columns
        selection.current_costs = current_costs
        selection.best_columns = best_columns
        selection.best_costs = best_costs
        selection.use_new = use_new
        selection.stay = stay
        selection.gains = np.where(
            eligible & ~stay, current_costs - best_costs, 0.0
        )
        return selection

    def _response_for_row(
        self, row: int, selection: "BestResponseKernel._Selection"
    ) -> BestResponse:
        current_cluster = selection.candidates[int(selection.current_columns[row])]
        current_cost = float(selection.current_costs[row])
        if selection.stay[row]:
            best_cluster = current_cluster
            best_cost = current_cost
        elif selection.use_new[row]:
            best_cluster = NEW_CLUSTER
            best_cost = float(selection.best_costs[row])
        else:
            best_cluster = selection.candidates[int(selection.best_columns[row])]
            best_cost = float(selection.best_costs[row])
        return BestResponse(
            peer_id=self._peer_order[row],
            current_cluster=current_cluster,
            best_cluster=best_cluster,
            current_cost=current_cost,
            best_cost=best_cost,
        )

    def best_response_all(
        self,
        peer_ids: Optional[Iterable[PeerId]] = None,
        *,
        candidate_clusters: Optional[Sequence[ClusterId]] = None,
        include_new_cluster: bool = False,
        tolerance: float = 1e-12,
    ) -> Tuple[Dict[PeerId, BestResponse], List[PeerId]]:
        """Best response of every (requested) peer against the candidate set.

        Returns ``(responses, fallback_peers)``: *fallback_peers* lists peers
        the kernel cannot score (their current cluster lies outside the
        candidate set, or they joined several clusters) — the caller decides
        how to evaluate those (the game falls back to the scalar path,
        matching the reference implementation's behaviour exactly).
        """
        configuration = self.configuration
        candidates: List[ClusterId] = (
            list(candidate_clusters)
            if candidate_clusters is not None
            else configuration.nonempty_clusters()
        )
        candidates = [cluster_id for cluster_id in candidates if cluster_id != NEW_CLUSTER]
        wanted = set(peer_ids) if peer_ids is not None else None
        responses: Dict[PeerId, BestResponse] = {}
        if not candidates:
            return responses, [
                peer_id
                for peer_id in configuration.peer_ids()
                if wanted is None or peer_id in wanted
            ]
        selection = self._select(
            candidates, include_new_cluster=include_new_cluster, tolerance=tolerance
        )
        peer_order = self._peer_order
        fallback = [peer_order[row] for row in selection.fallback_rows]
        # Assigned peers outside the recall matrix cannot be scored here;
        # they belong to the caller's fallback path (where the reference
        # implementation's behaviour — including its errors — applies).
        fallback.extend(self._untracked_peers())
        for row in np.nonzero(selection.eligible)[0]:
            peer_id = peer_order[row]
            if wanted is not None and peer_id not in wanted:
                continue
            responses[peer_id] = self._response_for_row(int(row), selection)
        if wanted is not None:
            fallback = [peer_id for peer_id in fallback if peer_id in wanted]
        return responses, fallback

    def best_deviation(
        self,
        *,
        candidate_clusters: Optional[Sequence[ClusterId]] = None,
        include_new_cluster: bool = False,
        gain_tolerance: float = 1e-9,
        tolerance: float = 1e-12,
    ) -> Tuple[Optional[BestResponse], List[PeerId]]:
        """The single best deviation — ``max`` over ``(gain, repr(peer))``.

        This is the step rule of best-response dynamics; only the winning
        peer's :class:`BestResponse` is materialised, everything else stays
        in arrays.  Returns ``(winner_or_None, fallback_peers)`` — fallback
        peers (outside the single-cluster regime) must be evaluated by the
        caller and compared against the winner.
        """
        configuration = self.configuration
        candidates: List[ClusterId] = (
            list(candidate_clusters)
            if candidate_clusters is not None
            else configuration.nonempty_clusters()
        )
        candidates = [cluster_id for cluster_id in candidates if cluster_id != NEW_CLUSTER]
        if not candidates:
            return None, list(configuration.peer_ids())
        selection = self._select(
            candidates, include_new_cluster=include_new_cluster, tolerance=tolerance
        )
        fallback = [self._peer_order[row] for row in selection.fallback_rows]
        fallback.extend(self._untracked_peers())
        gains = selection.gains
        deviating = np.nonzero(gains > gain_tolerance)[0]
        if deviating.size == 0:
            return None, fallback
        best_gain = gains[deviating].max()
        tied_rows = deviating[gains[deviating] == best_gain]
        # max() over (gain, repr(peer_id)) breaks gain ties by largest repr.
        winner_row = max(tied_rows, key=lambda row: repr(self._peer_order[row]))
        return self._response_for_row(int(winner_row), selection), fallback

    def detach(self) -> None:
        """Stop listening to the configuration (the kernel becomes read-only)."""
        self.configuration.remove_listener(self)

    def __repr__(self) -> str:
        return (
            f"BestResponseKernel(peers={len(self._peer_order)}, "
            f"clusters={len(self._cluster_order)}, backend={self.backend}, "
            f"dtype={self.dtype}, stale={self.stale})"
        )
