"""Vectorized, incrementally-maintained best-response kernel.

The per-round hot loop of every experiment is "score all candidate clusters
for all peers".  The :class:`~repro.game.model.ClusterGame` reference path
rebuilds the membership matrix and the ``W @ M`` covered-recall product from
scratch on every call; at experiment scale that means re-doing a full GEMM
plus a Python per-peer loop hundreds of times per run even though each round
only moves a handful of peers.

:class:`BestResponseKernel` keeps the pieces of that computation as *live*
NumPy state tied to one :class:`~repro.peers.configuration.ClusterConfiguration`:

* ``M`` — the 0/1 membership matrix (peers x cluster slots),
* ``sizes`` — the cluster-size vector ``|c|``,
* ``CW = W @ M`` — the locally weighted covered-recall row sums over the
  :class:`~repro.core.recall_matrix.WeightedRecallMatrix` (the globally
  weighted analogue ``CV = V @ M`` is available through
  :meth:`BestResponseKernel.global_covered`, built lazily).

The kernel registers itself as a configuration listener, so every
``assign`` / ``move`` / ``remove_peer`` updates the caches in ``O(|P|)``
(one column add/subtract) instead of triggering an ``O(|P|^2 |C|)`` rebuild.
:meth:`best_response_all` then scores *all* candidates for *all* peers with
pure array arithmetic — including the :data:`~repro.core.costs.NEW_CLUSTER`
option — reproducing the reference per-candidate evaluation exactly (the
test suite pins the kernel to the exact per-query :class:`~repro.core.costs.CostModel`).

The kernel is used automatically by :meth:`ClusterGame.best_responses
<repro.game.model.ClusterGame.best_responses>` whenever a recall matrix is
attached; pass ``use_kernel=False`` to the game to force the reference path
(the ablation benchmark does exactly that).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.costs import NEW_CLUSTER, CostModel
from repro.errors import ConfigurationError
from repro.game.model import BestResponse
from repro.peers.configuration import ClusterConfiguration

__all__ = ["BestResponseKernel"]

PeerId = Hashable
ClusterId = Hashable


class BestResponseKernel:
    """Live vectorized cost state over one configuration and cost model.

    Parameters
    ----------
    cost_model:
        Cost model with an attached :class:`WeightedRecallMatrix` (required —
        the kernel *is* the matrix acceleration).
    configuration:
        The configuration whose membership the kernel mirrors.  The kernel
        subscribes to its mutation events; it stays consistent for as long as
        the underlying recall matrix describes the network (content changes
        require a fresh cost model and hence a fresh kernel, exactly like the
        matrix itself).
    """

    def __init__(self, cost_model: CostModel, configuration: ClusterConfiguration) -> None:
        matrix = cost_model.matrix
        if matrix is None:
            raise ConfigurationError(
                "BestResponseKernel requires a cost model with an attached WeightedRecallMatrix"
            )
        self.cost_model = cost_model
        self.configuration = configuration
        self._recall_matrix = matrix
        self._peer_order: List[PeerId] = matrix.peer_order
        self._peer_index: Dict[PeerId, int] = {
            peer_id: row for row, peer_id in enumerate(self._peer_order)
        }
        self._W = matrix.local_matrix()
        self._totals = self._W.sum(axis=1)
        self._own = np.ascontiguousarray(np.diag(self._W))
        self._theta_table = np.zeros(0, dtype=float)
        #: Set when the configuration gained a peer unknown to the recall
        #: matrix; the kernel can no longer answer for it and callers should
        #: fall back to the reference path.
        self.stale = False
        self._rebuild()
        configuration.add_listener(self)

    # -- state construction --------------------------------------------------

    def _rebuild(self) -> None:
        """(Re)build every cache from the configuration (O(|P|^2 |C|))."""
        self._cluster_order: List[ClusterId] = list(self.configuration.cluster_ids())
        self._cluster_index: Dict[ClusterId, int] = {
            cluster_id: column for column, cluster_id in enumerate(self._cluster_order)
        }
        membership, _ = self.configuration.membership_matrix(
            self._peer_order, self._cluster_order
        )
        self._M = membership
        self._sizes = membership.sum(axis=0)
        self._CW = self._W @ membership
        # The globally-weighted analogue (V @ M, backing the vectorized
        # workload cost) is built on first access and maintained thereafter.
        self._V: Optional[np.ndarray] = None
        self._CV: Optional[np.ndarray] = None
        self._V_totals: Optional[np.ndarray] = None

    def rebuild(self) -> None:
        """Public O(|P|^2 |C|) rebuild (used by tests to cross-check the incremental state).

        The stale flag is recomputed, not blindly cleared: a configuration
        still holding peers the recall matrix does not know stays stale.
        """
        self._rebuild()
        self.stale = self._has_untracked_peers()

    def _has_untracked_peers(self) -> bool:
        """Whether the configuration holds assigned peers outside the matrix."""
        tracked_assigned = int(np.count_nonzero(self._M.sum(axis=1)))
        return self.configuration.num_peers() != tracked_assigned

    def _untracked_peers(self) -> List[PeerId]:
        """Assigned peers the recall matrix (and hence the kernel) cannot score."""
        if not self._has_untracked_peers():
            return []
        return [
            peer_id
            for peer_id in self.configuration.peer_ids()
            if peer_id not in self._peer_index
        ]

    # -- configuration listener callbacks ------------------------------------

    def configuration_assigned(self, peer_id: PeerId, cluster_id: ClusterId) -> None:
        row = self._peer_index.get(peer_id)
        if row is None:
            self.stale = True
            return
        column = self._cluster_index.get(cluster_id)
        if column is None:
            column = self._add_cluster_column(cluster_id)
        self._M[row, column] = 1.0
        self._sizes[column] += 1.0
        self._CW[:, column] += self._W[:, row]
        if self._CV is not None:
            self._CV[:, column] += self._V[:, row]

    def configuration_unassigned(self, peer_id: PeerId, cluster_id: ClusterId) -> None:
        row = self._peer_index.get(peer_id)
        if row is None:
            return  # never tracked; nothing to undo
        column = self._cluster_index.get(cluster_id)
        if column is None:
            self.stale = True
            return
        self._M[row, column] = 0.0
        self._sizes[column] -= 1.0
        self._CW[:, column] -= self._W[:, row]
        if self._CV is not None:
            self._CV[:, column] -= self._V[:, row]

    def configuration_cluster_added(self, cluster_id: ClusterId) -> None:
        if cluster_id not in self._cluster_index:
            self._add_cluster_column(cluster_id)

    def _add_cluster_column(self, cluster_id: ClusterId) -> int:
        population = len(self._peer_order)
        column = len(self._cluster_order)
        self._cluster_order.append(cluster_id)
        self._cluster_index[cluster_id] = column
        self._M = np.hstack([self._M, np.zeros((population, 1))])
        self._sizes = np.append(self._sizes, 0.0)
        self._CW = np.hstack([self._CW, np.zeros((population, 1))])
        if self._CV is not None:
            self._CV = np.hstack([self._CV, np.zeros((population, 1))])
        return column

    # -- accessors ------------------------------------------------------------

    @property
    def peer_order(self) -> List[PeerId]:
        """The row ordering of peer ids (the recall matrix's order)."""
        return list(self._peer_order)

    def global_covered(self) -> np.ndarray:
        """``V @ M`` — globally-weighted covered recall per cluster column.

        Built lazily on first access (the best-response path never needs it)
        and incrementally maintained from then on; the raw material of
        :meth:`workload_cost`.
        """
        if self._CV is None:
            self._V = self._recall_matrix.global_matrix()
            self._CV = self._V @ self._M
            self._V_totals = self._V.sum(axis=1)
        return self._CV

    def membership_columns(
        self, cluster_order: Sequence[ClusterId]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(membership, sizes)`` restricted to *cluster_order* columns.

        The membership block is a copy (callers may scale it freely); the
        sizes are the live cluster sizes gathered in the same order.
        """
        columns = [self._cluster_index[cluster_id] for cluster_id in cluster_order]
        return self._M[:, columns].copy(), self._sizes[columns].copy()

    def _theta_values(self, max_size: int) -> np.ndarray:
        if max_size >= self._theta_table.size:
            theta = self.cost_model.theta
            self._theta_table = np.array(
                [theta(size) for size in range(max_size + 1)], dtype=float
            )
        return self._theta_table

    # -- vectorized cost evaluation -------------------------------------------

    def _cost_table_for(self, membership: np.ndarray, columns: Sequence[int]) -> np.ndarray:
        covered = self._CW[:, columns]
        own = self._own[:, None]
        own_counted = membership * own
        covered_adjusted = covered - own_counted + own
        losses = self._totals[:, None] - covered_adjusted
        effective_sizes = self._sizes[columns][None, :] + (1.0 - membership)
        max_size = int(effective_sizes.max()) if effective_sizes.size else 0
        theta_table = self._theta_values(max_size)
        membership_costs = (
            self.cost_model.alpha
            * theta_table[effective_sizes.astype(int)]
            / self.cost_model.population_size
        )
        return membership_costs + losses

    def cost_table(self, candidate_clusters: Sequence[ClusterId]) -> np.ndarray:
        """Prospective ``pcost`` of every peer against every candidate cluster.

        ``table[i, k]`` is the individual cost peer ``i`` would incur with the
        single-cluster strategy ``candidate_clusters[k]`` — clusters the peer
        does not belong to are evaluated "as if joined" (size + 1, its own
        content always reachable), exactly like
        :meth:`CostModel.prospective_pcost`.
        """
        columns = [self._cluster_index[cluster_id] for cluster_id in candidate_clusters]
        return self._cost_table_for(self._M[:, columns], columns)

    def new_cluster_costs(self) -> np.ndarray:
        """Cost of moving to a fresh, empty cluster, for every peer."""
        theta_one = float(self._theta_values(1)[1])
        membership = self.cost_model.alpha * theta_one / self.cost_model.population_size
        return membership + (self._totals - self._own)

    def _single_cluster_columns(self) -> Optional[np.ndarray]:
        """Column of each peer's single cluster, or ``None`` if any peer deviates.

        ``None`` means some tracked peer belongs to zero or several clusters
        (multi-membership is legal in the model but outside the vector fast
        path) — callers fall back to the per-peer reference evaluation.
        """
        counts = self._M.sum(axis=1)
        if counts.size == 0 or not np.all(counts == 1.0):
            return None
        return np.argmax(self._M, axis=1)

    def _current_cost_vector(self, columns: np.ndarray) -> np.ndarray:
        sizes = self._sizes[columns]
        theta_table = self._theta_values(int(sizes.max()) if sizes.size else 0)
        membership = (
            self.cost_model.alpha
            * theta_table[sizes.astype(int)]
            / self.cost_model.population_size
        )
        losses = self._totals - self._CW[np.arange(columns.size), columns]
        return membership + losses

    def current_costs(self) -> Dict[PeerId, float]:
        """``pcost`` of every assigned peer under its current strategy."""
        configuration = self.configuration
        columns = self._single_cluster_columns()
        if columns is not None and not self._has_untracked_peers():
            values = self._current_cost_vector(columns)
            return {
                peer_id: float(value)
                for peer_id, value in zip(self._peer_order, values)
            }
        return {
            peer_id: self.cost_model.pcost(peer_id, configuration)
            for peer_id in configuration.peer_ids()
        }

    def social_cost(self, *, normalized: bool = False) -> float:
        """Social cost (Eq. 2) of the current configuration, fully vectorized.

        Falls back to the cost model's per-peer evaluation whenever a tracked
        peer is not in the single-cluster regime, so the result always agrees
        with :meth:`CostModel.social_cost` (up to float summation order).
        """
        columns = self._single_cluster_columns()
        if columns is None or self._has_untracked_peers():
            return self.cost_model.social_cost(self.configuration, normalized=normalized)
        total = float(self._current_cost_vector(columns).sum())
        if normalized:
            return total / self.cost_model.population_size
        return total

    def workload_cost(self, *, normalized: bool = False) -> float:
        """Workload cost (Eq. 3) of the current configuration, fully vectorized.

        The maintenance term is ``alpha * sum |c| * theta(|c|) / |P|`` over the
        live cluster-size vector; the recall term reads the lazily-built,
        incrementally-maintained ``CV = V @ M`` product
        (:meth:`global_covered`), replacing the per-peer Python loop of
        :meth:`CostModel.workload_cost` on the per-round trace path.  Falls
        back to the cost model whenever a tracked peer is outside the
        single-cluster regime, so the result always agrees with the reference
        (up to float summation order).
        """
        columns = self._single_cluster_columns()
        if columns is None or self._has_untracked_peers():
            return self.cost_model.workload_cost(self.configuration, normalized=normalized)
        sizes = self._sizes
        theta_table = self._theta_values(int(sizes.max()) if sizes.size else 0)
        maintenance = (
            self.cost_model.alpha
            * float((sizes * theta_table[sizes.astype(int)]).sum())
            / self.cost_model.population_size
        )
        covered = self.global_covered()
        rows = np.arange(columns.size)
        loss = float((self._V_totals - covered[rows, columns]).sum())
        if normalized:
            return maintenance / self.cost_model.population_size + loss
        return maintenance + loss

    # -- best responses --------------------------------------------------------

    class _Selection:
        """Arrays of one vectorized best-response evaluation (internal)."""

        __slots__ = (
            "candidates",
            "eligible",
            "fallback_rows",
            "current_columns",
            "current_costs",
            "best_columns",
            "best_costs",
            "use_new",
            "stay",
            "gains",
        )

    def _select(
        self,
        candidates: Sequence[ClusterId],
        *,
        include_new_cluster: bool,
        tolerance: float,
    ) -> "BestResponseKernel._Selection":
        """Vectorized best-response selection over every tracked peer.

        Mirrors the reference semantics bit for bit: global argmin over the
        candidate columns, a strictly-better-by-*tolerance* test for the
        fresh-cluster option, and "stay unless strictly better than the
        current cost".  Rows outside the single-cluster regime (or whose
        cluster is not a candidate) land in ``fallback_rows``.
        """
        columns = [self._cluster_index[cluster_id] for cluster_id in candidates]
        membership = self._M[:, columns]
        costs = self._cost_table_for(membership, columns)
        counts_all = self._M.sum(axis=1)
        assigned = counts_all > 0.0
        eligible = assigned & (counts_all == 1.0) & (membership.sum(axis=1) == 1.0)
        rows = np.arange(len(self._peer_order))
        current_columns = np.argmax(membership, axis=1)
        current_costs = costs[rows, current_columns]
        best_columns = np.argmin(costs, axis=1)
        best_costs = costs[rows, best_columns]
        if include_new_cluster:
            new_costs = self.new_cluster_costs()
            use_new = new_costs < best_costs - tolerance
            best_costs = np.where(use_new, new_costs, best_costs)
        else:
            use_new = np.zeros(rows.size, dtype=bool)
        stay = best_costs >= current_costs - tolerance
        selection = BestResponseKernel._Selection()
        selection.candidates = list(candidates)
        selection.eligible = eligible
        selection.fallback_rows = np.nonzero(assigned & ~eligible)[0]
        selection.current_columns = current_columns
        selection.current_costs = current_costs
        selection.best_columns = best_columns
        selection.best_costs = best_costs
        selection.use_new = use_new
        selection.stay = stay
        selection.gains = np.where(
            eligible & ~stay, current_costs - best_costs, 0.0
        )
        return selection

    def _response_for_row(
        self, row: int, selection: "BestResponseKernel._Selection"
    ) -> BestResponse:
        current_cluster = selection.candidates[int(selection.current_columns[row])]
        current_cost = float(selection.current_costs[row])
        if selection.stay[row]:
            best_cluster = current_cluster
            best_cost = current_cost
        elif selection.use_new[row]:
            best_cluster = NEW_CLUSTER
            best_cost = float(selection.best_costs[row])
        else:
            best_cluster = selection.candidates[int(selection.best_columns[row])]
            best_cost = float(selection.best_costs[row])
        return BestResponse(
            peer_id=self._peer_order[row],
            current_cluster=current_cluster,
            best_cluster=best_cluster,
            current_cost=current_cost,
            best_cost=best_cost,
        )

    def best_response_all(
        self,
        peer_ids: Optional[Iterable[PeerId]] = None,
        *,
        candidate_clusters: Optional[Sequence[ClusterId]] = None,
        include_new_cluster: bool = False,
        tolerance: float = 1e-12,
    ) -> Tuple[Dict[PeerId, BestResponse], List[PeerId]]:
        """Best response of every (requested) peer against the candidate set.

        Returns ``(responses, fallback_peers)``: *fallback_peers* lists peers
        the kernel cannot score (their current cluster lies outside the
        candidate set, or they joined several clusters) — the caller decides
        how to evaluate those (the game falls back to the scalar path,
        matching the reference implementation's behaviour exactly).
        """
        configuration = self.configuration
        candidates: List[ClusterId] = (
            list(candidate_clusters)
            if candidate_clusters is not None
            else configuration.nonempty_clusters()
        )
        candidates = [cluster_id for cluster_id in candidates if cluster_id != NEW_CLUSTER]
        wanted = set(peer_ids) if peer_ids is not None else None
        responses: Dict[PeerId, BestResponse] = {}
        if not candidates:
            return responses, [
                peer_id
                for peer_id in configuration.peer_ids()
                if wanted is None or peer_id in wanted
            ]
        selection = self._select(
            candidates, include_new_cluster=include_new_cluster, tolerance=tolerance
        )
        peer_order = self._peer_order
        fallback = [peer_order[row] for row in selection.fallback_rows]
        # Assigned peers outside the recall matrix cannot be scored here;
        # they belong to the caller's fallback path (where the reference
        # implementation's behaviour — including its errors — applies).
        fallback.extend(self._untracked_peers())
        for row in np.nonzero(selection.eligible)[0]:
            peer_id = peer_order[row]
            if wanted is not None and peer_id not in wanted:
                continue
            responses[peer_id] = self._response_for_row(int(row), selection)
        if wanted is not None:
            fallback = [peer_id for peer_id in fallback if peer_id in wanted]
        return responses, fallback

    def best_deviation(
        self,
        *,
        candidate_clusters: Optional[Sequence[ClusterId]] = None,
        include_new_cluster: bool = False,
        gain_tolerance: float = 1e-9,
        tolerance: float = 1e-12,
    ) -> Tuple[Optional[BestResponse], List[PeerId]]:
        """The single best deviation — ``max`` over ``(gain, repr(peer))``.

        This is the step rule of best-response dynamics; only the winning
        peer's :class:`BestResponse` is materialised, everything else stays
        in arrays.  Returns ``(winner_or_None, fallback_peers)`` — fallback
        peers (outside the single-cluster regime) must be evaluated by the
        caller and compared against the winner.
        """
        configuration = self.configuration
        candidates: List[ClusterId] = (
            list(candidate_clusters)
            if candidate_clusters is not None
            else configuration.nonempty_clusters()
        )
        candidates = [cluster_id for cluster_id in candidates if cluster_id != NEW_CLUSTER]
        if not candidates:
            return None, list(configuration.peer_ids())
        selection = self._select(
            candidates, include_new_cluster=include_new_cluster, tolerance=tolerance
        )
        fallback = [self._peer_order[row] for row in selection.fallback_rows]
        fallback.extend(self._untracked_peers())
        gains = selection.gains
        deviating = np.nonzero(gains > gain_tolerance)[0]
        if deviating.size == 0:
            return None, fallback
        best_gain = gains[deviating].max()
        tied_rows = deviating[gains[deviating] == best_gain]
        # max() over (gain, repr(peer_id)) breaks gain ties by largest repr.
        winner_row = max(tied_rows, key=lambda row: repr(self._peer_order[row]))
        return self._response_for_row(int(winner_row), selection), fallback

    def detach(self) -> None:
        """Stop listening to the configuration (the kernel becomes read-only)."""
        self.configuration.remove_listener(self)

    def __repr__(self) -> str:
        return (
            f"BestResponseKernel(peers={len(self._peer_order)}, "
            f"clusters={len(self._cluster_order)}, stale={self.stale})"
        )
