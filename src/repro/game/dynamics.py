"""Best-response dynamics.

The reformulation protocol of Section 3.2 is a coordinated, round-based way
of letting peers play the game.  As an analysis baseline (and to study
convergence in the abstract), this module provides uncoordinated
*best-response dynamics*: repeatedly pick a peer with a profitable deviation
and apply it.  The paper's Section 2.3 shows such dynamics need not converge
(no pure Nash equilibrium may exist), so the driver records whether it
stopped at an equilibrium or hit its step budget / detected a cycle.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.core.costs import NEW_CLUSTER
from repro.game.model import ClusterGame

__all__ = ["BestResponseStep", "BestResponseResult", "run_best_response_dynamics"]

PeerId = Hashable
ClusterId = Hashable


@dataclass(frozen=True)
class BestResponseStep:
    """One applied deviation: *peer_id* moved from *from_cluster* to *to_cluster* gaining *gain*."""

    step: int
    peer_id: PeerId
    from_cluster: ClusterId
    to_cluster: ClusterId
    gain: float


@dataclass
class BestResponseResult:
    """Outcome of a best-response dynamics run."""

    converged: bool
    reached_equilibrium: bool
    cycle_detected: bool
    steps: List[BestResponseStep] = field(default_factory=list)
    social_cost_trace: List[float] = field(default_factory=list)

    @property
    def num_steps(self) -> int:
        """Number of applied deviations."""
        return len(self.steps)


def run_best_response_dynamics(
    game: ClusterGame,
    *,
    max_steps: int = 1000,
    tolerance: float = 1e-9,
    detect_cycles: bool = True,
) -> BestResponseResult:
    """Run sequential best-response dynamics on *game*, mutating its configuration.

    At each step the deviating peer with the **largest** gain moves (a common
    deterministic scheduling that matches the protocol's "highest gain first"
    spirit).  The run stops when no peer gains more than *tolerance*, when a
    previously-seen configuration repeats (a best-response cycle, possible
    because no equilibrium may exist), or when *max_steps* is exhausted.
    """
    configuration = game.configuration
    result = BestResponseResult(converged=False, reached_equilibrium=False, cycle_detected=False)
    seen_signatures: Set[Tuple] = set()

    def social_cost() -> float:
        # The kernel keeps the per-peer cost vector live across moves; the
        # cost-model path recomputes it peer by peer.  Re-fetched every step
        # so a kernel that goes stale mid-run is dropped automatically.
        kernel = game._active_kernel()
        if kernel is not None:
            return kernel.social_cost(normalized=True)
        return game.social_cost(normalized=True)

    result.social_cost_trace.append(social_cost())
    if detect_cycles:
        seen_signatures.add(configuration.signature())

    for step in range(max_steps):
        best = game.best_deviation(tolerance=tolerance)
        if best is None:
            result.converged = True
            result.reached_equilibrium = True
            return result
        target: Optional[ClusterId] = best.best_cluster
        if target == NEW_CLUSTER:
            empties = configuration.empty_clusters()
            if not empties:
                # No free slot: the deviation cannot be applied; treat as converged.
                result.converged = True
                result.reached_equilibrium = False
                return result
            target = empties[0]
        configuration.move(best.peer_id, best.current_cluster, target)
        result.steps.append(
            BestResponseStep(
                step=step,
                peer_id=best.peer_id,
                from_cluster=best.current_cluster,
                to_cluster=target,
                gain=best.gain,
            )
        )
        result.social_cost_trace.append(social_cost())
        if detect_cycles:
            signature = configuration.signature()
            if signature in seen_signatures:
                result.cycle_detected = True
                result.converged = False
                return result
            seen_signatures.add(signature)

    result.converged = False
    return result
