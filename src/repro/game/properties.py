"""Structural properties of the cost model (Property 1 of the paper).

Property 1: if every peer issues an equal share of the global query workload,
``num(Q(p_i)) = num(Q) / |P|`` for all peers, then the recall parts of the
social cost and the workload cost are proportional to each other (with factor
``1 / |P|``), so improving one improves the other.

The helpers here check the premise for a network and compute the two cost
decompositions so the relationship can be verified numerically (the test
suite and an ablation benchmark exercise both the uniform and the skewed
case).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.costs import CostModel
from repro.peers.configuration import ClusterConfiguration
from repro.peers.network import PeerNetwork

__all__ = ["CostDecomposition", "workload_is_uniform", "decompose_costs", "property1_holds"]


@dataclass(frozen=True)
class CostDecomposition:
    """Membership and recall components of the social and workload costs."""

    social_membership: float
    social_recall: float
    workload_membership: float
    workload_recall: float

    @property
    def social_total(self) -> float:
        """Full social cost (Eq. 2)."""
        return self.social_membership + self.social_recall

    @property
    def workload_total(self) -> float:
        """Full workload cost (Eq. 3)."""
        return self.workload_membership + self.workload_recall


def workload_is_uniform(network: PeerNetwork) -> bool:
    """``True`` when every peer issues the same number of queries (Property 1's premise)."""
    totals = {peer.peer_id: peer.workload.total() for peer in network.peers()}
    values = set(totals.values())
    return len(values) <= 1


def decompose_costs(cost_model: CostModel, configuration: ClusterConfiguration) -> CostDecomposition:
    """Split the social and workload costs into membership and recall components."""
    peer_ids = cost_model.recall_model.peer_ids

    social_membership = 0.0
    social_recall = 0.0
    workload_recall = 0.0
    for peer_id in peer_ids:
        clusters = configuration.clusters_of(peer_id)
        sizes = [configuration.size(cluster_id) for cluster_id in clusters]
        covered = set(configuration.covered_peers(peer_id))
        covered.add(peer_id)
        social_membership += cost_model.membership_cost(sizes)
        social_recall += cost_model.recall_loss(peer_id, covered)
        workload_recall += cost_model.global_recall_loss(peer_id, covered)

    workload_membership = 0.0
    for cluster_id in configuration.cluster_ids():
        size = configuration.size(cluster_id)
        workload_membership += size * cost_model.theta(size)
    workload_membership = cost_model.alpha * workload_membership / cost_model.population_size

    return CostDecomposition(
        social_membership=social_membership,
        social_recall=social_recall,
        workload_membership=workload_membership,
        workload_recall=workload_recall,
    )


def property1_holds(
    cost_model: CostModel,
    configuration: ClusterConfiguration,
    network: PeerNetwork,
    *,
    tolerance: float = 1e-9,
) -> bool:
    """Check Property 1 numerically.

    When the workload is uniformly spread over peers, the recall component of
    the workload cost must equal the recall component of the social cost
    scaled by ``1 / |P|`` (each peer holds ``num(Q)/|P|`` of the queries,
    hence ``num(q, Q(p))/num(Q) = num(q, Q(p))/(|P| * num(Q(p)))``).
    """
    if not workload_is_uniform(network):
        return False
    decomposition = decompose_costs(cost_model, configuration)
    expected_workload_recall = decomposition.social_recall / len(network)
    return abs(decomposition.workload_recall - expected_workload_recall) <= tolerance
