"""Game-theoretic layer: the cluster-formulation game, dynamics and equilibrium analysis."""

from repro.game.dynamics import BestResponseResult, BestResponseStep, run_best_response_dynamics
from repro.game.equilibrium import (
    CounterexampleInstance,
    build_two_peer_counterexample,
    enumerate_single_cluster_configurations,
    find_pure_nash_equilibria,
)
from repro.game.kernel import BestResponseKernel
from repro.game.model import BestResponse, ClusterGame
from repro.game.properties import (
    CostDecomposition,
    decompose_costs,
    property1_holds,
    workload_is_uniform,
)

__all__ = [
    "ClusterGame",
    "BestResponse",
    "BestResponseKernel",
    "BestResponseResult",
    "BestResponseStep",
    "run_best_response_dynamics",
    "CounterexampleInstance",
    "build_two_peer_counterexample",
    "enumerate_single_cluster_configurations",
    "find_pure_nash_equilibria",
    "CostDecomposition",
    "decompose_costs",
    "property1_holds",
    "workload_is_uniform",
]
