"""Equilibrium analysis, including the paper's two-peer counterexample.

Section 2.3 of the paper shows that a pure Nash equilibrium does not always
exist: with two peers ``p1`` and ``p2``, where ``Q(p1)`` consists of a single
query ``q1`` satisfied (only) by ``p2`` and ``Q(p2)`` consists of ``q2`` also
satisfied only by ``p2``, a linear ``theta`` and any ``alpha > 0``, none of
the three possible single-cluster configurations is stable:

* ``{p1} | {p2}``: ``pcost(p1) = alpha/2 + 1`` — p1 gains by joining p2;
* both peers together: ``pcost(p2) = alpha`` — p2 gains by moving to an
  empty cluster (its own query is satisfied by itself);
* the symmetric split behaves like the first case.

This module builds that instance programmatically and provides generic
helpers to enumerate configurations and search for equilibria in small games.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from dataclasses import dataclass
from itertools import product
from typing import Dict, List

from repro.core.costs import CostModel
from repro.core.documents import Document
from repro.core.queries import Query
from repro.core.theta import LinearTheta
from repro.game.model import ClusterGame
from repro.peers.configuration import ClusterConfiguration
from repro.peers.network import PeerNetwork
from repro.peers.peer import Peer

__all__ = [
    "CounterexampleInstance",
    "build_two_peer_counterexample",
    "enumerate_single_cluster_configurations",
    "find_pure_nash_equilibria",
]

PeerId = Hashable


@dataclass
class CounterexampleInstance:
    """The two-peer instance of Section 2.3 plus its cost model."""

    network: PeerNetwork
    cost_model: CostModel
    alpha: float

    def configurations(self) -> Dict[str, ClusterConfiguration]:
        """The three distinct single-cluster configurations of the instance."""
        peer_ids = self.network.peer_ids()
        split = ClusterConfiguration(["c1", "c2"], {peer_ids[0]: "c1", peer_ids[1]: "c2"})
        split_mirrored = ClusterConfiguration(["c1", "c2"], {peer_ids[0]: "c2", peer_ids[1]: "c1"})
        together = ClusterConfiguration(["c1", "c2"], {peer_ids[0]: "c1", peer_ids[1]: "c1"})
        return {"split": split, "split_mirrored": split_mirrored, "together": together}

    def has_pure_nash_equilibrium(self) -> bool:
        """``True`` if any of the three configurations is a Nash equilibrium."""
        for configuration in self.configurations().values():
            game = ClusterGame(self.cost_model, configuration, allow_new_clusters=True)
            if game.is_nash_equilibrium():
                return True
        return False


def build_two_peer_counterexample(*, alpha: float = 1.0) -> CounterexampleInstance:
    """Build the paper's two-peer no-equilibrium instance for a given ``alpha > 0``.

    Peer ``p2`` holds one document matching both queries; peer ``p1`` holds an
    unrelated document matching neither query.  ``Q(p1) = [q1]`` and
    ``Q(p2) = [q2]``, both satisfied solely by ``p2``.
    """
    if alpha <= 0:
        raise ValueError(f"the counterexample requires alpha > 0, got {alpha}")
    query_one = Query(["music"])
    query_two = Query(["movies"])
    peer_one = Peer("p1", documents=[Document(["gardening"], doc_id="d1", category="other")])
    peer_two = Peer(
        "p2",
        documents=[Document(["music", "movies"], doc_id="d2", category="media")],
    )
    peer_one.issue_query(query_one)
    peer_two.issue_query(query_two)
    network = PeerNetwork([peer_one, peer_two])
    cost_model = network.cost_model(theta=LinearTheta(), alpha=alpha, use_matrix=False)
    return CounterexampleInstance(network=network, cost_model=cost_model, alpha=alpha)


def enumerate_single_cluster_configurations(
    peer_ids: Sequence[PeerId],
    cluster_ids: Sequence[Hashable],
) -> List[ClusterConfiguration]:
    """All assignments of each peer to exactly one cluster (``|C| ** |P|`` configurations).

    Only practical for tiny instances; intended for exhaustive equilibrium
    search in tests and analysis.
    """
    configurations = []
    for assignment in product(cluster_ids, repeat=len(peer_ids)):
        configuration = ClusterConfiguration(
            cluster_ids, {peer_id: cluster for peer_id, cluster in zip(peer_ids, assignment)}
        )
        configurations.append(configuration)
    return configurations


def find_pure_nash_equilibria(
    cost_model: CostModel,
    peer_ids: Sequence[PeerId],
    cluster_ids: Sequence[Hashable],
    *,
    allow_new_clusters: bool = True,
    tolerance: float = 1e-9,
) -> List[ClusterConfiguration]:
    """Exhaustively search the single-cluster strategy space for pure Nash equilibria."""
    equilibria = []
    seen: set = set()
    for configuration in enumerate_single_cluster_configurations(peer_ids, cluster_ids):
        signature = configuration.signature()
        if signature in seen:
            continue
        seen.add(signature)
        game = ClusterGame(cost_model, configuration, allow_new_clusters=allow_new_clusters)
        if game.is_nash_equilibrium(tolerance=tolerance):
            equilibria.append(configuration)
    return equilibria
