"""The cluster-formulation game.

Each peer is a player; its strategy is the set of clusters it joins (here,
as in the paper's protocol and experiments, a single cluster); its cost is
the individual cost of Eq. 1.  :class:`ClusterGame` ties a cost model to a
configuration and answers the game-theoretic questions the paper asks:

* what is a peer's best response to the current configuration,
* how much would it gain by deviating (``pgain``),
* is the configuration a pure Nash equilibrium.

The game supports moving to any existing cluster **or** to a fresh empty
cluster (the :data:`~repro.core.costs.NEW_CLUSTER` option), which is how the
cluster-creation rule of Section 3.2 enters the model.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.costs import NEW_CLUSTER, CostModel
from repro.peers.configuration import ClusterConfiguration

__all__ = ["BestResponse", "ClusterGame"]

PeerId = Hashable
ClusterId = Hashable


@dataclass(frozen=True)
class BestResponse:
    """The outcome of a best-response computation for one peer.

    Attributes
    ----------
    peer_id:
        The deviating peer.
    current_cluster:
        The cluster the peer currently belongs to.
    best_cluster:
        The cluster minimising the peer's prospective individual cost
        (may equal ``current_cluster``, or be :data:`NEW_CLUSTER`).
    current_cost:
        ``pcost`` under the current strategy.
    best_cost:
        ``pcost`` under the best response.
    """

    peer_id: PeerId
    current_cluster: ClusterId
    best_cluster: ClusterId
    current_cost: float
    best_cost: float

    @property
    def gain(self) -> float:
        """``pgain``: the cost reduction obtained by deviating (>= 0 by construction)."""
        return self.current_cost - self.best_cost

    @property
    def wants_to_move(self) -> bool:
        """``True`` when the best response differs from the current cluster with positive gain."""
        return self.best_cluster != self.current_cluster and self.gain > 0.0


class ClusterGame:
    """Game-theoretic view over a cost model and a cluster configuration.

    When the cost model has a :class:`WeightedRecallMatrix` attached, batch
    evaluations (:meth:`best_responses`, :meth:`prospective_cost_table`) run
    on a :class:`~repro.game.kernel.BestResponseKernel` — incrementally
    maintained vectorized state shared across rounds.  Long-lived drivers
    (the reformulation protocol) build one kernel and pass it to every
    per-round game through the ``kernel`` parameter; short-lived games build
    their own lazily.  ``use_kernel=False`` forces the reference
    (rebuild-everything) path, which the ablation benchmark times against
    the kernel.
    """

    def __init__(
        self,
        cost_model: CostModel,
        configuration: ClusterConfiguration,
        *,
        allow_new_clusters: bool = True,
        candidate_clusters: Optional[Iterable[ClusterId]] = None,
        kernel: Optional["object"] = None,
        use_kernel: bool = True,
        kernel_backend: Optional[str] = None,
        kernel_dtype: Optional[str] = None,
    ) -> None:
        self.cost_model = cost_model
        self.configuration = configuration
        self.allow_new_clusters = allow_new_clusters
        self._candidate_clusters = (
            list(candidate_clusters) if candidate_clusters is not None else None
        )
        self.use_kernel = use_kernel
        self.kernel_backend = kernel_backend
        self.kernel_dtype = kernel_dtype
        self._kernel = kernel

    @property
    def kernel(self):
        """The game's :class:`BestResponseKernel`, or ``None`` when unavailable.

        Built lazily on first use when a recall matrix is attached; a kernel
        that went stale (the configuration gained a peer the matrix does not
        know) is discarded and the reference path takes over.
        """
        if not self.use_kernel:
            return None
        if self._kernel is None and self.cost_model.matrix is not None:
            from repro.game.kernel import BestResponseKernel

            self._kernel = BestResponseKernel(
                self.cost_model,
                self.configuration,
                backend=self.kernel_backend or "auto",
                dtype=self.kernel_dtype,
            )
        if self._kernel is not None and getattr(self._kernel, "stale", False):
            return None
        return self._kernel

    # -- candidate strategies ----------------------------------------------------

    def candidate_clusters(self, peer_id: PeerId) -> List[ClusterId]:
        """Clusters the peer may consider moving to.

        By default these are all non-empty clusters plus (at most) one empty
        slot when new-cluster creation is allowed.  An explicit candidate
        list (e.g. "non-empty clusters only", used by the Section 4.2
        experiments where the number of clusters is kept fixed) overrides
        the default.
        """
        if self._candidate_clusters is not None:
            return list(self._candidate_clusters)
        candidates = list(self.configuration.nonempty_clusters())
        if self.allow_new_clusters and self.configuration.empty_clusters():
            candidates.append(NEW_CLUSTER)
        return candidates

    # -- per-peer analysis ----------------------------------------------------------

    def current_cost(self, peer_id: PeerId) -> float:
        """``pcost`` of *peer_id* under the current configuration."""
        return self.cost_model.pcost(peer_id, self.configuration)

    def prospective_cost(self, peer_id: PeerId, cluster_id: ClusterId) -> float:
        """``pcost`` of *peer_id* if it relocated to *cluster_id*."""
        return self.cost_model.prospective_pcost(peer_id, cluster_id, self.configuration)

    def cost_by_cluster(self, peer_id: PeerId) -> Dict[ClusterId, float]:
        """Prospective ``pcost`` of *peer_id* for every candidate cluster."""
        return {
            cluster_id: self.prospective_cost(peer_id, cluster_id)
            for cluster_id in self.candidate_clusters(peer_id)
        }

    def best_response(self, peer_id: PeerId) -> BestResponse:
        """The cluster minimising the prospective cost of *peer_id* (Eq. 5)."""
        current_cluster = self.configuration.cluster_of(peer_id)
        current_cost = self.current_cost(peer_id)
        best_cluster = current_cluster
        best_cost = current_cost
        for cluster_id in self.candidate_clusters(peer_id):
            if cluster_id == current_cluster:
                continue
            cost = self.prospective_cost(peer_id, cluster_id)
            if cost < best_cost - 1e-12:
                best_cost = cost
                best_cluster = cluster_id
        return BestResponse(
            peer_id=peer_id,
            current_cluster=current_cluster,
            best_cluster=best_cluster,
            current_cost=current_cost,
            best_cost=best_cost,
        )

    def pgain(self, peer_id: PeerId) -> float:
        """``pgain`` of the peer's best response (0 when staying is optimal)."""
        return self.best_response(peer_id).gain

    # -- vectorised evaluation ----------------------------------------------------

    def prospective_cost_table(
        self,
    ) -> Tuple[List[PeerId], List[ClusterId], "np.ndarray"]:
        """Prospective ``pcost`` of every peer against every candidate cluster, vectorised.

        Requires the cost model to have a :class:`WeightedRecallMatrix`
        attached.  Returns ``(peer_order, cluster_order, costs)`` where
        ``costs[i, k]`` is the individual cost peer ``i`` would incur with the
        single-cluster strategy ``cluster_order[k]`` (clusters the peer does
        not currently belong to are evaluated "as if joined": size + 1).

        The table is exactly what :meth:`prospective_cost` computes per pair;
        the equivalence is asserted by the test suite.  When a kernel is
        active the table comes from its incrementally maintained caches,
        otherwise everything is rebuilt from the matrix (the reference path).
        """
        matrix = self.cost_model.matrix
        if matrix is None:
            raise ValueError("prospective_cost_table requires an attached WeightedRecallMatrix")
        peer_order = matrix.peer_order
        candidate_order, _ = self._candidate_set(peer_order)
        kernel = self._active_kernel()
        if kernel is not None:
            return peer_order, list(candidate_order), kernel.cost_table(candidate_order)
        membership, cluster_order = self.configuration.membership_matrix(
            peer_order, candidate_order
        )
        losses = matrix.loss_matrix_for_clusters(membership)
        sizes = membership.sum(axis=0)
        # Effective cluster size seen by each peer: +1 when it would join.
        effective_sizes = sizes[None, :] + (1.0 - membership)
        max_size = int(effective_sizes.max()) if effective_sizes.size else 0
        theta_table = np.array(
            [self.cost_model.theta(size) for size in range(max_size + 1)], dtype=float
        )
        membership_costs = (
            self.cost_model.alpha
            * theta_table[effective_sizes.astype(int)]
            / self.cost_model.population_size
        )
        return peer_order, cluster_order, membership_costs + losses

    def _active_kernel(self):
        """The kernel when it is usable for *this* game's configuration."""
        kernel = self.kernel
        if kernel is not None and kernel.configuration is not self.configuration:
            return None
        return kernel

    def _candidate_set(self, peer_order) -> Tuple[List[ClusterId], bool]:
        """``(candidates without NEW_CLUSTER, whether a fresh cluster is in play)``.

        The single source of the batch paths' candidate semantics — the
        vectorized table covers the existing clusters, the fresh-cluster
        option is handled as a separate column when creation is allowed and
        an empty slot exists.
        """
        candidates = [
            cluster_id
            for cluster_id in self.candidate_clusters(peer_order[0] if peer_order else None)
            if cluster_id != NEW_CLUSTER
        ]
        include_new = self.allow_new_clusters and bool(self.configuration.empty_clusters())
        return candidates, include_new

    def best_responses(self, *, tolerance: float = 1e-12) -> Dict[PeerId, BestResponse]:
        """Best response of every peer, using the kernel / vectorised table when available."""
        if self.cost_model.matrix is None:
            return {
                peer_id: self.best_response(peer_id)
                for peer_id in self.configuration.peer_ids()
            }
        kernel = self._active_kernel()
        if kernel is not None:
            candidates, include_new = self._candidate_set(kernel.peer_order)
            responses, fallback_peers = kernel.best_response_all(
                candidate_clusters=candidates,
                include_new_cluster=include_new,
                tolerance=tolerance,
            )
            for peer_id in fallback_peers:
                responses[peer_id] = self.best_response(peer_id)
            return responses
        peer_order, cluster_order, costs = self.prospective_cost_table()
        include_new = self.allow_new_clusters and bool(self.configuration.empty_clusters())
        responses: Dict[PeerId, BestResponse] = {}
        cluster_index = {cluster_id: column for column, cluster_id in enumerate(cluster_order)}
        for row, peer_id in enumerate(peer_order):
            if peer_id not in self.configuration:
                continue
            current_cluster = self.configuration.cluster_of(peer_id)
            current_column = cluster_index.get(current_cluster)
            if current_column is None:
                # The peer's cluster is outside the candidate set (possible
                # when an explicit candidate list is used); fall back.
                responses[peer_id] = self.best_response(peer_id)
                continue
            current_cost = float(costs[row, current_column])
            best_column = int(np.argmin(costs[row]))
            best_cost = float(costs[row, best_column])
            best_cluster = cluster_order[best_column]
            if include_new:
                new_cost = self.cost_model.prospective_pcost(
                    peer_id, NEW_CLUSTER, self.configuration
                )
                if new_cost < best_cost - tolerance:
                    best_cost = new_cost
                    best_cluster = NEW_CLUSTER
            if best_cost >= current_cost - tolerance:
                best_cluster = current_cluster
                best_cost = current_cost
            responses[peer_id] = BestResponse(
                peer_id=peer_id,
                current_cluster=current_cluster,
                best_cluster=best_cluster,
                current_cost=current_cost,
                best_cost=best_cost,
            )
        return responses

    # -- global analysis ---------------------------------------------------------------

    def is_nash_equilibrium(self, *, tolerance: float = 1e-9) -> bool:
        """``True`` when no peer can reduce its cost by more than *tolerance* by deviating."""
        return self.best_deviation(tolerance=tolerance) is None

    def deviating_peers(self, *, tolerance: float = 1e-9) -> List[BestResponse]:
        """Best responses of every peer that strictly gains by deviating."""
        responses = self.best_responses()
        deviations = []
        for peer_id in self.configuration.peer_ids():
            response = responses.get(peer_id) or self.best_response(peer_id)
            if response.gain > tolerance:
                deviations.append(response)
        return deviations

    def best_deviation(self, *, tolerance: float = 1e-9) -> Optional[BestResponse]:
        """The most profitable deviation, or ``None`` at a (tolerance-)equilibrium.

        Ties in gain break towards the largest ``repr(peer_id)`` — the same
        rule as ``max(deviating_peers(), key=lambda r: (r.gain, repr(r.peer_id)))``,
        which this replaces on the best-response-dynamics hot path.  With a
        kernel only the winning response is materialised.
        """
        kernel = self._active_kernel()
        if kernel is not None:
            candidates, include_new = self._candidate_set(kernel.peer_order)
            best, fallback_peers = kernel.best_deviation(
                candidate_clusters=candidates,
                include_new_cluster=include_new,
                gain_tolerance=tolerance,
            )
            for peer_id in fallback_peers:
                response = self.best_response(peer_id)
                if response.gain <= tolerance:
                    continue
                if best is None or (response.gain, repr(response.peer_id)) > (
                    best.gain,
                    repr(best.peer_id),
                ):
                    best = response
            return best
        deviations = self.deviating_peers(tolerance=tolerance)
        if not deviations:
            return None
        return max(deviations, key=lambda response: (response.gain, repr(response.peer_id)))

    def social_cost(self, *, normalized: bool = False) -> float:
        """Social cost of the current configuration."""
        return self.cost_model.social_cost(self.configuration, normalized=normalized)

    def workload_cost(self, *, normalized: bool = False) -> float:
        """Workload cost of the current configuration."""
        return self.cost_model.workload_cost(self.configuration, normalized=normalized)

    def __repr__(self) -> str:
        return f"ClusterGame(peers={len(self.configuration.peer_ids())}, {self.configuration!r})"
