"""Relocation requests exchanged between cluster representatives.

During the first phase of a protocol round, every peer reports its gain to
its cluster representative; the representative keeps only the request with
the highest gain in its cluster and advertises it to the other
representatives.  A request therefore always identifies the source cluster,
the target cluster, the relocating peer and the gain that justified it.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass

from repro.strategies.base import RelocationProposal

__all__ = ["RelocationRequest"]

PeerId = Hashable
ClusterId = Hashable


@dataclass(frozen=True)
class RelocationRequest:
    """A relocation request advertised by a cluster representative."""

    source_cluster: ClusterId
    target_cluster: ClusterId
    peer_id: PeerId
    gain: float

    @classmethod
    def from_proposal(cls, proposal: RelocationProposal) -> "RelocationRequest":
        """Build a request from a strategy proposal."""
        return cls(
            source_cluster=proposal.source_cluster,
            target_cluster=proposal.target_cluster,
            peer_id=proposal.peer_id,
            gain=proposal.gain,
        )

    def sort_key(self) -> tuple:
        """Deterministic ordering key: decreasing gain, then stable tie-breaking."""
        return (-self.gain, repr(self.source_cluster), repr(self.peer_id))

    def __repr__(self) -> str:
        return (
            f"RelocationRequest(peer={self.peer_id!r}, {self.source_cluster!r} -> "
            f"{self.target_cluster!r}, gain={self.gain:.6f})"
        )
