"""The periodic cluster reformulation protocol (Section 3.2).

:class:`ReformulationProtocol` drives rounds until either no peer issues a
relocation request any more (the paper's stop condition), a configuration
repeats (a cycle — the game need not have an equilibrium), or a round budget
is exhausted.  It records the social and workload cost after every round so
that Figure 1 can be regenerated directly from a run.

Two behaviours of the paper are configurable:

* **gain threshold ε** — a peer only issues a request if its gain exceeds ε;
* **cluster creation** — a peer whose cost increased significantly since the
  previous period and that cannot improve by joining any existing cluster may
  move to an empty cluster slot, becoming its representative.  Section 4.2
  keeps the number of clusters fixed, which corresponds to
  ``allow_cluster_creation=False`` together with an explicit candidate set of
  the non-empty clusters.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.costs import NEW_CLUSTER, CostModel
from repro.events import (
    RELOCATION_GRANTED,
    ROUND_END,
    EventHooks,
    RelocationGrantedEvent,
    RoundEndEvent,
)
from repro.game.kernel import BestResponseKernel
from repro.game.model import ClusterGame
from repro.overlay.messages import MessageBus
from repro.peers.configuration import ClusterConfiguration
from repro.peers.statistics import PeerStatistics
from repro.protocol.rounds import RoundResult, execute_round
from repro.strategies.base import RelocationProposal, RelocationStrategy, StrategyContext

__all__ = ["ProtocolResult", "ReformulationProtocol"]

PeerId = Hashable
ClusterId = Hashable


@dataclass
class ProtocolResult:
    """Outcome of a full protocol run."""

    converged: bool
    cycle_detected: bool
    rounds: List[RoundResult] = field(default_factory=list)
    social_cost_trace: List[float] = field(default_factory=list)
    workload_cost_trace: List[float] = field(default_factory=list)
    cluster_count_trace: List[int] = field(default_factory=list)
    message_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def num_rounds(self) -> int:
        """Number of rounds in which at least one request was advertised."""
        return sum(1 for round_result in self.rounds if not round_result.quiescent)

    @property
    def total_moves(self) -> int:
        """Total number of granted relocations across all rounds."""
        return sum(round_result.num_granted for round_result in self.rounds)

    @property
    def final_social_cost(self) -> float:
        """Normalised social cost after the last round."""
        return self.social_cost_trace[-1] if self.social_cost_trace else float("nan")

    @property
    def final_workload_cost(self) -> float:
        """Normalised workload cost after the last round."""
        return self.workload_cost_trace[-1] if self.workload_cost_trace else float("nan")

    @property
    def final_cluster_count(self) -> int:
        """Number of non-empty clusters after the last round."""
        return self.cluster_count_trace[-1] if self.cluster_count_trace else 0

    def traces_consistent(self) -> bool:
        """Whether the three per-round traces have equal lengths."""
        return (
            len(self.social_cost_trace)
            == len(self.workload_cost_trace)
            == len(self.cluster_count_trace)
        )

    def equalize_traces(self) -> None:
        """Truncate the cost/cluster traces to a common length.

        The protocol appends to all three traces together, so they are equal
        for every exit path (quiescence, all-blocked, cycle, round budget);
        this guard keeps that invariant even if a subscriber or subclass
        appends to one trace mid-run, so the ``final_*`` properties always
        describe one single configuration.
        """
        length = min(
            len(self.social_cost_trace),
            len(self.workload_cost_trace),
            len(self.cluster_count_trace),
        )
        del self.social_cost_trace[length:]
        del self.workload_cost_trace[length:]
        del self.cluster_count_trace[length:]


class ReformulationProtocol:
    """Round-based, representative-coordinated cluster maintenance."""

    def __init__(
        self,
        cost_model: CostModel,
        configuration: ClusterConfiguration,
        strategy: RelocationStrategy,
        *,
        gain_threshold: float = 0.0,
        allow_cluster_creation: bool = True,
        creation_cost_increase: float = 0.0,
        restrict_to_nonempty: bool = False,
        enforce_locks: bool = True,
        bus: Optional[MessageBus] = None,
        hooks: Optional[EventHooks] = None,
        kernel_backend: Optional[str] = None,
        kernel_dtype: Optional[str] = None,
    ) -> None:
        self.cost_model = cost_model
        self.configuration = configuration
        self.strategy = strategy
        self.gain_threshold = gain_threshold
        self.allow_cluster_creation = allow_cluster_creation
        self.creation_cost_increase = creation_cost_increase
        self.restrict_to_nonempty = restrict_to_nonempty
        self.enforce_locks = enforce_locks
        #: Kernel backend/dtype forwarded to the shared BestResponseKernel
        #: (``None`` -> automatic backend selection by population, float64).
        self.kernel_backend = kernel_backend
        self.kernel_dtype = kernel_dtype
        self.bus = bus if bus is not None else MessageBus()
        #: Event hub publishing ``round_end`` / ``relocation_granted`` events;
        #: subscribe via ``protocol.hooks.on_round_end(...)`` or pass a shared
        #: :class:`~repro.events.EventHooks` in.
        self.hooks = hooks if hooks is not None else EventHooks()
        self._previous_costs: Optional[Dict[PeerId, float]] = None
        self._kernel: Optional[BestResponseKernel] = None

    # -- helpers -----------------------------------------------------------------

    def _ensure_kernel(self) -> Optional[BestResponseKernel]:
        # One incrementally-maintained kernel serves every round's game: the
        # games are throwaway views, the vectorized membership / covered-recall
        # caches persist and follow the configuration's moves in O(|P|).
        if self._kernel is None and self.cost_model.matrix is not None:
            self._kernel = BestResponseKernel(
                self.cost_model,
                self.configuration,
                backend=self.kernel_backend or "auto",
                dtype=self.kernel_dtype,
            )
        return self._kernel

    def _build_game(self) -> ClusterGame:
        self._ensure_kernel()
        candidates = self.configuration.nonempty_clusters() if self.restrict_to_nonempty else None
        return ClusterGame(
            self.cost_model,
            self.configuration,
            allow_new_clusters=self.allow_cluster_creation,
            candidate_clusters=candidates,
            kernel=self._kernel,
        )

    def _snapshot_costs(self, game: ClusterGame) -> Dict[PeerId, float]:
        kernel = game._active_kernel()
        if kernel is not None:
            return kernel.current_costs()
        return {
            peer_id: game.current_cost(peer_id) for peer_id in self.configuration.peer_ids()
        }

    def _filter_new_cluster_proposals(
        self, proposals: Dict[PeerId, RelocationProposal], game: ClusterGame
    ) -> Dict[PeerId, RelocationProposal]:
        """Apply the paper's cluster-creation precondition.

        A proposal targeting a fresh cluster is kept only if the peer's cost
        has increased by at least ``creation_cost_increase`` since the end of
        the previous period (always kept when no previous period is known and
        the threshold is zero).
        """
        if not self.allow_cluster_creation:
            return {
                peer_id: proposal
                for peer_id, proposal in proposals.items()
                if proposal.target_cluster != NEW_CLUSTER
            }
        if self.creation_cost_increase <= 0.0 or self._previous_costs is None:
            return proposals
        filtered: Dict[PeerId, RelocationProposal] = {}
        for peer_id, proposal in proposals.items():
            if proposal.target_cluster != NEW_CLUSTER:
                filtered[peer_id] = proposal
                continue
            previous = self._previous_costs.get(peer_id)
            current = game.current_cost(peer_id)
            if previous is None or current - previous >= self.creation_cost_increase:
                filtered[peer_id] = proposal
        return filtered

    def _record_costs(self, result: ProtocolResult) -> None:
        # The kernel answers both global costs from its live vectorized state
        # (it falls back to the cost model internally whenever some peer is
        # outside the single-cluster regime or unknown to the recall matrix).
        kernel = self._ensure_kernel()
        if kernel is not None and not kernel.stale:
            social = kernel.social_cost(normalized=True)
            workload = kernel.workload_cost(normalized=True)
        else:
            social = self.cost_model.social_cost(self.configuration, normalized=True)
            workload = self.cost_model.workload_cost(self.configuration, normalized=True)
        result.social_cost_trace.append(social)
        result.workload_cost_trace.append(workload)
        result.cluster_count_trace.append(self.configuration.num_nonempty_clusters())

    def _publish_round(self, round_result: RoundResult, result: ProtocolResult) -> None:
        """Publish the round's relocation and round-end events."""
        for move in round_result.granted:
            self.hooks.emit(
                RELOCATION_GRANTED,
                RelocationGrantedEvent(round_number=round_result.round_number, move=move),
            )
        self.hooks.emit(
            ROUND_END,
            RoundEndEvent(
                round_number=round_result.round_number,
                result=round_result,
                social_cost=result.final_social_cost,
                workload_cost=result.final_workload_cost,
                cluster_count=result.final_cluster_count,
            ),
        )

    # -- main drivers -------------------------------------------------------------

    def run_round(
        self,
        round_number: int,
        *,
        statistics: Optional[Mapping[PeerId, PeerStatistics]] = None,
    ) -> RoundResult:
        """Run a single two-phase round against the current configuration."""
        game = self._build_game()
        context = StrategyContext(
            game=game, statistics=statistics, previous_costs=self._previous_costs
        )
        proposals = self.strategy.propose_all(self.configuration.peer_ids(), context)
        proposals = self._filter_new_cluster_proposals(proposals, game)
        return execute_round(
            self.configuration,
            proposals,
            round_number=round_number,
            gain_threshold=self.gain_threshold,
            bus=self.bus,
            enforce_locks=self.enforce_locks,
        )

    def run(
        self,
        *,
        max_rounds: int = 500,
        statistics: Optional[Mapping[PeerId, PeerStatistics]] = None,
        detect_cycles: bool = True,
    ) -> ProtocolResult:
        """Run rounds until quiescence, a cycle, or the round budget is exhausted."""
        result = ProtocolResult(converged=False, cycle_detected=False)
        self._record_costs(result)
        seen_signatures: Set[Tuple] = set()
        if detect_cycles:
            seen_signatures.add(self.configuration.signature())

        for round_number in range(max_rounds):
            round_result = self.run_round(round_number, statistics=statistics)
            result.rounds.append(round_result)
            if round_result.quiescent:
                result.converged = True
                self._publish_round(round_result, result)
                break
            self._record_costs(result)
            self._publish_round(round_result, result)
            if round_result.num_granted == 0:
                # Requests were issued but none could be served (all blocked);
                # the configuration cannot change any further this way.
                result.converged = True
                break
            if detect_cycles:
                signature = self.configuration.signature()
                if signature in seen_signatures:
                    result.cycle_detected = True
                    break
                seen_signatures.add(signature)

        game = self._build_game()
        self._previous_costs = self._snapshot_costs(game)
        result.message_counts = self.bus.snapshot()
        result.equalize_traces()
        return result

    def remember_current_costs(self) -> None:
        """Snapshot every peer's current cost as the "previous period" baseline.

        Call this before applying workload/content updates so the
        cluster-creation rule can compare against pre-update costs.
        """
        game = self._build_game()
        self._previous_costs = self._snapshot_costs(game)

    def __repr__(self) -> str:
        return (
            f"ReformulationProtocol(strategy={self.strategy!r}, "
            f"threshold={self.gain_threshold}, clusters={self.configuration.num_nonempty_clusters()})"
        )
