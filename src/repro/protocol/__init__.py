"""The cluster reformulation protocol: requests, locks, representatives, rounds, driver."""

from repro.protocol.locks import LockTable
from repro.protocol.reformulation import ProtocolResult, ReformulationProtocol
from repro.protocol.representative import Representative, elect_representatives, gather_requests
from repro.protocol.requests import RelocationRequest
from repro.protocol.rounds import GrantedMove, RoundResult, execute_round

__all__ = [
    "RelocationRequest",
    "LockTable",
    "Representative",
    "elect_representatives",
    "gather_requests",
    "GrantedMove",
    "RoundResult",
    "execute_round",
    "ProtocolResult",
    "ReformulationProtocol",
]
