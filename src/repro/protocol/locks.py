"""The cycle-avoiding lock rule of the reformulation protocol (Section 3.2).

To avoid groups of peers moving in loops among the same set of clusters, the
protocol enforces: *if peer ``p`` in cluster ``c_i`` moves to ``c_j``, then
``c_i`` is locked with direction "leave" and ``c_j`` with direction "join";
in the same round, no more peers can **join** ``c_i`` or **leave** ``c_j``.*

:class:`LockTable` tracks both lock sets within one round and answers
whether a pending request may still be granted.
"""

from __future__ import annotations

from collections.abc import Hashable
from typing import Set

from repro.protocol.requests import RelocationRequest

__all__ = ["LockTable"]

ClusterId = Hashable


class LockTable:
    """Per-round join/leave locks on clusters."""

    def __init__(self) -> None:
        # Clusters that a peer left this round: nobody may *join* them any more.
        self._join_blocked: Set[ClusterId] = set()
        # Clusters that a peer joined this round: nobody may *leave* them any more.
        self._leave_blocked: Set[ClusterId] = set()

    def allows(self, request: RelocationRequest) -> bool:
        """``True`` when granting *request* would not violate the lock rule."""
        if request.target_cluster in self._join_blocked:
            return False
        if request.source_cluster in self._leave_blocked:
            return False
        return True

    def lock_for(self, request: RelocationRequest) -> None:
        """Record the locks implied by granting *request*."""
        self._join_blocked.add(request.source_cluster)
        self._leave_blocked.add(request.target_cluster)

    def join_blocked(self, cluster_id: ClusterId) -> bool:
        """``True`` when no further peer may join *cluster_id* this round."""
        return cluster_id in self._join_blocked

    def leave_blocked(self, cluster_id: ClusterId) -> bool:
        """``True`` when no further peer may leave *cluster_id* this round."""
        return cluster_id in self._leave_blocked

    def reset(self) -> None:
        """Clear all locks (called at the start of every round)."""
        self._join_blocked.clear()
        self._leave_blocked.clear()

    def __repr__(self) -> str:
        return (
            f"LockTable(join_blocked={sorted(self._join_blocked, key=repr)!r}, "
            f"leave_blocked={sorted(self._leave_blocked, key=repr)!r})"
        )
