"""One round of the cluster reformulation protocol.

A round has two phases (Section 3.2):

1. **Gather** — every peer evaluates its gain with its relocation strategy
   and reports it to its cluster representative; each representative keeps
   the request with the highest gain (above the threshold ε) and advertises
   it to the other representatives.
2. **Serve** — the requests are sorted by decreasing gain and granted one by
   one subject to the cycle-avoiding lock rule; requests that would violate
   a lock are discarded for this round.

Requests whose target is :data:`~repro.core.costs.NEW_CLUSTER` are resolved
to a concrete empty cluster slot at grant time (the relocating peer becomes
the representative of the newly formed cluster).
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.costs import NEW_CLUSTER
from repro.overlay.messages import GrantMessage, MessageBus
from repro.peers.configuration import ClusterConfiguration
from repro.protocol.locks import LockTable
from repro.protocol.representative import gather_requests
from repro.protocol.requests import RelocationRequest
from repro.strategies.base import RelocationProposal

__all__ = ["GrantedMove", "RoundResult", "execute_round"]

PeerId = Hashable
ClusterId = Hashable


@dataclass(frozen=True)
class GrantedMove:
    """A relocation request that was granted and applied during a round."""

    peer_id: PeerId
    source_cluster: ClusterId
    target_cluster: ClusterId
    gain: float
    created_cluster: bool = False


@dataclass
class RoundResult:
    """Outcome of one protocol round."""

    round_number: int
    requests: List[RelocationRequest] = field(default_factory=list)
    granted: List[GrantedMove] = field(default_factory=list)
    discarded: List[RelocationRequest] = field(default_factory=list)

    @property
    def num_requests(self) -> int:
        """Number of relocation requests advertised this round."""
        return len(self.requests)

    @property
    def num_granted(self) -> int:
        """Number of requests that were granted and applied."""
        return len(self.granted)

    @property
    def quiescent(self) -> bool:
        """``True`` when no relocation request was advertised (the protocol's stop condition)."""
        return not self.requests


def execute_round(
    configuration: ClusterConfiguration,
    proposals: Mapping[PeerId, RelocationProposal],
    *,
    round_number: int = 0,
    gain_threshold: float = 0.0,
    bus: Optional[MessageBus] = None,
    enforce_locks: bool = True,
) -> RoundResult:
    """Run one two-phase round, mutating *configuration* in place.

    ``enforce_locks=False`` disables the paper's cycle-avoiding lock rule
    (every request is served as long as it is still applicable); it exists for
    the ablation benchmark that measures what the rule buys.
    """
    result = RoundResult(round_number=round_number)
    result.requests = gather_requests(
        configuration, proposals, gain_threshold=gain_threshold, bus=bus
    )
    if not result.requests:
        return result

    locks = LockTable()
    ordered = sorted(result.requests, key=RelocationRequest.sort_key)
    for request in ordered:
        if enforce_locks and not locks.allows(request):
            result.discarded.append(request)
            continue
        target_cluster = request.target_cluster
        created_cluster = False
        if target_cluster == NEW_CLUSTER:
            empty_slots = configuration.empty_clusters()
            if not empty_slots:
                result.discarded.append(request)
                continue
            target_cluster = empty_slots[0]
            created_cluster = True
        if target_cluster == request.source_cluster:
            result.discarded.append(request)
            continue
        configuration.move(request.peer_id, request.source_cluster, target_cluster)
        if created_cluster:
            configuration.cluster(target_cluster).elect_representative(request.peer_id)
        # Lock using the *resolved* target so later NEW_CLUSTER requests do
        # not collapse onto a cluster that was just created this round.
        locks.lock_for(
            RelocationRequest(
                source_cluster=request.source_cluster,
                target_cluster=target_cluster,
                peer_id=request.peer_id,
                gain=request.gain,
            )
        )
        result.granted.append(
            GrantedMove(
                peer_id=request.peer_id,
                source_cluster=request.source_cluster,
                target_cluster=target_cluster,
                gain=request.gain,
                created_cluster=created_cluster,
            )
        )
        if bus is not None:
            bus.publish(
                GrantMessage(
                    sender=request.source_cluster,
                    receiver=target_cluster,
                    peer_id=request.peer_id,
                    source_cluster=request.source_cluster,
                    target_cluster=target_cluster,
                )
            )
    return result
