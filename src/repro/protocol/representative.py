"""Cluster representatives: per-cluster aggregation of relocation proposals.

One peer per cluster acts as the cluster representative for a protocol
round.  In phase one it receives the gain reports of the cluster's members
and keeps only the proposal with the highest gain (provided the gain exceeds
the system threshold ε); in phase two it participates in serving the ordered
request list.  Representatives need not be the same across rounds — the
election here is deterministic (smallest member id) simply to make runs
reproducible.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.overlay.messages import GainReportMessage, MessageBus, RelocationRequestMessage
from repro.peers.configuration import ClusterConfiguration
from repro.protocol.requests import RelocationRequest
from repro.strategies.base import RelocationProposal

__all__ = ["Representative", "elect_representatives", "gather_requests"]

PeerId = Hashable
ClusterId = Hashable


@dataclass
class Representative:
    """The representative of one cluster for one protocol round."""

    cluster_id: ClusterId
    peer_id: PeerId

    def select_request(
        self,
        proposals: Iterable[RelocationProposal],
        *,
        gain_threshold: float = 0.0,
        bus: Optional[MessageBus] = None,
    ) -> Optional[RelocationRequest]:
        """Keep the member proposal with the highest gain above the threshold.

        Proposals that do not actually move the peer are ignored (the paper's
        "no peer needs to relocate" case, in which the representative only
        advertises its cid).
        """
        best: Optional[RelocationProposal] = None
        for proposal in proposals:
            if bus is not None:
                bus.publish(
                    GainReportMessage(
                        sender=proposal.peer_id,
                        receiver=self.peer_id,
                        gain=proposal.gain,
                        target_cluster=proposal.target_cluster,
                    )
                )
            if not proposal.is_move or proposal.gain <= gain_threshold:
                continue
            if best is None or proposal.gain > best.gain or (
                proposal.gain == best.gain and repr(proposal.peer_id) < repr(best.peer_id)
            ):
                best = proposal
        if best is None:
            return None
        return RelocationRequest.from_proposal(best)


def elect_representatives(configuration: ClusterConfiguration) -> Dict[ClusterId, Representative]:
    """Elect one representative per non-empty cluster (deterministically)."""
    representatives: Dict[ClusterId, Representative] = {}
    for cluster_id in configuration.nonempty_clusters():
        cluster = configuration.cluster(cluster_id)
        peer_id = cluster.elect_representative()
        representatives[cluster_id] = Representative(cluster_id=cluster_id, peer_id=peer_id)
    return representatives


def gather_requests(
    configuration: ClusterConfiguration,
    proposals: Mapping[PeerId, RelocationProposal],
    *,
    gain_threshold: float = 0.0,
    bus: Optional[MessageBus] = None,
) -> List[RelocationRequest]:
    """Phase one of a round: every representative selects its cluster's best request.

    Returns the advertised requests (at most one per cluster).  The broadcast
    of each request to the other representatives is accounted on *bus*.
    """
    representatives = elect_representatives(configuration)
    requests: List[RelocationRequest] = []
    for cluster_id, representative in sorted(representatives.items(), key=lambda item: repr(item[0])):
        member_proposals = [
            proposals[peer_id]
            for peer_id in sorted(configuration.members(cluster_id), key=repr)
            if peer_id in proposals
        ]
        request = representative.select_request(
            member_proposals, gain_threshold=gain_threshold, bus=bus
        )
        if request is None:
            continue
        requests.append(request)
        if bus is not None:
            for other_cluster, other_representative in representatives.items():
                if other_cluster == cluster_id:
                    continue
                bus.publish(
                    RelocationRequestMessage(
                        sender=representative.peer_id,
                        receiver=other_representative.peer_id,
                        source_cluster=request.source_cluster,
                        target_cluster=request.target_cluster,
                        gain=request.gain,
                        peer_id=request.peer_id,
                    )
                )
    return requests
