"""Figure 3: social cost after **content** updates in a single cluster.

Same two update scenarios as Figure 2, but the perturbation replaces the
*data* of the peers in the perturbed cluster with data of a different
category (their workloads stay unchanged) — the registered ``content-full``
and ``content-fraction`` drift models.

Expected shape (paper): the altruistic strategy now behaves like the selfish
one did for workload updates — a peer whose content changed no longer serves
its own cluster and is motivated to leave — while selfish peers have no
motive to move because their own workload did not change.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.events import EventHooks
from repro.experiments.config import ExperimentConfig
from repro.experiments.maintenance import (
    DEFAULT_FRACTIONS,
    MaintenanceResult,
    run_maintenance_experiment,
)

__all__ = ["run_figure3"]


def run_figure3(
    config: Optional[ExperimentConfig] = None,
    *,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    strategies: Sequence[str] = ("selfish", "altruistic"),
    workers: int = 1,
    executor: Optional[Any] = None,
    hooks: Optional[EventHooks] = None,
) -> MaintenanceResult:
    """Regenerate Figure 3 (content updates)."""
    return run_maintenance_experiment(
        "content",
        config,
        fractions=fractions,
        strategies=strategies,
        workers=workers,
        executor=executor,
        hooks=hooks,
    )
