"""Table 1: fixed query workload and content.

For each of the three data/query scenarios and each of the four initial
configurations (i: singletons, ii: random with ``m = M``, iii: ``m < M``,
iv: ``m > M``), run the reformulation protocol with the selfish and the
altruistic strategy and report:

* whether a Nash equilibrium was reached and in how many rounds,
* the number of non-empty clusters at the end,
* the normalised social cost and workload cost.

This mirrors Table 1 of the paper; scenario 3 ("uniform") is expected not to
converge, which is reported as a missing round count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.reporting import format_table
from repro.datasets.scenarios import (
    SCENARIO_DIFFERENT_CATEGORY,
    SCENARIO_SAME_CATEGORY,
    SCENARIO_UNIFORM,
)
from repro.events import EventHooks
from repro.experiments.config import ExperimentConfig
from repro.registry import scenario_registry
from repro.session import RunResult, SessionConfig
from repro.sweep.engine import run_sweep
from repro.sweep.executors import executor_from_any
from repro.sweep.spec import SweepSpec

__all__ = [
    "Table1Row",
    "Table1Result",
    "run_table1",
    "run_table1_sweep",
    "DEFAULT_SCENARIOS",
    "DEFAULT_INITIAL_KINDS",
]

DEFAULT_SCENARIOS: Tuple[str, ...] = (
    SCENARIO_SAME_CATEGORY,
    SCENARIO_DIFFERENT_CATEGORY,
    SCENARIO_UNIFORM,
)
DEFAULT_INITIAL_KINDS: Tuple[str, ...] = ("singletons", "random", "fewer", "more")


@dataclass(frozen=True)
class Table1Row:
    """One cell group of Table 1: a (scenario, initial configuration, strategy) run."""

    scenario: str
    initial_kind: str
    strategy: str
    converged: bool
    rounds: Optional[int]
    clusters: int
    social_cost: float
    workload_cost: float
    purity: float

    def as_sequence(self) -> Sequence[object]:
        """Row values for tabular rendering."""
        return (
            self.scenario,
            self.initial_kind,
            self.strategy,
            self.rounds if self.converged and self.rounds is not None else "-",
            self.clusters,
            round(self.social_cost, 3),
            round(self.workload_cost, 3),
            round(self.purity, 3),
        )


@dataclass
class Table1Result:
    """All rows of the regenerated Table 1."""

    rows: List[Table1Row] = field(default_factory=list)

    def rows_for(self, scenario: str) -> List[Table1Row]:
        """The rows belonging to one scenario."""
        return [row for row in self.rows if row.scenario == scenario]

    def to_text(self) -> str:
        """Plain-text rendering in the paper's row order."""
        headers = (
            "scenario",
            "initial",
            "strategy",
            "# rounds",
            "# clusters",
            "SCost",
            "WCost",
            "purity",
        )
        return format_table(headers, [row.as_sequence() for row in self.rows])


def _table1_tasks(
    config: ExperimentConfig,
    scenarios: Sequence[str],
    initial_kinds: Sequence[str],
    strategies: Sequence[str],
) -> Tuple[List[Dict[str, Any]], List[Tuple[str, str, str]]]:
    """The explicit sweep task list for Table 1, with the key of each cell."""
    tasks: List[Dict[str, Any]] = []
    keys: List[Tuple[str, str, str]] = []
    for scenario in scenarios:
        canonical = scenario_registry.canonical_name(scenario)
        for initial_kind in initial_kinds:
            for strategy_name in strategies:
                session = SessionConfig.from_experiment_config(
                    config, scenario=canonical, strategy=strategy_name, initial=initial_kind
                )
                tasks.append({"config": session.to_dict()})
                keys.append((canonical, initial_kind, strategy_name))
    return tasks, keys


def _row_from_result(key: Tuple[str, str, str], result: RunResult) -> Table1Row:
    scenario, initial_kind, strategy_name = key
    return Table1Row(
        scenario=scenario,
        initial_kind=initial_kind,
        strategy=strategy_name,
        converged=result.converged,
        rounds=result.rounds if result.converged else None,
        clusters=result.cluster_count,
        social_cost=result.final_social_cost,
        workload_cost=result.final_workload_cost,
        purity=result.purity if result.purity is not None else 0.0,
    )


def run_table1(
    config: Optional[ExperimentConfig] = None,
    *,
    scenarios: Sequence[str] = DEFAULT_SCENARIOS,
    initial_kinds: Sequence[str] = DEFAULT_INITIAL_KINDS,
    strategies: Sequence[str] = ("selfish", "altruistic"),
    workers: int = 1,
    executor: Optional[Any] = None,
    hooks: Optional[EventHooks] = None,
) -> Table1Result:
    """Regenerate Table 1 for the requested scenarios / initial configurations / strategies.

    The cells run through the sweep engine (:mod:`repro.sweep`):
    ``workers > 1`` fans them out over a process pool, or pass *executor*
    (a name, spec or :class:`~repro.sweep.executors.SweepExecutor`, taking
    precedence over *workers*) to pick any registered backend — results are
    identical to the serial run either way, and *hooks* receives the
    engine's ``task_started`` / ``task_finished`` / ``sweep_end`` progress
    events.
    """
    config = config if config is not None else ExperimentConfig.paper()
    tasks, keys = _table1_tasks(config, scenarios, initial_kinds, strategies)
    sweep = run_sweep(
        SweepSpec(tasks=tuple(tasks)),
        executor=executor_from_any(executor, workers),
        hooks=hooks,
    )
    result = Table1Result()
    result.rows = [_row_from_result(key, run) for key, run in zip(keys, sweep.results)]
    return result


def run_table1_sweep(
    config: Optional[ExperimentConfig] = None,
    *,
    seeds: Sequence[int],
    scenarios: Sequence[str] = DEFAULT_SCENARIOS,
    initial_kinds: Sequence[str] = DEFAULT_INITIAL_KINDS,
    strategies: Sequence[str] = ("selfish", "altruistic"),
    workers: int = 1,
    executor: Optional[Any] = None,
    hooks: Optional[EventHooks] = None,
) -> Dict[int, Table1Result]:
    """Regenerate Table 1 once per seed, fanned out over *workers* processes.

    Every (scenario, initial, strategy, seed) cell is one engine task; the
    returned mapping gives, per seed, exactly the :class:`Table1Result` the
    serial driver produces for an :class:`ExperimentConfig` carrying that
    seed (both the master seed and the scenario build seed) — seed for seed,
    independent of the worker count or *executor* backend (*executor* takes
    precedence over *workers* when both are given).
    """
    config = config if config is not None else ExperimentConfig.paper()
    tasks, keys = _table1_tasks(config, scenarios, initial_kinds, strategies)
    seed_list = [int(seed) for seed in seeds]
    sweep = run_sweep(
        SweepSpec(tasks=tuple(tasks), seeds=tuple(seed_list)),
        executor=executor_from_any(executor, workers),
        hooks=hooks,
    )
    results: Dict[int, Table1Result] = {seed: Table1Result() for seed in seed_list}
    # Expansion order: base tasks outer, seeds inner (replications adjacent).
    for position, (task, run) in enumerate(zip(sweep.tasks, sweep.results)):
        key = keys[position // len(seed_list)]
        results[task.seed].rows.append(_row_from_result(key, run))
    return results
