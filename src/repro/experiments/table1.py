"""Table 1: fixed query workload and content.

For each of the three data/query scenarios and each of the four initial
configurations (i: singletons, ii: random with ``m = M``, iii: ``m < M``,
iv: ``m > M``), run the reformulation protocol with the selfish and the
altruistic strategy and report:

* whether a Nash equilibrium was reached and in how many rounds,
* the number of non-empty clusters at the end,
* the normalised social cost and workload cost.

This mirrors Table 1 of the paper; scenario 3 ("uniform") is expected not to
converge, which is reported as a missing round count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.metrics import cluster_purity
from repro.analysis.reporting import format_table
from repro.datasets.scenarios import (
    SCENARIO_DIFFERENT_CATEGORY,
    SCENARIO_SAME_CATEGORY,
    SCENARIO_UNIFORM,
    ScenarioData,
    build_scenario,
    initial_configuration,
)
from repro.experiments.config import ExperimentConfig, build_strategy
from repro.protocol.reformulation import ProtocolResult, ReformulationProtocol

__all__ = ["Table1Row", "Table1Result", "run_table1", "DEFAULT_SCENARIOS", "DEFAULT_INITIAL_KINDS"]

DEFAULT_SCENARIOS: Tuple[str, ...] = (
    SCENARIO_SAME_CATEGORY,
    SCENARIO_DIFFERENT_CATEGORY,
    SCENARIO_UNIFORM,
)
DEFAULT_INITIAL_KINDS: Tuple[str, ...] = ("singletons", "random", "fewer", "more")


@dataclass(frozen=True)
class Table1Row:
    """One cell group of Table 1: a (scenario, initial configuration, strategy) run."""

    scenario: str
    initial_kind: str
    strategy: str
    converged: bool
    rounds: Optional[int]
    clusters: int
    social_cost: float
    workload_cost: float
    purity: float

    def as_sequence(self) -> Sequence[object]:
        """Row values for tabular rendering."""
        return (
            self.scenario,
            self.initial_kind,
            self.strategy,
            self.rounds if self.converged and self.rounds is not None else "-",
            self.clusters,
            round(self.social_cost, 3),
            round(self.workload_cost, 3),
            round(self.purity, 3),
        )


@dataclass
class Table1Result:
    """All rows of the regenerated Table 1."""

    rows: List[Table1Row] = field(default_factory=list)

    def rows_for(self, scenario: str) -> List[Table1Row]:
        """The rows belonging to one scenario."""
        return [row for row in self.rows if row.scenario == scenario]

    def to_text(self) -> str:
        """Plain-text rendering in the paper's row order."""
        headers = (
            "scenario",
            "initial",
            "strategy",
            "# rounds",
            "# clusters",
            "SCost",
            "WCost",
            "purity",
        )
        return format_table(headers, [row.as_sequence() for row in self.rows])


def _run_single(
    data: ScenarioData,
    initial_kind: str,
    strategy_name: str,
    config: ExperimentConfig,
) -> Tuple[Table1Row, ProtocolResult]:
    configuration = initial_configuration(data, initial_kind, seed=config.seed + 13)
    cost_model = data.network.cost_model(theta=config.theta(), alpha=config.alpha)
    strategy = build_strategy(strategy_name)
    protocol = ReformulationProtocol(
        cost_model,
        configuration,
        strategy,
        gain_threshold=config.gain_threshold,
        allow_cluster_creation=True,
    )
    result = protocol.run(max_rounds=config.max_rounds)
    converged = result.converged and not result.cycle_detected
    row = Table1Row(
        scenario=data.scenario,
        initial_kind=initial_kind,
        strategy=strategy_name,
        converged=converged,
        rounds=result.num_rounds if converged else None,
        clusters=configuration.num_nonempty_clusters(),
        social_cost=cost_model.social_cost(configuration, normalized=True),
        workload_cost=cost_model.workload_cost(configuration, normalized=True),
        purity=cluster_purity(configuration, data.data_categories),
    )
    return row, result


def run_table1(
    config: Optional[ExperimentConfig] = None,
    *,
    scenarios: Sequence[str] = DEFAULT_SCENARIOS,
    initial_kinds: Sequence[str] = DEFAULT_INITIAL_KINDS,
    strategies: Sequence[str] = ("selfish", "altruistic"),
) -> Table1Result:
    """Regenerate Table 1 for the requested scenarios / initial configurations / strategies."""
    config = config if config is not None else ExperimentConfig.paper()
    result = Table1Result()
    for scenario in scenarios:
        data = build_scenario(scenario, config.scenario)
        for initial_kind in initial_kinds:
            for strategy_name in strategies:
                row, _protocol_result = _run_single(data, initial_kind, strategy_name, config)
                result.rows.append(row)
    return result
