"""Table 1: fixed query workload and content.

For each of the three data/query scenarios and each of the four initial
configurations (i: singletons, ii: random with ``m = M``, iii: ``m < M``,
iv: ``m > M``), run the reformulation protocol with the selfish and the
altruistic strategy and report:

* whether a Nash equilibrium was reached and in how many rounds,
* the number of non-empty clusters at the end,
* the normalised social cost and workload cost.

This mirrors Table 1 of the paper; scenario 3 ("uniform") is expected not to
converge, which is reported as a missing round count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.analysis.reporting import format_table
from repro.datasets.scenarios import (
    SCENARIO_DIFFERENT_CATEGORY,
    SCENARIO_SAME_CATEGORY,
    SCENARIO_UNIFORM,
    ScenarioData,
    build_scenario,
)
from repro.experiments.config import ExperimentConfig
from repro.session import SessionConfig, Simulation

__all__ = ["Table1Row", "Table1Result", "run_table1", "DEFAULT_SCENARIOS", "DEFAULT_INITIAL_KINDS"]

DEFAULT_SCENARIOS: Tuple[str, ...] = (
    SCENARIO_SAME_CATEGORY,
    SCENARIO_DIFFERENT_CATEGORY,
    SCENARIO_UNIFORM,
)
DEFAULT_INITIAL_KINDS: Tuple[str, ...] = ("singletons", "random", "fewer", "more")


@dataclass(frozen=True)
class Table1Row:
    """One cell group of Table 1: a (scenario, initial configuration, strategy) run."""

    scenario: str
    initial_kind: str
    strategy: str
    converged: bool
    rounds: Optional[int]
    clusters: int
    social_cost: float
    workload_cost: float
    purity: float

    def as_sequence(self) -> Sequence[object]:
        """Row values for tabular rendering."""
        return (
            self.scenario,
            self.initial_kind,
            self.strategy,
            self.rounds if self.converged and self.rounds is not None else "-",
            self.clusters,
            round(self.social_cost, 3),
            round(self.workload_cost, 3),
            round(self.purity, 3),
        )


@dataclass
class Table1Result:
    """All rows of the regenerated Table 1."""

    rows: List[Table1Row] = field(default_factory=list)

    def rows_for(self, scenario: str) -> List[Table1Row]:
        """The rows belonging to one scenario."""
        return [row for row in self.rows if row.scenario == scenario]

    def to_text(self) -> str:
        """Plain-text rendering in the paper's row order."""
        headers = (
            "scenario",
            "initial",
            "strategy",
            "# rounds",
            "# clusters",
            "SCost",
            "WCost",
            "purity",
        )
        return format_table(headers, [row.as_sequence() for row in self.rows])


def _run_single(
    data: ScenarioData,
    initial_kind: str,
    strategy_name: str,
    config: ExperimentConfig,
) -> Tuple[Table1Row, "Simulation"]:
    simulation = Simulation.from_config(
        SessionConfig.from_experiment_config(
            config, scenario=data.scenario, strategy=strategy_name, initial=initial_kind
        ),
        data=data,
    )
    result = simulation.run()
    row = Table1Row(
        scenario=data.scenario,
        initial_kind=initial_kind,
        strategy=strategy_name,
        converged=result.converged,
        rounds=result.rounds if result.converged else None,
        clusters=result.cluster_count,
        social_cost=result.final_social_cost,
        workload_cost=result.final_workload_cost,
        purity=result.purity if result.purity is not None else 0.0,
    )
    return row, simulation


def run_table1(
    config: Optional[ExperimentConfig] = None,
    *,
    scenarios: Sequence[str] = DEFAULT_SCENARIOS,
    initial_kinds: Sequence[str] = DEFAULT_INITIAL_KINDS,
    strategies: Sequence[str] = ("selfish", "altruistic"),
) -> Table1Result:
    """Regenerate Table 1 for the requested scenarios / initial configurations / strategies."""
    config = config if config is not None else ExperimentConfig.paper()
    result = Table1Result()
    for scenario in scenarios:
        data = build_scenario(scenario, config.scenario)
        for initial_kind in initial_kinds:
            for strategy_name in strategies:
                row, _protocol_result = _run_single(data, initial_kind, strategy_name, config)
                result.rows.append(row)
    return result
