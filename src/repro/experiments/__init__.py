"""Experiment drivers regenerating every table and figure of the paper."""

from repro.experiments.config import ExperimentConfig, build_strategy
from repro.experiments.figure1 import Figure1Curve, Figure1Result, run_figure1
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import Figure4Curve, Figure4Result, run_figure4
from repro.experiments.maintenance import (
    MaintenanceCurve,
    MaintenancePoint,
    MaintenanceResult,
    run_maintenance_experiment,
)
from repro.experiments.runner import ExperimentSuiteResult, render_report, run_all
from repro.experiments.table1 import Table1Result, Table1Row, run_table1

__all__ = [
    "ExperimentConfig",
    "build_strategy",
    "Table1Row",
    "Table1Result",
    "run_table1",
    "Figure1Curve",
    "Figure1Result",
    "run_figure1",
    "run_figure2",
    "run_figure3",
    "MaintenancePoint",
    "MaintenanceCurve",
    "MaintenanceResult",
    "run_maintenance_experiment",
    "Figure4Curve",
    "Figure4Result",
    "run_figure4",
    "ExperimentSuiteResult",
    "run_all",
    "render_report",
]
