"""Shared driver for the maintenance experiments (Figures 2 and 3).

Both figures start from the "good" clustering of scenario 1 (one cluster per
data category), keep the number of clusters fixed, assign the workload
uniformly and perturb a single cluster ``c_cur``:

* Figure 2 updates **workloads** — (left) the whole workload of a varying
  fraction of the peers in ``c_cur`` switches to another category's data,
  (right) a varying fraction of the workload of *all* peers in ``c_cur``
  switches;
* Figure 3 applies the same two scenarios to the **content** of the peers in
  ``c_cur``.

After each perturbation the reformulation protocol runs (with the paper's
gain threshold ε = 0.001) until no more relocation requests are issued, and
the normalised social cost of the resulting configuration is recorded.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.reporting import format_series
from repro.datasets.corpus import CorpusGenerator
from repro.datasets.scenarios import SCENARIO_SAME_CATEGORY, ScenarioData
from repro.dynamics.updates import (
    update_content_fraction,
    update_content_full,
    update_workload_fraction,
    update_workload_full,
)
from repro.events import EventHooks
from repro.experiments.config import ExperimentConfig
from repro.peers.configuration import ClusterConfiguration
from repro.registry import register_runner
from repro.session import RunResult, SessionConfig, Simulation
from repro.sweep.engine import run_sweep
from repro.sweep.spec import SweepSpec

__all__ = [
    "DEFAULT_FRACTIONS",
    "MaintenancePoint",
    "MaintenanceCurve",
    "MaintenanceResult",
    "run_maintenance_experiment",
    "run_maintenance_point",
]

DEFAULT_FRACTIONS: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)


@dataclass(frozen=True)
class MaintenancePoint:
    """One measured point: the social cost after maintenance for a given update fraction."""

    fraction: float
    social_cost: float
    social_cost_before_maintenance: float
    moves: int
    rounds: int


@dataclass
class MaintenanceCurve:
    """One strategy's curve over update fractions."""

    strategy: str
    update_kind: str
    points: List[MaintenancePoint] = field(default_factory=list)

    def series(self) -> Dict[float, float]:
        """fraction -> normalised social cost after maintenance."""
        return {point.fraction: point.social_cost for point in self.points}

    def before_series(self) -> Dict[float, float]:
        """fraction -> normalised social cost before any maintenance (static baseline)."""
        return {point.fraction: point.social_cost_before_maintenance for point in self.points}


@dataclass
class MaintenanceResult:
    """All curves of one maintenance figure (two update scenarios x strategies)."""

    figure: str
    curves: List[MaintenanceCurve] = field(default_factory=list)

    def curve(self, update_kind: str, strategy: str) -> MaintenanceCurve:
        """Find the curve for an (update scenario, strategy) pair."""
        for candidate in self.curves:
            if candidate.update_kind == update_kind and candidate.strategy == strategy:
                return candidate
        raise KeyError(f"no curve for {update_kind!r} / {strategy!r}")

    def to_text(self) -> str:
        """Plain-text rendering of every curve."""
        blocks = []
        for curve in self.curves:
            blocks.append(
                format_series(f"{self.figure} {curve.update_kind} ({curve.strategy})", curve.series())
            )
        return "\n\n".join(blocks)


def _choose_clusters(
    data: ScenarioData, configuration: ClusterConfiguration
) -> Dict[str, object]:
    """Pick the perturbed cluster ``c_cur`` and the category of the target cluster ``c_new``."""
    clusters = configuration.nonempty_clusters()
    current_cluster = clusters[0]
    current_members = sorted(configuration.members(current_cluster), key=repr)
    current_category = data.data_categories[current_members[0]]
    other_categories = sorted(
        {
            category
            for category in data.data_categories.values()
            if category is not None and category != current_category
        }
    )
    new_category = other_categories[0]
    return {
        "current_cluster": current_cluster,
        "current_members": current_members,
        "current_category": current_category,
        "new_category": new_category,
    }


def _apply_update(
    update_target: str,
    update_kind: str,
    data: ScenarioData,
    members: Sequence[object],
    new_category: str,
    fraction: float,
    generator: CorpusGenerator,
    rng: random.Random,
) -> None:
    if update_kind == "updated-peers":
        affected_count = int(round(fraction * len(members)))
        affected = list(members)[:affected_count]
        if not affected:
            return
        if update_target == "workload":
            update_workload_full(data.network, affected, new_category, generator, rng=rng)
        else:
            update_content_full(data.network, affected, new_category, generator, rng=rng)
    elif update_kind == "updated-degree":
        if fraction <= 0.0:
            return
        if update_target == "workload":
            update_workload_fraction(
                data.network, members, new_category, generator, fraction, rng=rng
            )
        else:
            update_content_fraction(
                data.network, members, new_category, generator, fraction, rng=rng
            )
    else:
        raise ValueError(f"unknown update kind {update_kind!r}")


@register_runner("maintenance-point", mutates_scenario=True)
def run_maintenance_point(simulation: Simulation, options: Dict[str, object]) -> RunResult:
    """Sweep runner measuring one maintenance point (Figures 2 and 3).

    Perturbs the freshly built scenario (``update_target`` ×
    ``update_kind`` × ``fraction`` from *options*), records the social cost
    before maintenance, runs the reformulation protocol and stashes the
    point's measurements in ``RunResult.extras``.  The facade builds the
    scenario (and the cost model) lazily, so the perturbation happens
    before any cost is computed.
    """
    update_target = str(options["update_target"])
    update_kind = str(options["update_kind"])
    fraction = float(options["fraction"])  # type: ignore[arg-type]
    if update_target not in {"workload", "content"}:
        raise ValueError(f"update_target must be 'workload' or 'content', got {update_target!r}")
    data = simulation.data
    configuration = simulation.configuration
    choice = _choose_clusters(data, configuration)
    rng = random.Random(simulation.experiment_config.seed + 101)
    _apply_update(
        update_target,
        update_kind,
        data,
        choice["current_members"],
        choice["new_category"],
        fraction,
        data.generator,
        rng,
    )
    before = simulation.cost_model.social_cost(configuration, normalized=True)
    result = simulation.run()
    result.extras.update(
        {
            "update_target": update_target,
            "update_kind": update_kind,
            "fraction": fraction,
            "social_cost_before": before,
        }
    )
    return result


def run_maintenance_experiment(
    update_target: str,
    config: Optional[ExperimentConfig] = None,
    *,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    strategies: Sequence[str] = ("selfish", "altruistic"),
    update_kinds: Sequence[str] = ("updated-peers", "updated-degree"),
    workers: int = 1,
    hooks: Optional[EventHooks] = None,
) -> MaintenanceResult:
    """Run the Figure 2 (``update_target="workload"``) or Figure 3 (``"content"``) experiment.

    Every (update scenario, strategy, fraction) point is an independent
    ``maintenance-point`` task of the sweep engine — each rebuilds the
    scenario from the same seed so every measurement perturbs an identical
    starting state, which also makes the points embarrassingly parallel:
    ``workers > 1`` fans them out with results identical to the serial run.
    """
    if update_target not in {"workload", "content"}:
        raise ValueError(f"update_target must be 'workload' or 'content', got {update_target!r}")
    config = config if config is not None else ExperimentConfig.paper()
    figure_name = "figure2" if update_target == "workload" else "figure3"

    tasks = []
    keys = []
    for update_kind in update_kinds:
        for strategy_name in strategies:
            session = SessionConfig.from_experiment_config(
                config,
                scenario=SCENARIO_SAME_CATEGORY,
                strategy=strategy_name,
                initial="category",
                scenario_overrides={"uniform_workload": True},
                gain_threshold=config.maintenance_gain_threshold,
                allow_cluster_creation=False,
                restrict_to_nonempty=True,
            )
            for fraction in fractions:
                tasks.append(
                    {
                        "config": session.to_dict(),
                        "runner": "maintenance-point",
                        "options": {
                            "update_target": update_target,
                            "update_kind": update_kind,
                            "fraction": fraction,
                        },
                    }
                )
                keys.append((update_kind, strategy_name))
    sweep = run_sweep(SweepSpec(tasks=tuple(tasks)), workers=workers, hooks=hooks)

    result = MaintenanceResult(figure=figure_name)
    curves: Dict[tuple, MaintenanceCurve] = {}
    for key, run in zip(keys, sweep.results):
        update_kind, strategy_name = key
        if key not in curves:
            curves[key] = MaintenanceCurve(strategy=strategy_name, update_kind=update_kind)
            result.curves.append(curves[key])
        curves[key].points.append(
            MaintenancePoint(
                fraction=float(run.extras["fraction"]),
                social_cost=run.final_social_cost,
                social_cost_before_maintenance=float(run.extras["social_cost_before"]),
                moves=run.moves,
                rounds=run.rounds,
            )
        )
    return result
