"""Shared driver for the maintenance experiments (Figures 2 and 3).

Both figures start from the "good" clustering of scenario 1 (one cluster per
data category), keep the number of clusters fixed, assign the workload
uniformly and perturb a single cluster ``c_cur``:

* Figure 2 updates **workloads** — (left) the whole workload of a varying
  fraction of the peers in ``c_cur`` switches to another category's data,
  (right) a varying fraction of the workload of *all* peers in ``c_cur``
  switches;
* Figure 3 applies the same two scenarios to the **content** of the peers in
  ``c_cur``.

After each perturbation the reformulation protocol runs (with the paper's
gain threshold ε = 0.001) until no more relocation requests are issued, and
the normalised social cost of the resulting configuration is recorded.

The perturbations themselves are **registered drift models**
(:mod:`repro.dynamics.models`): scenario (a) maps to ``workload-full`` /
``content-full`` with a ``peer_fraction`` option, scenario (b) to
``workload-fraction`` / ``content-fraction`` with a ``fraction`` option —
see :func:`drift_spec`.  Each figure point carries its spec inside the
task's :class:`~repro.session.config.SessionConfig` (the ``dynamics``
field), so every maintenance figure is an ordinary, JSON-describable sweep
grid.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.reporting import format_series
from repro.datasets.scenarios import SCENARIO_SAME_CATEGORY
from repro.dynamics.schedule import DynamicsSchedule
from repro.errors import ConfigurationError
from repro.events import DRIFT_APPLIED, DriftAppliedEvent, EventHooks
from repro.experiments.config import ExperimentConfig
from repro.registry import register_runner
from repro.session import RunResult, SessionConfig, Simulation
from repro.sweep.engine import run_sweep
from repro.sweep.executors import executor_from_any
from repro.sweep.spec import SweepSpec

__all__ = [
    "DEFAULT_FRACTIONS",
    "MaintenancePoint",
    "MaintenanceCurve",
    "MaintenanceResult",
    "drift_spec",
    "run_maintenance_experiment",
    "run_maintenance_point",
]

DEFAULT_FRACTIONS: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)


@dataclass(frozen=True)
class MaintenancePoint:
    """One measured point: the social cost after maintenance for a given update fraction."""

    fraction: float
    social_cost: float
    social_cost_before_maintenance: float
    moves: int
    rounds: int


@dataclass
class MaintenanceCurve:
    """One strategy's curve over update fractions."""

    strategy: str
    update_kind: str
    points: List[MaintenancePoint] = field(default_factory=list)

    def series(self) -> Dict[float, float]:
        """fraction -> normalised social cost after maintenance."""
        return {point.fraction: point.social_cost for point in self.points}

    def before_series(self) -> Dict[float, float]:
        """fraction -> normalised social cost before any maintenance (static baseline)."""
        return {point.fraction: point.social_cost_before_maintenance for point in self.points}


@dataclass
class MaintenanceResult:
    """All curves of one maintenance figure (two update scenarios x strategies)."""

    figure: str
    curves: List[MaintenanceCurve] = field(default_factory=list)

    def curve(self, update_kind: str, strategy: str) -> MaintenanceCurve:
        """Find the curve for an (update scenario, strategy) pair."""
        for candidate in self.curves:
            if candidate.update_kind == update_kind and candidate.strategy == strategy:
                return candidate
        raise KeyError(f"no curve for {update_kind!r} / {strategy!r}")

    def to_text(self) -> str:
        """Plain-text rendering of every curve."""
        blocks = []
        for curve in self.curves:
            blocks.append(
                format_series(f"{self.figure} {curve.update_kind} ({curve.strategy})", curve.series())
            )
        return "\n\n".join(blocks)


#: (update target, update kind) -> registered drift-model name.
_DRIFT_MODELS = {
    ("workload", "updated-peers"): "workload-full",
    ("workload", "updated-degree"): "workload-fraction",
    ("content", "updated-peers"): "content-full",
    ("content", "updated-degree"): "content-fraction",
}


def drift_spec(update_target: str, update_kind: str, fraction: float) -> Dict[str, Any]:
    """The registered drift-model spec of one maintenance figure point.

    Scenario (a) (``update_kind="updated-peers"``) varies the *number of
    peers* fully updated (``peer_fraction``); scenario (b)
    (``"updated-degree"``) varies the *degree* by which all of ``c_cur``'s
    peers are updated (``fraction``).
    """
    if update_target not in {"workload", "content"}:
        raise ValueError(
            f"update_target must be 'workload' or 'content', got {update_target!r}"
        )
    if update_kind not in {"updated-peers", "updated-degree"}:
        raise ValueError(f"unknown update kind {update_kind!r}")
    model = _DRIFT_MODELS[(update_target, update_kind)]
    if update_kind == "updated-peers":
        options: Dict[str, Any] = {"peer_fraction": float(fraction)}
    else:
        options = {"fraction": float(fraction)}
    return {"model": model, "options": options}


@register_runner("maintenance-point", mutates_scenario=True)
def run_maintenance_point(simulation: Simulation, options: Dict[str, object]) -> RunResult:
    """Sweep runner measuring one maintenance point (Figures 2 and 3).

    Builds the point's registered drift models (from ``options["dynamics"]``,
    the session config's ``dynamics`` field — either may be a full
    :class:`~repro.dynamics.schedule.DynamicsSchedule` spec — or the legacy
    ``update_target`` × ``update_kind`` × ``fraction`` options), applies
    each rule's first invocation once to the freshly built scenario, records
    the social cost before maintenance, runs the reformulation protocol and
    stashes the point's measurements in ``RunResult.extras``.  The facade
    builds the scenario (and the cost model) lazily, so the perturbation
    happens before any cost is computed.
    """
    update_target = options.get("update_target")
    update_kind = options.get("update_kind")
    fraction = options.get("fraction")
    spec = options.get("dynamics") or simulation.config.dynamics
    if spec is None:
        if update_target is None or update_kind is None or fraction is None:
            raise ConfigurationError(
                "maintenance-point needs a drift: pass a 'dynamics' spec (task "
                "option or session config) or the update_target/update_kind/"
                "fraction options"
            )
        spec = drift_spec(str(update_target), str(update_kind), float(fraction))
    schedule = DynamicsSchedule.from_any(spec)
    data = simulation.data
    configuration = simulation.configuration
    rng = random.Random(simulation.experiment_config.seed + 101)
    reports = []
    for rule in schedule.rules:
        model = rule.build_model(0)
        model.prepare(data, rng)
        report = model.apply(data.network, configuration, 0, rng)
        if report is not None:
            reports.append(report)
            simulation.hooks.emit(
                DRIFT_APPLIED, DriftAppliedEvent(period=0, report=report)
            )
    before = simulation.cost_model.social_cost(configuration, normalized=True)
    result = simulation.run()
    result.extras["social_cost_before"] = before
    result.extras["drift"] = [report.to_dict() for report in reports]
    if update_target is not None:
        result.extras["update_target"] = str(update_target)
    if update_kind is not None:
        result.extras["update_kind"] = str(update_kind)
    if fraction is not None:
        result.extras["fraction"] = float(fraction)
    return result


def run_maintenance_experiment(
    update_target: str,
    config: Optional[ExperimentConfig] = None,
    *,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    strategies: Sequence[str] = ("selfish", "altruistic"),
    update_kinds: Sequence[str] = ("updated-peers", "updated-degree"),
    workers: int = 1,
    executor: Optional[Any] = None,
    hooks: Optional[EventHooks] = None,
) -> MaintenanceResult:
    """Run the Figure 2 (``update_target="workload"``) or Figure 3 (``"content"``) experiment.

    Every (update scenario, strategy, fraction) point is an independent
    ``maintenance-point`` task of the sweep engine whose perturbation is a
    registered drift model carried in the task config's ``dynamics`` field
    (see :func:`drift_spec`) — each task rebuilds the scenario from the same
    seed so every measurement perturbs an identical starting state, which
    also makes the points embarrassingly parallel: ``workers > 1`` fans them
    out — or pass *executor* (name / spec / instance, taking precedence) for
    any registered backend — with results identical to the serial run.
    """
    if update_target not in {"workload", "content"}:
        raise ValueError(f"update_target must be 'workload' or 'content', got {update_target!r}")
    config = config if config is not None else ExperimentConfig.paper()
    figure_name = "figure2" if update_target == "workload" else "figure3"

    tasks = []
    keys = []
    for update_kind in update_kinds:
        for strategy_name in strategies:
            for fraction in fractions:
                session = SessionConfig.from_experiment_config(
                    config,
                    scenario=SCENARIO_SAME_CATEGORY,
                    strategy=strategy_name,
                    initial="category",
                    scenario_overrides={"uniform_workload": True},
                    gain_threshold=config.maintenance_gain_threshold,
                    allow_cluster_creation=False,
                    restrict_to_nonempty=True,
                    dynamics=drift_spec(update_target, update_kind, fraction),
                )
                tasks.append(
                    {
                        "config": session.to_dict(),
                        "runner": "maintenance-point",
                        "options": {
                            "update_target": update_target,
                            "update_kind": update_kind,
                            "fraction": fraction,
                        },
                    }
                )
                keys.append((update_kind, strategy_name))
    sweep = run_sweep(
        SweepSpec(tasks=tuple(tasks)),
        executor=executor_from_any(executor, workers),
        hooks=hooks,
    )

    result = MaintenanceResult(figure=figure_name)
    curves: Dict[tuple, MaintenanceCurve] = {}
    for key, run in zip(keys, sweep.results):
        update_kind, strategy_name = key
        if key not in curves:
            curves[key] = MaintenanceCurve(strategy=strategy_name, update_kind=update_kind)
            result.curves.append(curves[key])
        curves[key].points.append(
            MaintenancePoint(
                fraction=float(run.extras["fraction"]),
                social_cost=run.final_social_cost,
                social_cost_before_maintenance=float(run.extras["social_cost_before"]),
                moves=run.moves,
                rounds=run.rounds,
            )
        )
    return result
