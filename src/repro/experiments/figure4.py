"""Figure 4: influence of the ``alpha`` parameter.

A single peer follows the selfish strategy while its query workload gradually
changes towards a different category.  For ``alpha`` in {0, 1, 2} the figure
plots the peer's individual cost (after it applies its best response) against
the fraction of its workload that has changed.

Expected shape (paper): the larger ``alpha``, the more expensive cluster
membership becomes, so a larger portion of the workload must change before
the peer benefits from joining the (larger) cluster that holds the new data —
the cost curve for large ``alpha`` stays high for longer before dropping.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.reporting import format_series
from repro.datasets.scenarios import SCENARIO_SAME_CATEGORY
from repro.dynamics.updates import update_workload_fraction
from repro.events import EventHooks
from repro.experiments.config import ExperimentConfig
from repro.game.model import ClusterGame
from repro.experiments.maintenance import DEFAULT_FRACTIONS
from repro.registry import register_runner
from repro.session import RunResult, SessionConfig, Simulation
from repro.sweep.engine import run_sweep
from repro.sweep.executors import executor_from_any
from repro.sweep.spec import SweepSpec

__all__ = ["Figure4Curve", "Figure4Result", "run_figure4", "run_figure4_point"]

DEFAULT_ALPHAS: Sequence[float] = (0.0, 1.0, 2.0)


@dataclass
class Figure4Curve:
    """Individual cost of the observed peer for one value of ``alpha``."""

    alpha: float
    points: Dict[float, float] = field(default_factory=dict)
    relocation_fraction: Optional[float] = None

    def series(self) -> Dict[float, float]:
        """fraction of changed workload -> individual cost after the best response."""
        return dict(self.points)


@dataclass
class Figure4Result:
    """All ``alpha`` curves of Figure 4."""

    curves: List[Figure4Curve] = field(default_factory=list)

    def curve_for(self, alpha: float) -> Figure4Curve:
        """The curve for one ``alpha`` value."""
        for curve in self.curves:
            if curve.alpha == alpha:
                return curve
        raise KeyError(f"no curve for alpha={alpha}")

    def to_text(self) -> str:
        """Plain-text rendering of every curve."""
        return "\n\n".join(
            format_series(f"individual cost (alpha={curve.alpha:g})", curve.series())
            for curve in self.curves
        )


@register_runner("figure4-point", mutates_scenario=True)
def run_figure4_point(simulation: Simulation, options: Dict[str, object]) -> RunResult:
    """Sweep runner measuring one Figure 4 point.

    Perturbs the observed peer's workload by ``options["fraction"]`` towards
    a different category, computes that peer's best response and stashes the
    individual cost (the figure's y value) in ``RunResult.extras``.  No
    protocol run happens — the result's ``kind`` is ``"analysis"``.
    """
    fraction = float(options["fraction"])  # type: ignore[arg-type]
    data = simulation.data
    configuration = simulation.configuration
    observed_peer = sorted(data.peer_ids())[0]
    current_category = data.data_categories[observed_peer]
    other_categories = sorted(
        category
        for category in set(data.data_categories.values())
        if category is not None and category != current_category
    )
    new_category = other_categories[0]
    # The paper studies the trade-off of "joining a cluster with more
    # members": make the cluster hosting the new category noticeably
    # larger by merging a third category's peers into it, so the
    # membership-cost increase of the move actually scales with alpha.
    if len(other_categories) >= 2:
        target_cluster = None
        donor_category = other_categories[1]
        for peer_id in data.peer_ids():
            if data.data_categories[peer_id] == new_category:
                target_cluster = configuration.cluster_of(peer_id)
                break
        if target_cluster is not None:
            for peer_id in data.peer_ids():
                if data.data_categories[peer_id] == donor_category:
                    configuration.move(
                        peer_id, configuration.cluster_of(peer_id), target_cluster
                    )
    if fraction > 0.0:
        update_workload_fraction(
            data.network,
            [observed_peer],
            new_category,
            data.generator,
            fraction,
            rng=random.Random(simulation.experiment_config.seed + 211),
        )
    game = ClusterGame(simulation.cost_model, configuration, allow_new_clusters=False)
    response = game.best_response(observed_peer)
    result = RunResult(
        kind="analysis",
        converged=True,
        cluster_count=configuration.num_nonempty_clusters(),
        config=simulation.config.to_dict(),
    )
    result.extras.update(
        {
            "alpha": simulation.experiment_config.alpha,
            "fraction": fraction,
            "individual_cost": response.best_cost,
            "wants_to_move": response.wants_to_move,
        }
    )
    return result


def run_figure4(
    config: Optional[ExperimentConfig] = None,
    *,
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    workers: int = 1,
    executor: Optional[Any] = None,
    hooks: Optional[EventHooks] = None,
) -> Figure4Result:
    """Regenerate Figure 4 (individual cost of a single selfish peer vs workload change).

    Every (alpha, fraction) point is one ``figure4-point`` task of the
    sweep engine; ``workers > 1`` fans them out — or pass *executor* (name /
    spec / instance, taking precedence) for any registered backend — with
    results identical to the serial run.
    """
    config = config if config is not None else ExperimentConfig.paper()
    tasks = []
    keys = []
    for alpha in alphas:
        session = SessionConfig.from_experiment_config(
            config,
            scenario=SCENARIO_SAME_CATEGORY,
            initial="category",
            scenario_overrides={"uniform_workload": True},
            alpha=alpha,
        )
        for fraction in fractions:
            tasks.append(
                {
                    "config": session.to_dict(),
                    "runner": "figure4-point",
                    "options": {"fraction": fraction},
                }
            )
            keys.append(alpha)
    sweep = run_sweep(
        SweepSpec(tasks=tuple(tasks)),
        executor=executor_from_any(executor, workers),
        hooks=hooks,
    )

    result = Figure4Result()
    curves: Dict[float, Figure4Curve] = {}
    for alpha, run in zip(keys, sweep.results):
        if alpha not in curves:
            curves[alpha] = Figure4Curve(alpha=alpha)
            result.curves.append(curves[alpha])
        curve = curves[alpha]
        fraction = float(run.extras["fraction"])
        curve.points[fraction] = float(run.extras["individual_cost"])
        if run.extras["wants_to_move"] and curve.relocation_fraction is None:
            curve.relocation_fraction = fraction
    return result
