"""Figure 4: influence of the ``alpha`` parameter.

A single peer follows the selfish strategy while its query workload gradually
changes towards a different category.  For ``alpha`` in {0, 1, 2} the figure
plots the peer's individual cost (after it applies its best response) against
the fraction of its workload that has changed.

Expected shape (paper): the larger ``alpha``, the more expensive cluster
membership becomes, so a larger portion of the workload must change before
the peer benefits from joining the (larger) cluster that holds the new data —
the cost curve for large ``alpha`` stays high for longer before dropping.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.reporting import format_series
from repro.datasets.scenarios import SCENARIO_SAME_CATEGORY
from repro.dynamics.updates import update_workload_fraction
from repro.experiments.config import ExperimentConfig
from repro.game.model import ClusterGame
from repro.experiments.maintenance import DEFAULT_FRACTIONS
from repro.session import SessionConfig, Simulation

__all__ = ["Figure4Curve", "Figure4Result", "run_figure4"]

DEFAULT_ALPHAS: Sequence[float] = (0.0, 1.0, 2.0)


@dataclass
class Figure4Curve:
    """Individual cost of the observed peer for one value of ``alpha``."""

    alpha: float
    points: Dict[float, float] = field(default_factory=dict)
    relocation_fraction: Optional[float] = None

    def series(self) -> Dict[float, float]:
        """fraction of changed workload -> individual cost after the best response."""
        return dict(self.points)


@dataclass
class Figure4Result:
    """All ``alpha`` curves of Figure 4."""

    curves: List[Figure4Curve] = field(default_factory=list)

    def curve_for(self, alpha: float) -> Figure4Curve:
        """The curve for one ``alpha`` value."""
        for curve in self.curves:
            if curve.alpha == alpha:
                return curve
        raise KeyError(f"no curve for alpha={alpha}")

    def to_text(self) -> str:
        """Plain-text rendering of every curve."""
        return "\n\n".join(
            format_series(f"individual cost (alpha={curve.alpha:g})", curve.series())
            for curve in self.curves
        )


def run_figure4(
    config: Optional[ExperimentConfig] = None,
    *,
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
) -> Figure4Result:
    """Regenerate Figure 4 (individual cost of a single selfish peer vs workload change)."""
    config = config if config is not None else ExperimentConfig.paper()
    result = Figure4Result()
    for alpha in alphas:
        curve = Figure4Curve(alpha=alpha)
        for fraction in fractions:
            simulation = Simulation.from_config(
                SessionConfig.from_experiment_config(
                    config,
                    scenario=SCENARIO_SAME_CATEGORY,
                    initial="category",
                    scenario_overrides={"uniform_workload": True},
                    alpha=alpha,
                )
            )
            data = simulation.data
            configuration = simulation.configuration
            observed_peer = sorted(data.peer_ids())[0]
            current_category = data.data_categories[observed_peer]
            other_categories = sorted(
                category
                for category in set(data.data_categories.values())
                if category is not None and category != current_category
            )
            new_category = other_categories[0]
            # The paper studies the trade-off of "joining a cluster with more
            # members": make the cluster hosting the new category noticeably
            # larger by merging a third category's peers into it, so the
            # membership-cost increase of the move actually scales with alpha.
            if len(other_categories) >= 2:
                target_cluster = None
                donor_category = other_categories[1]
                for peer_id in data.peer_ids():
                    if data.data_categories[peer_id] == new_category:
                        target_cluster = configuration.cluster_of(peer_id)
                        break
                if target_cluster is not None:
                    for peer_id in data.peer_ids():
                        if data.data_categories[peer_id] == donor_category:
                            configuration.move(
                                peer_id, configuration.cluster_of(peer_id), target_cluster
                            )
            if fraction > 0.0:
                update_workload_fraction(
                    data.network,
                    [observed_peer],
                    new_category,
                    data.generator,
                    fraction,
                    rng=random.Random(config.seed + 211),
                )
            game = ClusterGame(simulation.cost_model, configuration, allow_new_clusters=False)
            response = game.best_response(observed_peer)
            curve.points[fraction] = response.best_cost
            if response.wants_to_move and curve.relocation_fraction is None:
                curve.relocation_fraction = fraction
        result.curves.append(curve)
    return result
