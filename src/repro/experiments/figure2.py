"""Figure 2: social cost after **workload** updates in a single cluster.

Left panel — a varying fraction of the peers in the perturbed cluster change
their whole workload to another category (the registered ``workload-full``
drift model with a ``peer_fraction`` ramp); right panel — all peers in the
cluster change a varying fraction of their workload (``workload-fraction``).
Selfish vs altruistic, uniform workload assignment, gain threshold
ε = 0.001, fixed cluster count.  Every point is a sweep task whose
perturbation travels as the task config's ``dynamics`` field, so the same
grid is reproducible from JSON via ``repro sweep``.

Expected shape (paper): the selfish strategy only improves the social cost
once the change is large (above ~50%), because moving the updated peers hurts
the peers whose workload did not change; the altruistic strategy needs an
equally large change before the serving peers follow the demand; neither
recovers the original (pre-update) social cost.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.events import EventHooks
from repro.experiments.config import ExperimentConfig
from repro.experiments.maintenance import (
    DEFAULT_FRACTIONS,
    MaintenanceResult,
    run_maintenance_experiment,
)

__all__ = ["run_figure2"]


def run_figure2(
    config: Optional[ExperimentConfig] = None,
    *,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    strategies: Sequence[str] = ("selfish", "altruistic"),
    workers: int = 1,
    executor: Optional[Any] = None,
    hooks: Optional[EventHooks] = None,
) -> MaintenanceResult:
    """Regenerate Figure 2 (workload updates)."""
    return run_maintenance_experiment(
        "workload",
        config,
        fractions=fractions,
        strategies=strategies,
        workers=workers,
        executor=executor,
        hooks=hooks,
    )
