"""Shared experiment configuration.

The paper's evaluation fixes: 200 peers, Newsgroup articles in 10 categories,
``alpha = 1``, a linear ``theta`` (fully connected clusters), Zipf-distributed
query workload for Section 4.1, uniform workload and a gain threshold
``epsilon = 0.001`` for Section 4.2.  :class:`ExperimentConfig` bundles those
defaults, and provides a ``quick()`` preset (fewer peers/documents) that the
test-suite and fast CI runs use — the experiment *logic* is identical, only
the scale changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.theta import ThetaFunction, theta_from_name
from repro.datasets.scenarios import ScenarioConfig
from repro.errors import ConfigurationError
from repro.strategies import build_strategy

__all__ = ["ExperimentConfig", "build_strategy"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters shared by every experiment driver."""

    scenario: ScenarioConfig = field(default_factory=ScenarioConfig)
    alpha: float = 1.0
    theta_name: str = "linear"
    gain_threshold: float = 0.0
    maintenance_gain_threshold: float = 0.001
    max_rounds: int = 200
    seed: int = 7

    def theta(self) -> ThetaFunction:
        """The configured cluster membership cost function."""
        return theta_from_name(self.theta_name)

    # -- presets ------------------------------------------------------------------

    @classmethod
    def _scale_presets(cls) -> "dict[str, object]":
        """The single source of truth mapping scale names to preset builders."""
        return {"benchmark": cls.benchmark, "paper": cls.paper, "quick": cls.quick}

    @classmethod
    def scales(cls) -> "tuple[str, ...]":
        """The known scale preset names, alphabetically."""
        return tuple(sorted(cls._scale_presets()))

    @classmethod
    def from_scale(cls, name: str) -> "ExperimentConfig":
        """Build the preset configuration for scale *name*.

        Replaces the fragile ``getattr(ExperimentConfig, name)()`` dispatch:
        unknown names raise a :class:`~repro.errors.ConfigurationError` that
        lists the known presets instead of an ``AttributeError`` (or, worse,
        calling an unrelated attribute).
        """
        normalized = str(name).strip().lower()
        presets = cls._scale_presets()
        if normalized not in presets:
            known = ", ".join(cls.scales())
            raise ConfigurationError(f"unknown scale preset {name!r}; known presets: {known}")
        return presets[normalized]()

    @classmethod
    def paper(cls) -> "ExperimentConfig":
        """The paper-scale configuration (200 peers, 10 categories)."""
        return cls()

    @classmethod
    def benchmark(cls) -> "ExperimentConfig":
        """A medium-scale configuration for the benchmark harness.

        Numbers such as the normalised membership cost of the ideal clustering
        (``1 / M``) do not depend on the population size, so the reported
        shapes match the paper-scale run while keeping bench times short.
        """
        scenario = ScenarioConfig(
            num_peers=100,
            num_categories=10,
            documents_per_peer=8,
            queries_per_peer=5,
        )
        return cls(scenario=scenario, max_rounds=150)

    @classmethod
    def quick(cls) -> "ExperimentConfig":
        """A small configuration for tests (40 peers, 4 categories)."""
        scenario = ScenarioConfig(
            num_peers=40,
            num_categories=4,
            documents_per_peer=6,
            terms_per_document=4,
            category_vocabulary_size=30,
            queries_per_peer=4,
        )
        return cls(scenario=scenario, max_rounds=80)

    def with_scenario(self, **overrides: object) -> "ExperimentConfig":
        """A copy of this config with some scenario fields replaced."""
        return replace(self, scenario=replace(self.scenario, **overrides))
