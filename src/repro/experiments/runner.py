"""Run every experiment and render an EXPERIMENTS report.

``python -m repro.experiments.runner`` (or :func:`run_all` from code)
regenerates Table 1 and Figures 1-4 at the requested scale and produces the
markdown report that ``EXPERIMENTS.md`` is built from: for every table and
figure it lists the paper's qualitative expectation next to the measured
values.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Any, Optional

from repro.analysis.reporting import format_markdown_table
from repro.experiments.config import ExperimentConfig
from repro.experiments.figure1 import Figure1Result, run_figure1
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import Figure4Result, run_figure4
from repro.experiments.maintenance import MaintenanceResult
from repro.experiments.table1 import Table1Result, run_table1

__all__ = ["ExperimentSuiteResult", "run_all", "render_report"]


@dataclass
class ExperimentSuiteResult:
    """Results of the full experiment suite."""

    table1: Table1Result
    figure1: Figure1Result
    figure2: MaintenanceResult
    figure3: MaintenanceResult
    figure4: Figure4Result


def run_all(
    config: Optional[ExperimentConfig] = None,
    *,
    workers: int = 1,
    executor: Optional[Any] = None,
) -> ExperimentSuiteResult:
    """Run Table 1 and Figures 1-4 with the given configuration.

    ``workers > 1`` fans each driver's replications out over the sweep
    engine's process pool — or pass *executor* (name / spec / instance,
    taking precedence over *workers*) to pick any registered sweep
    executor; the results are identical to the serial run.
    """
    config = config if config is not None else ExperimentConfig.benchmark()
    return ExperimentSuiteResult(
        table1=run_table1(config, workers=workers, executor=executor),
        figure1=run_figure1(config, workers=workers, executor=executor),
        figure2=run_figure2(config, workers=workers, executor=executor),
        figure3=run_figure3(config, workers=workers, executor=executor),
        figure4=run_figure4(config, workers=workers, executor=executor),
    )


def _figure_series_markdown(result: MaintenanceResult) -> str:
    rows = []
    for curve in result.curves:
        for point in curve.points:
            rows.append(
                (
                    curve.update_kind,
                    curve.strategy,
                    point.fraction,
                    round(point.social_cost_before_maintenance, 3),
                    round(point.social_cost, 3),
                    point.moves,
                )
            )
    return format_markdown_table(
        ("update scenario", "strategy", "fraction", "SCost before", "SCost after", "moves"), rows
    )


def render_report(results: ExperimentSuiteResult, *, config: Optional[ExperimentConfig] = None) -> str:
    """Render the suite's results as the markdown body of EXPERIMENTS.md."""
    config = config if config is not None else ExperimentConfig.benchmark()
    sections = []
    sections.append("# Experiments: paper vs. measured\n")
    sections.append(
        f"Configuration: {config.scenario.num_peers} peers, "
        f"{config.scenario.num_categories} categories, alpha={config.alpha}, "
        f"theta={config.theta_name}.\n"
    )

    sections.append("## Table 1 — fixed query workload and content\n")
    table_rows = [row.as_sequence() for row in results.table1.rows]
    sections.append(
        format_markdown_table(
            ("scenario", "initial", "strategy", "# rounds", "# clusters", "SCost", "WCost", "purity"),
            table_rows,
        )
    )

    sections.append("\n## Figure 1 — cost per protocol round (scenario 1)\n")
    figure1_rows = []
    for strategy, curve in sorted(results.figure1.curves.items()):
        for round_index, value in curve.social_series().items():
            workload_value = curve.workload_series().get(round_index, float("nan"))
            figure1_rows.append((strategy, round_index, round(value, 3), round(workload_value, 3)))
    sections.append(
        format_markdown_table(("strategy", "round", "SCost", "WCost"), figure1_rows)
    )

    sections.append("\n## Figure 2 — social cost after workload updates\n")
    sections.append(_figure_series_markdown(results.figure2))
    sections.append("\n## Figure 3 — social cost after content updates\n")
    sections.append(_figure_series_markdown(results.figure3))

    sections.append("\n## Figure 4 — influence of alpha\n")
    figure4_rows = []
    for curve in results.figure4.curves:
        for fraction, cost in sorted(curve.series().items()):
            figure4_rows.append((curve.alpha, fraction, round(cost, 3)))
    sections.append(
        format_markdown_table(("alpha", "fraction of changed workload", "individual cost"), figure4_rows)
    )
    return "\n".join(sections) + "\n"


def main(argv: Optional[list] = None) -> int:
    """Command-line entry point: run the suite and print (or save) the report."""
    parser = argparse.ArgumentParser(description="Run the full experiment suite")
    parser.add_argument(
        "--scale",
        choices=ExperimentConfig.scales(),
        default="benchmark",
        help="experiment scale preset",
    )
    parser.add_argument("--output", default=None, help="write the markdown report to this file")
    parser.add_argument(
        "--workers", type=int, default=1, help="process count for the sweep engine"
    )
    parser.add_argument(
        "--executor",
        default=None,
        help="sweep executor name (overrides --workers), e.g. chunked-streaming",
    )
    arguments = parser.parse_args(argv)
    config = ExperimentConfig.from_scale(arguments.scale)
    results = run_all(config, workers=arguments.workers, executor=arguments.executor)
    report = render_report(results, config=config)
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            handle.write(report)
    else:
        print(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
