"""Figure 1: social and workload cost through progressing rounds.

The paper plots, for the first scenario (data and queries in the same
category), the normalised social cost (left panel) and workload cost (right
panel) after each round of the relocation protocol, for the selfish and the
altruistic strategy.  The expected shape: the social cost decreases roughly
linearly across rounds, while the workload cost decreases faster in the early
rounds because the requests of the more demanding peers are granted first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.reporting import format_series
from repro.datasets.scenarios import SCENARIO_SAME_CATEGORY
from repro.events import EventHooks
from repro.experiments.config import ExperimentConfig
from repro.session import SessionConfig
from repro.sweep.engine import run_sweep
from repro.sweep.executors import executor_from_any
from repro.sweep.spec import SweepSpec

__all__ = ["Figure1Curve", "Figure1Result", "run_figure1"]


@dataclass
class Figure1Curve:
    """One strategy's per-round cost traces."""

    strategy: str
    social_cost: List[float] = field(default_factory=list)
    workload_cost: List[float] = field(default_factory=list)
    converged: bool = False
    rounds: int = 0

    def social_series(self) -> Dict[int, float]:
        """Round -> normalised social cost (the left panel of Figure 1)."""
        return {index: value for index, value in enumerate(self.social_cost)}

    def workload_series(self) -> Dict[int, float]:
        """Round -> normalised workload cost (the right panel of Figure 1)."""
        return {index: value for index, value in enumerate(self.workload_cost)}


@dataclass
class Figure1Result:
    """Both curves of Figure 1."""

    curves: Dict[str, Figure1Curve] = field(default_factory=dict)

    def to_text(self) -> str:
        """Plain-text rendering of both panels."""
        blocks = []
        for strategy, curve in sorted(self.curves.items()):
            blocks.append(format_series(f"social cost ({strategy})", curve.social_series()))
            blocks.append(format_series(f"workload cost ({strategy})", curve.workload_series()))
        return "\n\n".join(blocks)


def run_figure1(
    config: Optional[ExperimentConfig] = None,
    *,
    strategies: Sequence[str] = ("selfish", "altruistic"),
    initial_kind: str = "random",
    workers: int = 1,
    executor: Optional[Any] = None,
    hooks: Optional[EventHooks] = None,
) -> Figure1Result:
    """Regenerate Figure 1 (scenario 1, cost per protocol round).

    One sweep-engine task per strategy; ``workers`` fans them out — or pass
    *executor* (name / spec / instance, taking precedence) to pick any
    registered backend — with results identical to the serial run.
    """
    config = config if config is not None else ExperimentConfig.paper()
    tasks = []
    for strategy_name in strategies:
        session = SessionConfig.from_experiment_config(
            config,
            scenario=SCENARIO_SAME_CATEGORY,
            strategy=strategy_name,
            initial=initial_kind,
        )
        tasks.append({"config": session.to_dict()})
    sweep = run_sweep(
        SweepSpec(tasks=tuple(tasks)),
        executor=executor_from_any(executor, workers),
        hooks=hooks,
    )
    result = Figure1Result()
    for strategy_name, run in zip(strategies, sweep.results):
        result.curves[strategy_name] = Figure1Curve(
            strategy=strategy_name,
            social_cost=list(run.social_cost_trace),
            workload_cost=list(run.workload_cost_trace),
            converged=run.converged,
            rounds=run.rounds,
        )
    return result
