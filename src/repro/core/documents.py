"""Documents (data items) shared by peers.

Each data item is described by a set of attributes (keywords).  A
:class:`Document` optionally carries the category it was generated from; the
category is *never* used by the algorithms themselves (peers only see
attribute sets), but it is used by the analysis layer to measure cluster
purity and by the dataset generators to build the paper's three scenarios.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import List, Optional

from repro.core.attributes import AttributeSet

__all__ = ["Document", "DocumentCollection"]


class Document:
    """A single shared data item described by a set of attributes.

    Parameters
    ----------
    attributes:
        The keywords describing the item.
    doc_id:
        Optional stable identifier (assigned by generators / collections).
    category:
        Optional ground-truth category label used only for evaluation.
    """

    __slots__ = ("attributes", "doc_id", "category")

    def __init__(
        self,
        attributes: Iterable[str] | AttributeSet,
        *,
        doc_id: Optional[str] = None,
        category: Optional[str] = None,
    ) -> None:
        if isinstance(attributes, AttributeSet):
            self.attributes = attributes
        else:
            self.attributes = AttributeSet(attributes)
        self.doc_id = doc_id
        self.category = category

    def matches(self, query_attributes: AttributeSet) -> bool:
        """Return ``True`` if *query_attributes* is a subset of this document's attributes."""
        return query_attributes.issubset(self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Document):
            return NotImplemented
        return (
            self.attributes == other.attributes
            and self.doc_id == other.doc_id
            and self.category == other.category
        )

    def __hash__(self) -> int:
        return hash((self.attributes, self.doc_id, self.category))

    def __repr__(self) -> str:
        return (
            f"Document(doc_id={self.doc_id!r}, category={self.category!r}, "
            f"attributes={sorted(self.attributes)!r})"
        )


class DocumentCollection:
    """An ordered collection of documents held by a single peer.

    The collection supports mutation (documents can be replaced wholesale or
    appended) because Section 4.2 of the paper studies *content updates*,
    where the data of a cluster is replaced by data of a different category.
    """

    def __init__(self, documents: Optional[Iterable[Document]] = None) -> None:
        self._documents: List[Document] = list(documents) if documents is not None else []

    def add(self, document: Document) -> None:
        """Append *document* to the collection."""
        self._documents.append(document)

    def extend(self, documents: Iterable[Document]) -> None:
        """Append every document in *documents*."""
        self._documents.extend(documents)

    def replace(self, documents: Iterable[Document]) -> None:
        """Replace the entire content of the collection (a content update)."""
        self._documents = list(documents)

    def remove_fraction(self, fraction: float) -> List[Document]:
        """Remove and return the first ``fraction`` of documents.

        Used by the partial content-update scenario of Section 4.2 where only
        a percentage of a peer's data changes.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        count = int(round(fraction * len(self._documents)))
        removed = self._documents[:count]
        self._documents = self._documents[count:]
        return removed

    def categories(self) -> List[str]:
        """Return the (possibly repeated) category labels of the documents."""
        return [doc.category for doc in self._documents if doc.category is not None]

    def match_count(self, query_attributes: AttributeSet) -> int:
        """Number of documents matched by *query_attributes* (``result(q, p)`` restricted to this peer)."""
        return sum(1 for doc in self._documents if doc.matches(query_attributes))

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents)

    def __len__(self) -> int:
        return len(self._documents)

    def __getitem__(self, index: int) -> Document:
        return self._documents[index]

    def __repr__(self) -> str:
        return f"DocumentCollection(size={len(self)})"
