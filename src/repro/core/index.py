"""Inverted index over a peer's documents.

``result(q, p)`` has to be evaluated for every (query, peer) pair when
building recall matrices, so a linear scan over every document for every
query is the dominant cost at experiment scale (200 peers x thousands of
query occurrences).  :class:`InvertedIndex` maps each attribute to the set of
documents containing it; a query's matches are the intersection of the
posting sets of its attributes.

The index returns exactly the same counts as the reference scan in
:mod:`repro.core.matching`; the property-based tests assert this equivalence.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Dict, List, Optional, Set

from repro.core.documents import Document
from repro.core.queries import Query

__all__ = ["InvertedIndex"]


class InvertedIndex:
    """Attribute -> posting-set index over a collection of documents."""

    def __init__(self, documents: Optional[Iterable[Document]] = None) -> None:
        self._postings: Dict[str, Set[int]] = {}
        self._documents: List[Document] = []
        if documents is not None:
            for document in documents:
                self.add(document)

    def add(self, document: Document) -> None:
        """Index *document*."""
        doc_position = len(self._documents)
        self._documents.append(document)
        for attribute in document.attributes:
            self._postings.setdefault(attribute, set()).add(doc_position)

    def rebuild(self, documents: Iterable[Document]) -> None:
        """Discard the current contents and index *documents* from scratch.

        Content updates replace a peer's documents wholesale, so rebuilding is
        the natural maintenance operation.
        """
        self._postings = {}
        self._documents = []
        for document in documents:
            self.add(document)

    def result_count(self, query: Query) -> int:
        """``result(q, p)`` evaluated against the indexed documents."""
        return len(self._matching_positions(query))

    def matching_documents(self, query: Query) -> List[Document]:
        """Return the matched documents in indexing order."""
        positions = sorted(self._matching_positions(query))
        return [self._documents[position] for position in positions]

    def _matching_positions(self, query: Query) -> Set[int]:
        attributes = list(query.attributes)
        if not attributes:
            # An empty query matches every document (the empty set is a subset
            # of any attribute set), mirroring the reference scan.
            return set(range(len(self._documents)))
        # Intersect smallest posting lists first to keep intermediate sets small.
        postings = []
        for attribute in attributes:
            posting = self._postings.get(attribute)
            if not posting:
                return set()
            postings.append(posting)
        postings.sort(key=len)
        result = set(postings[0])
        for posting in postings[1:]:
            result &= posting
            if not result:
                break
        return result

    def posting_sizes(self) -> Dict[str, int]:
        """Mapping of every indexed attribute to its posting-list length.

        For a single-attribute query ``result(q, p)`` *is* the posting size,
        so bulk recall-table construction (the factored recall path) reads
        this dict once per peer instead of intersecting posting sets per
        (query, peer) pair.
        """
        return {attribute: len(postings) for attribute, postings in self._postings.items()}

    def vocabulary(self) -> List[str]:
        """All indexed attributes, sorted."""
        return sorted(self._postings)

    def __len__(self) -> int:
        """Number of indexed documents."""
        return len(self._documents)

    def __repr__(self) -> str:
        return f"InvertedIndex(documents={len(self._documents)}, attributes={len(self._postings)})"
