"""Cluster membership cost functions (the paper's ``theta``).

Participation in a cluster imposes communication and processing costs that
grow with the cluster size.  The paper models this with a monotonically
increasing function ``theta`` of the cluster size ``|c|`` whose shape depends
on the intra-cluster topology:

* when all peers in a cluster are fully connected, ``theta`` is **linear**
  (this is the function used in the paper's evaluation);
* for structured (DHT-like) intra-cluster overlays, ``theta`` may be
  **logarithmic**;
* a **constant** function models clusters whose maintenance cost does not
  depend on size (a useful degenerate case for analysis and ablations).

Every implementation is a callable ``size -> cost`` with a ``name`` so that
experiment reports can label which function was used.
"""

from __future__ import annotations

import math

from repro.registry import register_theta, theta_registry

__all__ = [
    "ThetaFunction",
    "LinearTheta",
    "LogarithmicTheta",
    "ConstantTheta",
    "PolynomialTheta",
    "theta_from_name",
]


class ThetaFunction:
    """Base class for cluster-size cost functions.

    Subclasses implement :meth:`cost`.  Instances are callable, and every
    implementation must be monotonically non-decreasing in the cluster size
    and return ``0`` for an empty cluster — the property-based tests enforce
    both invariants for all built-in functions.
    """

    name = "theta"

    def cost(self, size: int) -> float:
        """Return the membership cost of a cluster with *size* peers."""
        raise NotImplementedError

    def __call__(self, size: int) -> float:
        if size < 0:
            raise ValueError(f"cluster size must be non-negative, got {size}")
        if size == 0:
            return 0.0
        return self.cost(size)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


@register_theta("linear")
class LinearTheta(ThetaFunction):
    """``theta(n) = slope * n``; the paper's fully-connected-cluster model (slope 1)."""

    name = "linear"

    def __init__(self, slope: float = 1.0) -> None:
        if slope <= 0:
            raise ValueError(f"slope must be positive, got {slope}")
        self.slope = slope

    def cost(self, size: int) -> float:
        return self.slope * size

    def __repr__(self) -> str:
        return f"LinearTheta(slope={self.slope})"


@register_theta("logarithmic", aliases=("log",))
class LogarithmicTheta(ThetaFunction):
    """``theta(n) = scale * log2(n + 1)``; models structured intra-cluster overlays."""

    name = "logarithmic"

    def __init__(self, scale: float = 1.0) -> None:
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.scale = scale

    def cost(self, size: int) -> float:
        return self.scale * math.log2(size + 1)

    def __repr__(self) -> str:
        return f"LogarithmicTheta(scale={self.scale})"


@register_theta("constant")
class ConstantTheta(ThetaFunction):
    """``theta(n) = value`` for every non-empty cluster."""

    name = "constant"

    def __init__(self, value: float = 1.0) -> None:
        if value < 0:
            raise ValueError(f"value must be non-negative, got {value}")
        self.value = value

    def cost(self, size: int) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"ConstantTheta(value={self.value})"


@register_theta("polynomial")
class PolynomialTheta(ThetaFunction):
    """``theta(n) = scale * n ** exponent`` with ``exponent >= 0``.

    Generalises the linear model; an exponent of 2 models clusters whose
    maintenance traffic is quadratic in the membership (all-pairs gossip).
    """

    name = "polynomial"

    def __init__(self, exponent: float = 2.0, scale: float = 1.0) -> None:
        if exponent < 0:
            raise ValueError(f"exponent must be non-negative, got {exponent}")
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.exponent = exponent
        self.scale = scale

    def cost(self, size: int) -> float:
        return self.scale * float(size) ** self.exponent

    def __repr__(self) -> str:
        return f"PolynomialTheta(exponent={self.exponent}, scale={self.scale})"


def theta_from_name(name: str, **kwargs: float) -> ThetaFunction:
    """Build a theta function from its registry *name* (``linear``, ``logarithmic``, ...).

    Raises a ``ValueError`` subclass for unknown names whose message lists the
    registered functions; new functions plug in via
    :func:`repro.registry.register_theta`.
    """
    return theta_registry.create(name, **kwargs)
