"""Core data model and cost model of the reproduction.

This package is self-contained (it does not depend on the peer substrate):

* attribute / document / query data model with subset matching,
* an inverted index for fast ``result(q, p)`` evaluation,
* the recall model ``r(q, p)`` and dense weighted recall matrices,
* the cluster membership cost functions ``theta``,
* the cost model: individual cost (Eq. 1), social cost (Eq. 2) and
  workload cost (Eq. 3).
"""

from repro.core.attributes import AttributeSet, Vocabulary, normalize_attribute
from repro.core.costs import NEW_CLUSTER, CostModel
from repro.core.documents import Document, DocumentCollection
from repro.core.index import InvertedIndex
from repro.core.matching import matches, matching_documents, result_count
from repro.core.queries import Query, QueryWorkload
from repro.core.recall import RecallModel, ResultProvider
from repro.core.recall_matrix import WeightedRecallMatrix
from repro.core.theta import (
    ConstantTheta,
    LinearTheta,
    LogarithmicTheta,
    PolynomialTheta,
    ThetaFunction,
    theta_from_name,
)

__all__ = [
    "AttributeSet",
    "Vocabulary",
    "normalize_attribute",
    "Document",
    "DocumentCollection",
    "Query",
    "QueryWorkload",
    "InvertedIndex",
    "matches",
    "matching_documents",
    "result_count",
    "RecallModel",
    "ResultProvider",
    "WeightedRecallMatrix",
    "CostModel",
    "NEW_CLUSTER",
    "ThetaFunction",
    "LinearTheta",
    "LogarithmicTheta",
    "ConstantTheta",
    "PolynomialTheta",
    "theta_from_name",
]
