"""Queries and query workloads.

A query is a set of attributes; it matches a data item when its attributes
are a subset of the item's attributes.  The paper works with a global query
list ``Q`` (queries may appear multiple times) and per-peer local workloads
``Q(p)``; both are multisets, represented here by :class:`QueryWorkload`.

The two frequency notions used throughout the cost model are exposed
directly:

* ``num(Q)`` → :meth:`QueryWorkload.total`
* ``num(q, Q)`` → :meth:`QueryWorkload.count`
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator
from typing import Dict, List, Optional, Tuple

from repro.core.attributes import AttributeSet

__all__ = ["Query", "QueryWorkload"]


class Query:
    """A query: a set of attributes, optionally tagged with its issuer.

    Queries are value objects — two queries with the same attributes are the
    same query regardless of who issued them, which is what the frequency
    counts ``num(q, Q)`` in the paper rely on.
    """

    __slots__ = ("attributes",)

    def __init__(self, attributes: Iterable[str] | AttributeSet) -> None:
        if isinstance(attributes, AttributeSet):
            self.attributes = attributes
        else:
            self.attributes = AttributeSet(attributes)

    @classmethod
    def single_term(cls, term: str) -> "Query":
        """Convenience constructor for the single-keyword queries used in the evaluation."""
        return cls([term])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Query):
            return NotImplemented
        return self.attributes == other.attributes

    def __hash__(self) -> int:
        return hash(self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)

    def __repr__(self) -> str:
        return f"Query({sorted(self.attributes)!r})"


class QueryWorkload:
    """A multiset of queries (``Q`` or ``Q(p)`` in the paper's notation).

    The workload records how many times each distinct query appears.  It is
    mutable because Section 4.2 studies workload updates where a fraction of
    a peer's queries is replaced.
    """

    def __init__(self, queries: Optional[Iterable[Query]] = None) -> None:
        self._counts: Counter = Counter()
        if queries is not None:
            for query in queries:
                self.add(query)

    # -- construction -----------------------------------------------------

    def add(self, query: Query, count: int = 1) -> None:
        """Add *count* occurrences of *query* to the workload."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count:
            self._counts[query] += count

    def extend(self, queries: Iterable[Query]) -> None:
        """Add one occurrence of every query in *queries*."""
        for query in queries:
            self.add(query)

    def merge(self, other: "QueryWorkload") -> "QueryWorkload":
        """Return a new workload containing the queries of both workloads.

        Merging the local workloads of all peers yields the global workload
        ``Q`` used by the workload cost.
        """
        merged = QueryWorkload()
        merged._counts = self._counts + other._counts
        return merged

    def copy(self) -> "QueryWorkload":
        """Return an independent copy of the workload."""
        duplicate = QueryWorkload()
        duplicate._counts = Counter(self._counts)
        return duplicate

    def remove_fraction(self, fraction: float) -> "QueryWorkload":
        """Remove and return approximately ``fraction`` of the workload volume.

        Occurrences are removed query-by-query in deterministic (sorted) order
        until the requested volume has been removed.  Used by the workload
        update scenarios of Section 4.2.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        target = int(round(fraction * self.total()))
        removed = QueryWorkload()
        if target == 0:
            return removed
        for query in sorted(self._counts, key=lambda q: tuple(q.attributes)):
            if target == 0:
                break
            available = self._counts[query]
            take = min(available, target)
            removed.add(query, take)
            remaining = available - take
            if remaining:
                self._counts[query] = remaining
            else:
                del self._counts[query]
            target -= take
        return removed

    # -- frequency accessors ----------------------------------------------

    def total(self) -> int:
        """``num(Q)``: total number of query occurrences."""
        return sum(self._counts.values())

    def count(self, query: Query) -> int:
        """``num(q, Q)``: number of occurrences of *query*."""
        return self._counts.get(query, 0)

    def frequency(self, query: Query) -> float:
        """Relative frequency ``num(q, Q) / num(Q)`` (0 for an empty workload)."""
        total = self.total()
        if total == 0:
            return 0.0
        return self.count(query) / total

    def distinct(self) -> List[Query]:
        """The distinct queries, in deterministic order."""
        return sorted(self._counts, key=lambda q: tuple(q.attributes))

    def items(self) -> Iterator[Tuple[Query, int]]:
        """Iterate over ``(query, count)`` pairs in deterministic order."""
        for query in self.distinct():
            yield query, self._counts[query]

    def as_frequency_dict(self) -> Dict[Query, float]:
        """Return a mapping of query to relative frequency."""
        total = self.total()
        if total == 0:
            return {}
        return {query: count / total for query, count in self.items()}

    # -- dunder ------------------------------------------------------------

    def __iter__(self) -> Iterator[Query]:
        """Iterate over distinct queries (use :meth:`items` for counts)."""
        return iter(self.distinct())

    def __len__(self) -> int:
        """Number of *distinct* queries."""
        return len(self._counts)

    def __contains__(self, query: Query) -> bool:
        return query in self._counts

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QueryWorkload):
            return NotImplemented
        return self._counts == other._counts

    def __repr__(self) -> str:
        return f"QueryWorkload(distinct={len(self)}, total={self.total()})"
