"""The paper's cost model: individual cost, social cost and workload cost.

Equation (1) — individual cost of peer ``p`` for strategy ``s_i``::

    pcost(p, s_i) = alpha * sum over c in s_i of theta(|c|) / |P|
                    + sum over q in Q(p) of num(q, Q(p)) / num(Q(p))
                          * sum over p_j not in P(s_i) of r(q, p_j)

Equation (2) — social cost of a configuration ``S``::

    SCost(S) = sum over peers p_i of pcost(p_i, s_i)

Equation (3) — workload cost of ``S``::

    WCost(S) = alpha * sum over clusters c of |c| * theta(|c|) / |P|
               + sum over q_m in Q of num(q_m, Q)/num(Q)
                     * sum over p_i with q_m in Q(p_i) of num(q_m, Q(p_i))/num(q_m, Q)
                           * sum over p_j not in P(s_i) of r(q_m, p_j)

The difference between the two global costs is only the query weighting:
SCost weights each query by its frequency in the *issuer's local* workload,
WCost by its frequency in the *global* workload, which makes demanding peers
count more (Property 1 in :mod:`repro.game.properties` formalises when the
two coincide up to a constant).

:class:`CostModel` evaluates all three against any *configuration* object
exposing the small read-only interface documented below (implemented by
:class:`repro.peers.configuration.ClusterConfiguration`):

* ``cluster_ids()`` — iterable of all cluster identifiers,
* ``members(cluster_id)`` — the set of peer ids in a cluster,
* ``clusters_of(peer_id)`` — the set of cluster ids the peer belongs to
  (its strategy ``s_i``),
* ``covered_peers(peer_id)`` — the peer set ``P(s_i)``,
* ``size(cluster_id)`` — number of members of the cluster.

A :class:`WeightedRecallMatrix` can optionally be attached to accelerate the
recall-loss term; results are identical to the exact per-query evaluation
(verified by the test suite).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping
from typing import Dict, Optional

from repro.core.queries import QueryWorkload
from repro.core.recall import RecallModel
from repro.core.recall_matrix import WeightedRecallMatrix
from repro.core.theta import LinearTheta, ThetaFunction
from repro.errors import UnknownPeerError

__all__ = ["CostModel", "NEW_CLUSTER"]

PeerId = Hashable
ClusterId = Hashable

#: Sentinel cluster identifier meaning "move to a fresh, currently empty cluster".
NEW_CLUSTER = "__new_cluster__"


class CostModel:
    """Evaluates the paper's individual and global cost functions.

    Parameters
    ----------
    recall_model:
        Exact recall model over the peer population.
    workloads:
        Mapping from peer id to its local query workload ``Q(p)``.
    theta:
        Cluster membership cost function (defaults to the paper's linear
        function).
    alpha:
        Weight of the membership term (``alpha >= 0``; the paper's
        experiments use 1).
    population_size:
        ``|P|`` used for normalising the membership term.  Defaults to the
        number of peers known to the recall model.
    matrix:
        Optional pre-computed :class:`WeightedRecallMatrix`; when present the
        recall-loss terms are computed from it instead of per-query sums.
    """

    def __init__(
        self,
        recall_model: RecallModel,
        workloads: Mapping[PeerId, QueryWorkload],
        *,
        theta: Optional[ThetaFunction] = None,
        alpha: float = 1.0,
        population_size: Optional[int] = None,
        matrix: Optional[WeightedRecallMatrix] = None,
    ) -> None:
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.recall_model = recall_model
        self.workloads = workloads
        self.theta = theta if theta is not None else LinearTheta()
        self.alpha = alpha
        self.population_size = population_size if population_size is not None else len(recall_model)
        if self.population_size <= 0:
            raise ValueError("population_size must be positive")
        self._matrix = matrix

    # -- matrix management ---------------------------------------------------

    def attach_matrix(self, matrix: Optional[WeightedRecallMatrix]) -> None:
        """Attach (or detach with ``None``) a pre-computed recall matrix."""
        self._matrix = matrix

    def build_matrix(self) -> WeightedRecallMatrix:
        """Build, attach and return a fresh :class:`WeightedRecallMatrix`."""
        matrix = WeightedRecallMatrix(self.recall_model, self.workloads)
        self._matrix = matrix
        return matrix

    @property
    def matrix(self) -> Optional[WeightedRecallMatrix]:
        """The attached recall matrix, if any."""
        return self._matrix

    # -- individual cost -------------------------------------------------------

    def membership_cost(self, cluster_sizes: Iterable[int]) -> float:
        """Membership term ``alpha * sum theta(|c|) / |P|`` for the given cluster sizes."""
        return self.alpha * sum(self.theta(size) for size in cluster_sizes) / self.population_size

    def recall_loss(self, peer_id: PeerId, covered_peers: Iterable[PeerId]) -> float:
        """Locally-weighted recall loss of *peer_id* given the covered peer set ``P(s_i)``."""
        if self._matrix is not None:
            # The matrix translates (and memoises) the peer set itself; no
            # per-call repr-sort or set rebuild on the hot path.
            return self._matrix.recall_loss(peer_id, covered_peers)
        covered = set(covered_peers)
        workload = self.workloads.get(peer_id)
        if workload is None or workload.total() == 0:
            return 0.0
        total = workload.total()
        loss = 0.0
        for query, count in workload.items():
            loss += (count / total) * self.recall_model.recall_loss(query, covered)
        return loss

    def global_recall_loss(self, peer_id: PeerId, covered_peers: Iterable[PeerId]) -> float:
        """Globally-weighted recall loss of *peer_id* (used by the workload cost)."""
        if self._matrix is not None:
            return self._matrix.global_recall_loss(peer_id, covered_peers)
        covered = set(covered_peers)
        workload = self.workloads.get(peer_id)
        if workload is None or workload.total() == 0:
            return 0.0
        global_total = sum(load.total() for load in self.workloads.values())
        if global_total == 0:
            return 0.0
        loss = 0.0
        for query, count in workload.items():
            loss += (count / global_total) * self.recall_model.recall_loss(query, covered)
        return loss

    def pcost(self, peer_id: PeerId, configuration: object) -> float:
        """Individual cost (Eq. 1) of *peer_id* under its current strategy in *configuration*."""
        clusters = configuration.clusters_of(peer_id)
        sizes = [configuration.size(cluster_id) for cluster_id in clusters]
        covered = configuration.covered_peers(peer_id)
        if peer_id not in covered:
            covered = set(covered)
            covered.add(peer_id)
        return self.membership_cost(sizes) + self.recall_loss(peer_id, covered)

    def prospective_pcost(
        self,
        peer_id: PeerId,
        cluster_id: ClusterId,
        configuration: object,
    ) -> float:
        """Individual cost *peer_id* would incur with the single-cluster strategy *cluster_id*.

        The evaluation is "as if" the peer were a member: the cluster size
        includes the peer, and the peer's own content is never counted as
        lost recall.  Passing :data:`NEW_CLUSTER` evaluates the cost of
        moving to a fresh, empty cluster (the cluster-creation rule of
        Section 3.2).
        """
        if cluster_id == NEW_CLUSTER:
            members = set()
        else:
            members = set(configuration.members(cluster_id))
        prospective_members = set(members)
        prospective_members.add(peer_id)
        membership = self.membership_cost([len(prospective_members)])
        return membership + self.recall_loss(peer_id, prospective_members)

    # -- global costs ------------------------------------------------------------

    def social_cost(self, configuration: object, *, normalized: bool = False) -> float:
        """Social cost (Eq. 2): sum of all individual costs."""
        total = sum(self.pcost(peer_id, configuration) for peer_id in self.recall_model.peer_ids)
        if normalized:
            return total / self.population_size
        return total

    def workload_cost(self, configuration: object, *, normalized: bool = False) -> float:
        """Workload cost (Eq. 3).

        With ``normalized=True`` the maintenance term is additionally divided
        by ``|P|`` (as the social cost is) while the recall term — which is
        already an average over query occurrences and therefore lies in
        ``[0, 1]`` — is reported as-is.  This is the scale on which the paper
        reports WCost: the ideal same-category clustering yields
        ``WCost = SCost = alpha / M`` and the two measures stay comparable in
        every other scenario.
        """
        maintenance = 0.0
        for cluster_id in configuration.cluster_ids():
            size = configuration.size(cluster_id)
            maintenance += size * self.theta(size)
        maintenance = self.alpha * maintenance / self.population_size

        loss = 0.0
        for peer_id in self.recall_model.peer_ids:
            covered = configuration.covered_peers(peer_id)
            if peer_id not in covered:
                covered = set(covered)
                covered.add(peer_id)
            loss += self.global_recall_loss(peer_id, covered)
        if normalized:
            return maintenance / self.population_size + loss
        return maintenance + loss

    def per_peer_costs(self, configuration: object) -> Dict[PeerId, float]:
        """Individual cost of every peer (useful for reporting and Figure 4)."""
        return {
            peer_id: self.pcost(peer_id, configuration)
            for peer_id in self.recall_model.peer_ids
        }

    def peer_workload(self, peer_id: PeerId) -> QueryWorkload:
        """The local workload of *peer_id* (empty workload if the peer issued no queries)."""
        if peer_id not in self.recall_model:
            raise UnknownPeerError(peer_id)
        return self.workloads.get(peer_id, QueryWorkload())

    def __repr__(self) -> str:
        return (
            f"CostModel(alpha={self.alpha}, theta={self.theta!r}, "
            f"population={self.population_size}, matrix={'attached' if self._matrix else 'none'})"
        )
