"""Query/document matching semantics.

The paper's matching rule: a query ``q`` matches a data item ``d`` of peer
``p`` if the query attributes are a subset of the attributes describing ``d``.
``result(q, p)`` is the number of such matching items at ``p``.

These helpers are the *reference* implementation — simple, obviously correct
scans.  The :mod:`repro.core.index` module provides an inverted index with the
same semantics for the experiment-scale workloads, and the test suite checks
the two against each other.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import List

from repro.core.documents import Document
from repro.core.queries import Query

__all__ = ["matches", "result_count", "matching_documents"]


def matches(query: Query, document: Document) -> bool:
    """Return ``True`` if *query* matches *document* (subset semantics)."""
    return query.attributes.issubset(document.attributes)


def result_count(query: Query, documents: Iterable[Document]) -> int:
    """``result(q, p)``: the number of documents in *documents* matched by *query*."""
    return sum(1 for document in documents if matches(query, document))


def matching_documents(query: Query, documents: Iterable[Document]) -> List[Document]:
    """Return the documents matched by *query*, preserving input order."""
    return [document for document in documents if matches(query, document)]
