"""Recall model: the importance ``r(q, p)`` of a peer for a query.

The paper characterises the importance of a peer ``p`` in the evaluation of a
query ``q`` as the recall achieved when ``q`` is evaluated solely on ``p``::

    r(q, p) = result(q, p) / sum over all peers pk of result(q, pk)

:class:`RecallModel` computes these quantities against a snapshot of each
peer's content.  Content is provided through *providers*: any object with a
``result_count(query) -> int`` method (both :class:`~repro.core.index.InvertedIndex`
and :class:`~repro.core.documents.DocumentCollection` satisfy this through a
thin adapter).  The model caches per-query totals and invalidates the cache
explicitly when content changes, because cost evaluation asks for the same
queries repeatedly while the reformulation protocol runs.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping, Sequence
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.documents import DocumentCollection
from repro.core.index import InvertedIndex
from repro.core.queries import Query
from repro.errors import UnknownPeerError

__all__ = ["ResultProvider", "RecallModel"]

PeerId = Hashable


class ResultProvider:
    """Adapter exposing ``result_count(query)`` over arbitrary peer content.

    Accepts an :class:`InvertedIndex`, a :class:`DocumentCollection`, or any
    object already providing ``result_count``.
    """

    def __init__(self, content: object) -> None:
        #: The wrapped content object (read-only; lets bulk evaluation paths
        #: use content-specific fast paths such as inverted-index posting sizes).
        self.content = content
        if isinstance(content, DocumentCollection):
            self._count: Callable[[Query], int] = lambda query: content.match_count(query.attributes)
        elif hasattr(content, "result_count"):
            self._count = content.result_count  # type: ignore[assignment]
        else:
            raise TypeError(
                "content must be a DocumentCollection, an InvertedIndex, or expose result_count()"
            )

    def result_count(self, query: Query) -> int:
        """Number of items matching *query* in the wrapped content."""
        return int(self._count(query))


class RecallModel:
    """Computes ``result(q, p)``, total results and ``r(q, p)`` over a peer population.

    Parameters
    ----------
    providers:
        Mapping from peer id to that peer's content (anything accepted by
        :class:`ResultProvider`).
    """

    def __init__(self, providers: Mapping[PeerId, object]) -> None:
        self._providers: Dict[PeerId, ResultProvider] = {
            peer_id: ResultProvider(content) for peer_id, content in providers.items()
        }
        self._result_cache: Dict[tuple, int] = {}
        self._total_cache: Dict[Query, int] = {}
        self._peer_order: Optional[List[PeerId]] = None

    # -- population management --------------------------------------------

    @property
    def peer_ids(self) -> List[PeerId]:
        """The peer identifiers known to the model, in deterministic order.

        The repr-sorted order is computed once per population change instead
        of on every access (the cost model reads this inside its global-cost
        loops).  Callers receive a copy, so mutating the returned list never
        corrupts the cache.
        """
        if self._peer_order is None:
            self._peer_order = sorted(self._providers, key=repr)
        return list(self._peer_order)

    def set_content(self, peer_id: PeerId, content: object) -> None:
        """Replace (or register) the content of *peer_id* and invalidate caches."""
        self._providers[peer_id] = ResultProvider(content)
        self.invalidate()

    def remove_peer(self, peer_id: PeerId) -> None:
        """Forget *peer_id* (peer departure) and invalidate caches."""
        if peer_id not in self._providers:
            raise UnknownPeerError(peer_id)
        del self._providers[peer_id]
        self.invalidate()

    def invalidate(self) -> None:
        """Drop all cached counts (call after any content or population change)."""
        self._result_cache.clear()
        self._total_cache.clear()
        self._peer_order = None

    # -- core quantities ----------------------------------------------------

    def result(self, query: Query, peer_id: PeerId) -> int:
        """``result(q, p)``: number of matching items held by *peer_id*."""
        provider = self._providers.get(peer_id)
        if provider is None:
            raise UnknownPeerError(peer_id)
        key = (query, peer_id)
        cached = self._result_cache.get(key)
        if cached is None:
            cached = provider.result_count(query)
            self._result_cache[key] = cached
        return cached

    def total_results(self, query: Query) -> int:
        """Total number of matching items across all peers."""
        cached = self._total_cache.get(query)
        if cached is None:
            cached = sum(self.result(query, peer_id) for peer_id in self._providers)
            self._total_cache[query] = cached
        return cached

    def recall(self, query: Query, peer_id: PeerId) -> float:
        """``r(q, p)``; defined as 0 when no peer holds any result for *query*."""
        total = self.total_results(query)
        if total == 0:
            return 0.0
        return self.result(query, peer_id) / total

    def recall_vector(self, query: Query) -> Dict[PeerId, float]:
        """``r(q, p)`` for every peer ``p``; the values sum to 1 (or 0 if no results exist)."""
        total = self.total_results(query)
        if total == 0:
            return {peer_id: 0.0 for peer_id in self._providers}
        return {peer_id: self.result(query, peer_id) / total for peer_id in self._providers}

    def result_count_matrix(
        self, queries: Sequence[Query], peer_order: Sequence[PeerId]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Bulk ``result(q, p)`` counts: ``(counts, totals)``.

        ``counts[k, j]`` is ``result(queries[k], peer_order[j])`` (0 for peer
        ids the model does not know, mirroring :meth:`recall_vector`'s 0.0
        default); ``totals[k]`` is ``total_results(queries[k])`` summed over
        *all* providers, known or not listed in *peer_order*.  Single-attribute
        queries against inverted-index content are answered from posting-list
        sizes — one dict scan per peer instead of a posting intersection per
        (query, peer) pair — which is what makes recall-table construction
        O(total postings) instead of O(|Q| * |P|).
        """
        num_queries = len(queries)
        single_attribute: Dict[str, int] = {}
        slow_rows: List[int] = []
        for row, query in enumerate(queries):
            attributes = list(query.attributes)
            if len(attributes) == 1:
                single_attribute[attributes[0]] = row
            else:
                slow_rows.append(row)
        columns = {peer_id: column for column, peer_id in enumerate(peer_order)}

        def fill(counts_row_major: np.ndarray, column: int, provider: ResultProvider) -> None:
            content = getattr(provider, "content", None)
            if isinstance(content, InvertedIndex):
                for attribute, size in content.posting_sizes().items():
                    row = single_attribute.get(attribute)
                    if row is not None:
                        counts_row_major[row, column] = size
                rows = slow_rows
            else:
                rows = range(num_queries)
            for row in rows:
                counts_row_major[row, column] = provider.result_count(queries[row])

        counts = np.zeros((num_queries, len(peer_order)), dtype=np.int64)
        for column, peer_id in enumerate(peer_order):
            provider = self._providers.get(peer_id)
            if provider is not None:
                fill(counts, column, provider)
        totals = counts.sum(axis=1)
        extra = [peer_id for peer_id in self._providers if peer_id not in columns]
        if extra:
            extra_counts = np.zeros((num_queries, len(extra)), dtype=np.int64)
            for column, peer_id in enumerate(extra):
                fill(extra_counts, column, self._providers[peer_id])
            totals = totals + extra_counts.sum(axis=1)
        return counts, totals

    def group_recall(self, query: Query, peer_ids: Iterable[PeerId]) -> float:
        """Recall obtained by evaluating *query* only on the peers in *peer_ids*."""
        members = set(peer_ids)
        return sum(self.recall(query, peer_id) for peer_id in members)

    def recall_loss(self, query: Query, included_peers: Iterable[PeerId]) -> float:
        """Recall lost by *not* reaching the peers outside *included_peers*.

        This is the inner sum ``sum over pj not in P(si) of r(q, pj)`` of the
        individual cost (Eq. 1).
        """
        included = set(included_peers)
        return sum(
            self.recall(query, peer_id)
            for peer_id in self._providers
            if peer_id not in included
        )

    def __contains__(self, peer_id: PeerId) -> bool:
        return peer_id in self._providers

    def __len__(self) -> int:
        return len(self._providers)

    def __repr__(self) -> str:
        return f"RecallModel(peers={len(self._providers)})"
