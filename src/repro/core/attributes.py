"""Attribute model.

The paper adopts a generic data model: every data item is described by a set
of *attributes* (e.g. keywords for text documents) and queries are themselves
sets of attributes.  This module provides the small amount of machinery needed
to work with attributes consistently across the library:

* :func:`normalize_attribute` — canonical form of a single attribute,
* :class:`AttributeSet` — an immutable, hashable set of attributes,
* :class:`Vocabulary` — a named universe of attributes with stable integer
  identifiers, used by the synthetic dataset generators and by the inverted
  index for compact storage.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import DatasetError

__all__ = ["normalize_attribute", "AttributeSet", "Vocabulary"]


def normalize_attribute(attribute: str) -> str:
    """Return the canonical form of a single attribute.

    Attributes are case-insensitive keywords with surrounding whitespace
    stripped.  An empty attribute is rejected because subset matching against
    the empty string is never meaningful.

    >>> normalize_attribute("  Databases ")
    'databases'
    """
    if not isinstance(attribute, str):
        raise TypeError(f"attribute must be a string, got {type(attribute).__name__}")
    normalized = attribute.strip().lower()
    if not normalized:
        raise ValueError("attribute must not be empty or whitespace")
    return normalized


class AttributeSet:
    """An immutable, canonicalised set of attributes.

    ``AttributeSet`` is the shared representation for both document
    descriptions and queries.  Instances are hashable so they can be used as
    dictionary keys (e.g. to count query occurrences in a workload).

    >>> a = AttributeSet(["p2p", "Clustering"])
    >>> b = AttributeSet(["clustering", "p2p"])
    >>> a == b
    True
    >>> AttributeSet(["p2p"]).issubset(a)
    True
    """

    __slots__ = ("_attributes",)

    def __init__(self, attributes: Iterable[str]) -> None:
        self._attributes: FrozenSet[str] = frozenset(
            normalize_attribute(attribute) for attribute in attributes
        )

    @property
    def attributes(self) -> FrozenSet[str]:
        """The underlying frozen set of canonical attributes."""
        return self._attributes

    def issubset(self, other: "AttributeSet") -> bool:
        """Return ``True`` if every attribute of this set appears in *other*."""
        return self._attributes.issubset(other._attributes)

    def intersection(self, other: "AttributeSet") -> "AttributeSet":
        """Return the attributes shared with *other*."""
        result = AttributeSet.__new__(AttributeSet)
        result._attributes = self._attributes & other._attributes
        return result

    def union(self, other: "AttributeSet") -> "AttributeSet":
        """Return the attributes of either set."""
        result = AttributeSet.__new__(AttributeSet)
        result._attributes = self._attributes | other._attributes
        return result

    def __contains__(self, attribute: str) -> bool:
        return normalize_attribute(attribute) in self._attributes

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._attributes))

    def __len__(self) -> int:
        return len(self._attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AttributeSet):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        inner = ", ".join(repr(attribute) for attribute in sorted(self._attributes))
        return f"AttributeSet({{{inner}}})"


class Vocabulary:
    """A universe of attributes with stable integer identifiers.

    The synthetic corpus generators draw document terms from per-category
    vocabularies; the inverted index and the recall matrices use the integer
    identifiers for compact, deterministic storage.

    Terms keep the order in which they were added, which the generators use to
    encode Zipfian rank (rank 0 is the most frequent term).
    """

    def __init__(self, terms: Optional[Iterable[str]] = None, *, name: str = "vocabulary") -> None:
        self.name = name
        self._term_to_id: Dict[str, int] = {}
        self._terms: List[str] = []
        if terms is not None:
            for term in terms:
                self.add(term)

    def add(self, term: str) -> int:
        """Add *term* (idempotently) and return its integer identifier."""
        canonical = normalize_attribute(term)
        existing = self._term_to_id.get(canonical)
        if existing is not None:
            return existing
        term_id = len(self._terms)
        self._term_to_id[canonical] = term_id
        self._terms.append(canonical)
        return term_id

    def id_of(self, term: str) -> int:
        """Return the identifier of *term*, raising :class:`DatasetError` if absent."""
        canonical = normalize_attribute(term)
        try:
            return self._term_to_id[canonical]
        except KeyError:
            raise DatasetError(f"term {term!r} is not in vocabulary {self.name!r}") from None

    def term_of(self, term_id: int) -> str:
        """Return the term with identifier *term_id*."""
        try:
            return self._terms[term_id]
        except IndexError:
            raise DatasetError(
                f"term id {term_id} is out of range for vocabulary {self.name!r}"
            ) from None

    def __contains__(self, term: str) -> bool:
        return normalize_attribute(term) in self._term_to_id

    def __len__(self) -> int:
        return len(self._terms)

    def __iter__(self) -> Iterator[str]:
        return iter(self._terms)

    def terms(self) -> Tuple[str, ...]:
        """All terms in insertion (rank) order."""
        return tuple(self._terms)

    def merge(self, other: "Vocabulary") -> "Vocabulary":
        """Return a new vocabulary containing the terms of both vocabularies."""
        merged = Vocabulary(name=f"{self.name}+{other.name}")
        for term in self._terms:
            merged.add(term)
        for term in other._terms:
            merged.add(term)
        return merged

    @classmethod
    def from_frequency_table(cls, frequencies: Mapping[str, int], *, name: str = "vocabulary") -> "Vocabulary":
        """Build a vocabulary ordered by decreasing frequency.

        This mirrors the paper's preprocessing step where the corpus words are
        "sorted by frequency of appearance".
        """
        ordered = sorted(frequencies.items(), key=lambda item: (-item[1], item[0]))
        return cls((term for term, _count in ordered), name=name)

    def __repr__(self) -> str:
        return f"Vocabulary(name={self.name!r}, size={len(self)})"
