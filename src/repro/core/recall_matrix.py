"""Workload-weighted recall matrices — dense and factored representations.

Evaluating the individual cost of every peer against every candidate cluster
on every protocol round is the hot loop of the reproduction.  The recall
term of the individual cost only ever uses the per-query recalls ``r(q, pj)``
weighted by the query frequencies of the evaluating peer, so the whole term
collapses to a single |P| x |P| matrix::

    W[i, j] = sum over q in Q(p_i) of  num(q, Q(p_i)) / num(Q(p_i)) * r(q, p_j)

With ``W`` in hand, the recall loss of peer ``i`` for a set of co-clustered
peers ``P(s_i)`` is ``W[i, :].sum() - W[i, P(s_i)].sum()`` — a couple of numpy
reductions instead of thousands of per-query lookups.

An analogous matrix with global query frequencies supports the workload cost::

    V[i, j] = sum over q in Q(p_i) of  num(q, Q(p_i)) / num(Q) * r(q, p_j)

**The factored form.**  ``W`` (and ``V``, and the service matrix) factor
through the much smaller recall table ``B[q, j] = r(q, p_j)`` over the
*distinct* queries ``q`` (vocabulary-bounded — a few hundred for the paper's
single-term workloads, regardless of population size)::

    W[i, j] = sum over k of  w[i, k] * B[qidx[i, k], j]

where ``qidx``/``w`` are per-peer padded query-index and weight arrays with
at most ``kmax`` (queries per peer) columns.  :class:`FactoredRecall` holds
exactly these arrays: O(|P| * kmax + |Q_u| * |P|) memory instead of O(|P|^2),
with every column / covered-column of ``W`` recoverable as an O(|P| * kmax)
gather.  This is what lets the label-vector best-response kernel and the
100k-peer benchmarks run without ever materialising a |P| x |P| array.

The dense matrices are now *built from* the factored form with a per-query
accumulation that reproduces the historical per-row Python loop bit for bit
(same per-element accumulation order, same scalar divisions, exact +0.0
padding), so dense consumers see byte-identical matrices at a fraction of the
construction cost.  Construct with ``mode="factored"`` to skip the dense
build entirely; the dense matrices then materialise lazily only if a dense
consumer asks.

Both representations are exact restatements of the paper's formulas; the
test suite cross-checks them against the reference (per-query) implementation.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.queries import Query, QueryWorkload
from repro.core.recall import RecallModel
from repro.errors import UnknownPeerError

__all__ = ["WeightedRecallMatrix", "FactoredRecall"]

PeerId = Hashable


class FactoredRecall:
    """The ``W = A @ B`` factorisation of the weighted recall matrices.

    Attributes
    ----------
    B:
        ``(|Q_u|, |P|)`` recall table over the distinct queries: ``B[k, j] =
        r(queries[k], peer_order[j])``.
    B_totals:
        ``(|Q_u|,)`` total result counts per distinct query (as floats).
    qidx:
        ``(|P|, kmax)`` per-peer query-row indices into ``B`` (zero-padded;
        padded entries carry zero weights, so they never contribute).
    w_local / w_global / w_count:
        ``(|P|, kmax)`` per-peer query weights: ``num(q, Q(p)) / num(Q(p))``,
        ``num(q, Q(p)) / num(Q)`` and the raw counts ``num(q, Q(p))``.
    """

    __slots__ = ("queries", "B", "B_totals", "qidx", "w_local", "w_global", "w_count")

    def __init__(
        self,
        queries: List[Query],
        B: np.ndarray,
        B_totals: np.ndarray,
        qidx: np.ndarray,
        w_local: np.ndarray,
        w_global: np.ndarray,
        w_count: np.ndarray,
    ) -> None:
        self.queries = queries
        self.B = B
        self.B_totals = B_totals
        self.qidx = qidx
        self.w_local = w_local
        self.w_global = w_global
        self.w_count = w_count

    # -- construction -------------------------------------------------------

    @classmethod
    def build(
        cls,
        recall_model: RecallModel,
        workloads: Mapping[PeerId, QueryWorkload],
        peer_order: Sequence[PeerId],
    ) -> "FactoredRecall":
        """Build the factored arrays (always float64; :meth:`cast` for float32)."""
        population = len(peer_order)
        queries: List[Query] = []
        query_rows: Dict[Query, int] = {}
        per_peer: List[List[Tuple[int, int]]] = []
        global_total = sum(
            workloads.get(peer_id, QueryWorkload()).total() for peer_id in peer_order
        )
        kmax = 0
        for peer_id in peer_order:
            workload = workloads.get(peer_id)
            entries: List[Tuple[int, int]] = []
            if workload is not None and workload.total():
                for query, count in workload.items():
                    qrow = query_rows.get(query)
                    if qrow is None:
                        qrow = len(queries)
                        query_rows[query] = qrow
                        queries.append(query)
                    entries.append((qrow, count))
            per_peer.append(entries)
            kmax = max(kmax, len(entries))
        counts, totals = recall_model.result_count_matrix(queries, peer_order)
        totals_f = totals.astype(float)
        B = np.zeros(counts.shape, dtype=float)
        np.divide(counts, totals_f[:, None], out=B, where=totals_f[:, None] > 0)
        qidx = np.zeros((population, kmax), dtype=np.intp)
        w_local = np.zeros((population, kmax))
        w_global = np.zeros((population, kmax))
        w_count = np.zeros((population, kmax))
        for row, entries in enumerate(per_peer):
            if not entries:
                continue
            local_total = workloads[peer_order[row]].total()
            for k, (qrow, count) in enumerate(entries):
                qidx[row, k] = qrow
                w_count[row, k] = count
                w_local[row, k] = count / local_total
                if global_total:
                    w_global[row, k] = count / global_total
        return cls(queries, B, totals_f, qidx, w_local, w_global, w_count)

    def cast(self, dtype: np.dtype) -> "FactoredRecall":
        """A copy with the float arrays cast to *dtype* (``qidx`` is shared)."""
        return FactoredRecall(
            self.queries,
            self.B.astype(dtype),
            self.B_totals.astype(dtype),
            self.qidx,
            self.w_local.astype(dtype),
            self.w_global.astype(dtype),
            self.w_count.astype(dtype),
        )

    # -- segmented reductions ------------------------------------------------

    @property
    def population(self) -> int:
        return self.qidx.shape[0]

    def totals_local(self) -> np.ndarray:
        """``W.sum(axis=1)`` without materialising ``W`` (O(|P| * kmax))."""
        row_sums = self.B.sum(axis=1)
        return (self.w_local * row_sums[self.qidx]).sum(axis=1)

    def totals_global(self) -> np.ndarray:
        """``V.sum(axis=1)`` without materialising ``V``."""
        row_sums = self.B.sum(axis=1)
        return (self.w_global * row_sums[self.qidx]).sum(axis=1)

    def own_local(self) -> np.ndarray:
        """``diag(W)`` — each peer's weighted recall of its own content."""
        gathered = self.B[self.qidx, np.arange(self.population)[:, None]]
        return (self.w_local * gathered).sum(axis=1)

    def column_local(self, column: int) -> np.ndarray:
        """``W[:, column]`` — every peer's weighted recall of one provider."""
        return (self.w_local * self.B[self.qidx, column]).sum(axis=1)

    def column_global(self, column: int) -> np.ndarray:
        """``V[:, column]``."""
        return (self.w_global * self.B[self.qidx, column]).sum(axis=1)

    def covered_local(self, columns: np.ndarray) -> np.ndarray:
        """``W[:, columns].sum(axis=1)`` — covered recall of one member set.

        A segmented reduction: the member columns collapse to a per-query
        group recall ``B[:, columns].sum(axis=1)`` (O(|Q_u| * |members|)),
        then one O(|P| * kmax) gather redistributes it to every evaluating
        peer.  No |P| x |C| product anywhere.
        """
        group = self.B[:, columns].sum(axis=1)
        return (self.w_local * group[self.qidx]).sum(axis=1)

    def covered_global(self, columns: np.ndarray) -> np.ndarray:
        """``V[:, columns].sum(axis=1)``."""
        group = self.B[:, columns].sum(axis=1)
        return (self.w_global * group[self.qidx]).sum(axis=1)

    # -- dense materialisation ----------------------------------------------

    def dense_local(self) -> np.ndarray:
        """Materialise ``W`` — bit-identical to the historical per-row loop.

        Element ``[i, j]`` accumulates ``w_local[i, k] * B[qidx[i, k], j]``
        over ``k`` in workload order, exactly the additions the reference
        Python loop performed (padding contributes exact ``+0.0`` terms).
        """
        population = self.population
        out = np.zeros((population, population), dtype=self.B.dtype)
        for k in range(self.qidx.shape[1]):
            out += self.w_local[:, k, None] * self.B[self.qidx[:, k], :]
        return out

    def dense_global(self) -> np.ndarray:
        """Materialise ``V`` (bit-identical to the historical loop)."""
        population = self.population
        out = np.zeros((population, population), dtype=self.B.dtype)
        for k in range(self.qidx.shape[1]):
            out += self.w_global[:, k, None] * self.B[self.qidx[:, k], :]
        return out

    def dense_service(self) -> np.ndarray:
        """Materialise the service matrix ``S`` (rows: providers)."""
        population = self.population
        out = np.zeros((population, population), dtype=self.B.dtype)
        for k in range(self.qidx.shape[1]):
            rows = self.qidx[:, k]
            term = self.w_count[:, k, None] * self.B[rows, :]
            term *= self.B_totals[rows, None]
            out += term
        return np.ascontiguousarray(out.T)

    def __repr__(self) -> str:
        return (
            f"FactoredRecall(peers={self.population}, queries={len(self.queries)}, "
            f"kmax={self.qidx.shape[1]}, dtype={self.B.dtype})"
        )


class WeightedRecallMatrix:
    """Pre-computed, workload-weighted recall matrices over a peer population.

    Parameters
    ----------
    recall_model:
        The exact recall model providing ``r(q, p)``.
    workloads:
        Mapping from peer id to that peer's local query workload ``Q(p)``.
    peer_order:
        Optional explicit ordering of peer ids (defaults to the recall
        model's deterministic order).  The ordering fixes the matrix row /
        column layout.
    mode:
        ``"dense"`` (default) materialises the |P| x |P| matrices eagerly —
        the historical behaviour, byte-identical values.  ``"factored"``
        keeps only the :class:`FactoredRecall` arrays; the dense matrices
        build lazily if (and only if) a dense consumer asks, so label-vector
        kernels at 50k+ peers never pay O(|P|^2) memory.
    """

    def __init__(
        self,
        recall_model: RecallModel,
        workloads: Mapping[PeerId, QueryWorkload],
        peer_order: Optional[Sequence[PeerId]] = None,
        *,
        mode: str = "dense",
    ) -> None:
        if mode not in ("dense", "factored"):
            raise ValueError(f"mode must be 'dense' or 'factored', got {mode!r}")
        self._recall_model = recall_model
        self._workloads = workloads
        self._peer_order: List[PeerId] = list(peer_order) if peer_order is not None else list(
            recall_model.peer_ids
        )
        self._index_of: Dict[PeerId, int] = {
            peer_id: index for index, peer_id in enumerate(self._peer_order)
        }
        if len(self._index_of) != len(self._peer_order):
            raise ValueError("peer_order contains duplicate peer ids")
        #: Memoised peer-set -> sorted row indices translation (frozenset keys
        #: only; member sets repeat across peers and rounds, so the same
        #: cluster never pays the dict-lookup translation twice).
        self._indices_cache: Dict[FrozenSet[PeerId], np.ndarray] = {}
        self._mode = mode
        self._factored: Optional[FactoredRecall] = None
        self._factored_cast: Dict[np.dtype, FactoredRecall] = {}
        self._local: Optional[np.ndarray] = None
        self._global: Optional[np.ndarray] = None
        self._service: Optional[np.ndarray] = None
        if mode == "dense":
            self._ensure_local()
            self._ensure_global()
            self._ensure_service()

    @classmethod
    def from_arrays(
        cls,
        recall_model: RecallModel,
        workloads: Mapping[PeerId, QueryWorkload],
        peer_order: Sequence[PeerId],
        *,
        local: np.ndarray,
        global_matrix: np.ndarray,
        service: np.ndarray,
    ) -> "WeightedRecallMatrix":
        """Adopt pre-built dense matrices instead of building them.

        This is the attach side of the shared-memory scenario tier
        (:mod:`repro.sweep.shm`): sweep workers wrap read-only views over a
        coordinator-published buffer, so every worker shares one physical
        copy.  The arrays are adopted as-is (no copy); the accessor methods
        still return copies, so callers cannot tell the difference.
        """
        matrix = cls.__new__(cls)
        matrix._recall_model = recall_model
        matrix._workloads = workloads
        matrix._peer_order = list(peer_order)
        matrix._index_of = {
            peer_id: index for index, peer_id in enumerate(matrix._peer_order)
        }
        if len(matrix._index_of) != len(matrix._peer_order):
            raise ValueError("peer_order contains duplicate peer ids")
        population = len(matrix._peer_order)
        for name, array in (("local", local), ("global_matrix", global_matrix), ("service", service)):
            if array.shape != (population, population):
                raise ValueError(
                    f"{name} has shape {array.shape}, expected {(population, population)}"
                )
        matrix._indices_cache = {}
        matrix._mode = "dense"
        matrix._factored = None
        matrix._factored_cast = {}
        matrix._local = np.asarray(local)
        matrix._global = np.asarray(global_matrix)
        matrix._service = np.asarray(service)
        return matrix

    # -- construction -------------------------------------------------------

    def factored(self, dtype: Optional[object] = None) -> FactoredRecall:
        """The :class:`FactoredRecall` arrays (built once, then cached).

        ``dtype`` other than float64 returns a cached cast copy — the
        float32 kernel mode reads its arrays from here.
        """
        if self._factored is None:
            self._factored = FactoredRecall.build(
                self._recall_model, self._workloads, self._peer_order
            )
        if dtype is None:
            return self._factored
        key = np.dtype(dtype)
        if key == np.float64:
            return self._factored
        cast = self._factored_cast.get(key)
        if cast is None:
            cast = self._factored.cast(key)
            self._factored_cast[key] = cast
        return cast

    def _ensure_local(self) -> np.ndarray:
        if self._local is None:
            self._local = self.factored().dense_local()
        return self._local

    def _ensure_global(self) -> np.ndarray:
        if self._global is None:
            self._global = self.factored().dense_global()
        return self._global

    def _ensure_service(self) -> np.ndarray:
        if self._service is None:
            self._service = self.factored().dense_service()
        return self._service

    # -- accessors -----------------------------------------------------------

    @property
    def mode(self) -> str:
        """``"dense"`` or ``"factored"`` (the construction-time choice)."""
        return self._mode

    @property
    def peer_order(self) -> List[PeerId]:
        """The row/column ordering of peer ids."""
        return list(self._peer_order)

    @property
    def peer_index(self) -> Dict[PeerId, int]:
        """The live ``peer_id -> row index`` map.

        Shared with every consumer (kernels, cost models) so the map is built
        exactly once per matrix — treat it as read-only.
        """
        return self._index_of

    def index_of(self, peer_id: PeerId) -> int:
        """Row index of *peer_id*."""
        try:
            return self._index_of[peer_id]
        except KeyError:
            raise UnknownPeerError(peer_id) from None

    def local_matrix(self) -> np.ndarray:
        """Copy of the locally-weighted matrix ``W`` (rows: evaluating peer)."""
        return self._ensure_local().copy()

    def global_matrix(self) -> np.ndarray:
        """Copy of the globally-weighted matrix ``V`` used by the workload cost."""
        return self._ensure_global().copy()

    def service_matrix(self) -> np.ndarray:
        """Copy of the service matrix ``S``.

        ``S[p, j]`` is the total number of results peer ``p`` provides for the
        local workload of peer ``j`` (``sum over q in Q(p_j) of num(q, Q(p_j))
        * result(q, p)``) — the raw material of the altruistic contribution
        measure (Eq. 6).
        """
        return self._ensure_service().copy()

    def local_view(self) -> np.ndarray:
        """Read-only (non-copying) view of ``W`` — for consumers that never write."""
        view = self._ensure_local().view()
        view.flags.writeable = False
        return view

    def global_view(self) -> np.ndarray:
        """Read-only (non-copying) view of ``V``."""
        view = self._ensure_global().view()
        view.flags.writeable = False
        return view

    def service_view(self) -> np.ndarray:
        """Read-only (non-copying) view of ``S``."""
        view = self._ensure_service().view()
        view.flags.writeable = False
        return view

    def contribution_matrix(self, membership: np.ndarray) -> np.ndarray:
        """Vectorised ``contribution(p, c)`` (Eq. 6) for every peer and cluster.

        Parameters
        ----------
        membership:
            A ``(|P|, |C|)`` 0/1 matrix of current cluster membership.

        Returns
        -------
        numpy.ndarray
            A ``(|P|, |C|)`` matrix whose ``[p, k]`` entry is the fraction of
            all results served by peer ``p`` that go to queries issued by
            members of cluster ``k``.  Rows of peers that serve no results are
            all zeros.
        """
        if membership.shape[0] != len(self._peer_order):
            raise ValueError(
                f"membership has {membership.shape[0]} rows, expected {len(self._peer_order)}"
            )
        service = self._ensure_service()
        served_per_cluster = service @ membership
        totals = service.sum(axis=1, keepdims=True)
        with np.errstate(divide="ignore", invalid="ignore"):
            contributions = np.where(totals > 0, served_per_cluster / totals, 0.0)
        return contributions

    # -- recall-loss queries ---------------------------------------------------

    #: Bound above which the peer-set -> indices memo is reset (the sets are
    #: tiny arrays, but protocol runs produce a fresh frozenset per membership
    #: change, so the memo would otherwise grow without limit).
    _INDICES_CACHE_LIMIT = 8192

    def covered_indices(self, covered_peers: Iterable[PeerId]) -> np.ndarray:
        """Sorted, de-duplicated row indices of the known peers in *covered_peers*.

        Sorting by index keeps the reduction order deterministic (it matches
        the old ``sorted(..., key=repr)`` order whenever the peer order itself
        is repr-sorted, as every built scenario's is) without re-sorting peer
        ids by repr on every cost evaluation; ``np.unique`` also drops
        duplicate mentions, exactly like the ``set()`` the exact reference
        path builds.  Results for ``frozenset`` arguments — what
        :meth:`ClusterConfiguration.covered_peers` returns — are memoised.
        """
        cache_key = covered_peers if isinstance(covered_peers, frozenset) else None
        if cache_key is not None:
            cached = self._indices_cache.get(cache_key)
            if cached is not None:
                return cached
        index_of = self._index_of
        indices = np.unique(
            np.fromiter(
                (index_of[other] for other in covered_peers if other in index_of),
                dtype=np.intp,
            )
        )
        if cache_key is not None:
            if len(self._indices_cache) >= self._INDICES_CACHE_LIMIT:
                self._indices_cache.clear()
            self._indices_cache[cache_key] = indices
        return indices

    def total_weight(self, peer_id: PeerId) -> float:
        """Total weighted recall available to *peer_id* (joining every cluster)."""
        return float(self._ensure_local()[self.index_of(peer_id)].sum())

    def covered_weight(self, peer_id: PeerId, covered_peers: Iterable[PeerId]) -> float:
        """Weighted recall that *peer_id* obtains from the peers in *covered_peers*."""
        row = self._ensure_local()[self.index_of(peer_id)]
        indices = self.covered_indices(covered_peers)
        if indices.size == 0:
            return 0.0
        return float(row[indices].sum())

    def recall_loss(self, peer_id: PeerId, covered_peers: Iterable[PeerId]) -> float:
        """Weighted recall lost by not reaching peers outside *covered_peers*.

        This equals the second term of the individual cost (Eq. 1) for the
        strategy whose covered peer set is *covered_peers*.
        """
        return self.total_weight(peer_id) - self.covered_weight(peer_id, covered_peers)

    def global_recall_loss(self, peer_id: PeerId, covered_peers: Iterable[PeerId]) -> float:
        """Globally-weighted recall loss for *peer_id* (workload-cost weighting)."""
        row = self._ensure_global()[self.index_of(peer_id)]
        total = float(row.sum())
        indices = self.covered_indices(covered_peers)
        covered = float(row[indices].sum()) if indices.size else 0.0
        return total - covered

    def loss_matrix_for_clusters(self, membership: np.ndarray) -> np.ndarray:
        """Vectorised recall loss of every peer against every cluster.

        Parameters
        ----------
        membership:
            A ``(|P|, |C|)`` 0/1 matrix whose entry ``[j, k]`` is 1 when peer
            ``j`` belongs to cluster ``k``.

        Returns
        -------
        numpy.ndarray
            A ``(|P|, |C|)`` matrix whose entry ``[i, k]`` is the recall loss
            peer ``i`` would suffer if its strategy were exactly cluster ``k``
            (with peer ``i`` itself counted as covered — a peer always reaches
            its own content).
        """
        if membership.shape[0] != len(self._peer_order):
            raise ValueError(
                f"membership has {membership.shape[0]} rows, expected {len(self._peer_order)}"
            )
        local = self._ensure_local()
        covered = local @ membership
        own = np.diag(local)[:, None]
        # A peer that is not currently a member of cluster k would still reach
        # its own results after joining; add its own weight unless the cluster
        # already contains it (in which case the product already counted it).
        own_counted = membership * np.diag(local)[:, None]
        covered_adjusted = covered - own_counted + own
        totals = local.sum(axis=1, keepdims=True)
        return totals - covered_adjusted

    def __len__(self) -> int:
        return len(self._peer_order)

    def __repr__(self) -> str:
        return f"WeightedRecallMatrix(peers={len(self._peer_order)}, mode={self._mode})"
