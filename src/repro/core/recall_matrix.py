"""Dense, workload-weighted recall matrices.

Evaluating the individual cost of every peer against every candidate cluster
on every protocol round is the hot loop of the reproduction (200 peers x up
to 200 clusters x hundreds of rounds).  The recall term of the individual
cost only ever uses the per-query recalls ``r(q, pj)`` weighted by the query
frequencies of the evaluating peer, so the whole term collapses to a single
|P| x |P| matrix::

    W[i, j] = sum over q in Q(p_i) of  num(q, Q(p_i)) / num(Q(p_i)) * r(q, p_j)

With ``W`` in hand, the recall loss of peer ``i`` for a set of co-clustered
peers ``P(s_i)`` is ``W[i, :].sum() - W[i, P(s_i)].sum()`` — a couple of numpy
reductions instead of thousands of per-query lookups.

An analogous matrix with global query frequencies supports the workload cost::

    V[i, j] = sum over q in Q(p_i) of  num(q, Q(p_i)) / num(Q) * r(q, p_j)

Both matrices are exact restatements of the paper's formulas; the test suite
cross-checks them against the reference (per-query) implementation.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping
from typing import Dict, FrozenSet, List, Optional, Sequence

import numpy as np

from repro.core.queries import QueryWorkload
from repro.core.recall import RecallModel
from repro.errors import UnknownPeerError

__all__ = ["WeightedRecallMatrix"]

PeerId = Hashable


class WeightedRecallMatrix:
    """Pre-computed, workload-weighted recall matrices over a peer population.

    Parameters
    ----------
    recall_model:
        The exact recall model providing ``r(q, p)``.
    workloads:
        Mapping from peer id to that peer's local query workload ``Q(p)``.
    peer_order:
        Optional explicit ordering of peer ids (defaults to the recall
        model's deterministic order).  The ordering fixes the matrix row /
        column layout.
    """

    def __init__(
        self,
        recall_model: RecallModel,
        workloads: Mapping[PeerId, QueryWorkload],
        peer_order: Optional[Sequence[PeerId]] = None,
    ) -> None:
        self._recall_model = recall_model
        self._workloads = workloads
        self._peer_order: List[PeerId] = list(peer_order) if peer_order is not None else list(
            recall_model.peer_ids
        )
        self._index_of: Dict[PeerId, int] = {
            peer_id: index for index, peer_id in enumerate(self._peer_order)
        }
        if len(self._index_of) != len(self._peer_order):
            raise ValueError("peer_order contains duplicate peer ids")
        #: Memoised peer-set -> sorted row indices translation (frozenset keys
        #: only; member sets repeat across peers and rounds, so the same
        #: cluster never pays the dict-lookup translation twice).
        self._indices_cache: Dict[FrozenSet[PeerId], np.ndarray] = {}
        self._local, self._global, self._service = self._build()

    # -- construction -------------------------------------------------------

    def _build(self) -> tuple:
        population = len(self._peer_order)
        local = np.zeros((population, population), dtype=float)
        global_weighted = np.zeros((population, population), dtype=float)
        service = np.zeros((population, population), dtype=float)
        global_total = sum(
            self._workloads.get(peer_id, QueryWorkload()).total() for peer_id in self._peer_order
        )
        for row, peer_id in enumerate(self._peer_order):
            workload = self._workloads.get(peer_id)
            if workload is None or workload.total() == 0:
                continue
            local_total = workload.total()
            for query, count in workload.items():
                recall_vector = self._recall_model.recall_vector(query)
                weights = np.fromiter(
                    (recall_vector.get(other, 0.0) for other in self._peer_order),
                    dtype=float,
                    count=population,
                )
                local[row] += (count / local_total) * weights
                if global_total:
                    global_weighted[row] += (count / global_total) * weights
                # Absolute result counts served by each provider to this
                # issuer's workload: result(q, provider) = r(q, provider) *
                # total results for q.  Rows of ``service`` are providers.
                total_results = self._recall_model.total_results(query)
                if total_results:
                    service[:, row] += count * weights * total_results
        return local, global_weighted, service

    # -- accessors -----------------------------------------------------------

    @property
    def peer_order(self) -> List[PeerId]:
        """The row/column ordering of peer ids."""
        return list(self._peer_order)

    def index_of(self, peer_id: PeerId) -> int:
        """Row index of *peer_id*."""
        try:
            return self._index_of[peer_id]
        except KeyError:
            raise UnknownPeerError(peer_id) from None

    def local_matrix(self) -> np.ndarray:
        """Copy of the locally-weighted matrix ``W`` (rows: evaluating peer)."""
        return self._local.copy()

    def global_matrix(self) -> np.ndarray:
        """Copy of the globally-weighted matrix ``V`` used by the workload cost."""
        return self._global.copy()

    def service_matrix(self) -> np.ndarray:
        """Copy of the service matrix ``S``.

        ``S[p, j]`` is the total number of results peer ``p`` provides for the
        local workload of peer ``j`` (``sum over q in Q(p_j) of num(q, Q(p_j))
        * result(q, p)``) — the raw material of the altruistic contribution
        measure (Eq. 6).
        """
        return self._service.copy()

    def contribution_matrix(self, membership: np.ndarray) -> np.ndarray:
        """Vectorised ``contribution(p, c)`` (Eq. 6) for every peer and cluster.

        Parameters
        ----------
        membership:
            A ``(|P|, |C|)`` 0/1 matrix of current cluster membership.

        Returns
        -------
        numpy.ndarray
            A ``(|P|, |C|)`` matrix whose ``[p, k]`` entry is the fraction of
            all results served by peer ``p`` that go to queries issued by
            members of cluster ``k``.  Rows of peers that serve no results are
            all zeros.
        """
        if membership.shape[0] != len(self._peer_order):
            raise ValueError(
                f"membership has {membership.shape[0]} rows, expected {len(self._peer_order)}"
            )
        served_per_cluster = self._service @ membership
        totals = self._service.sum(axis=1, keepdims=True)
        with np.errstate(divide="ignore", invalid="ignore"):
            contributions = np.where(totals > 0, served_per_cluster / totals, 0.0)
        return contributions

    # -- recall-loss queries ---------------------------------------------------

    #: Bound above which the peer-set -> indices memo is reset (the sets are
    #: tiny arrays, but protocol runs produce a fresh frozenset per membership
    #: change, so the memo would otherwise grow without limit).
    _INDICES_CACHE_LIMIT = 8192

    def covered_indices(self, covered_peers: Iterable[PeerId]) -> np.ndarray:
        """Sorted, de-duplicated row indices of the known peers in *covered_peers*.

        Sorting by index keeps the reduction order deterministic (it matches
        the old ``sorted(..., key=repr)`` order whenever the peer order itself
        is repr-sorted, as every built scenario's is) without re-sorting peer
        ids by repr on every cost evaluation; ``np.unique`` also drops
        duplicate mentions, exactly like the ``set()`` the exact reference
        path builds.  Results for ``frozenset`` arguments — what
        :meth:`ClusterConfiguration.covered_peers` returns — are memoised.
        """
        cache_key = covered_peers if isinstance(covered_peers, frozenset) else None
        if cache_key is not None:
            cached = self._indices_cache.get(cache_key)
            if cached is not None:
                return cached
        index_of = self._index_of
        indices = np.unique(
            np.fromiter(
                (index_of[other] for other in covered_peers if other in index_of),
                dtype=np.intp,
            )
        )
        if cache_key is not None:
            if len(self._indices_cache) >= self._INDICES_CACHE_LIMIT:
                self._indices_cache.clear()
            self._indices_cache[cache_key] = indices
        return indices

    def total_weight(self, peer_id: PeerId) -> float:
        """Total weighted recall available to *peer_id* (joining every cluster)."""
        return float(self._local[self.index_of(peer_id)].sum())

    def covered_weight(self, peer_id: PeerId, covered_peers: Iterable[PeerId]) -> float:
        """Weighted recall that *peer_id* obtains from the peers in *covered_peers*."""
        row = self._local[self.index_of(peer_id)]
        indices = self.covered_indices(covered_peers)
        if indices.size == 0:
            return 0.0
        return float(row[indices].sum())

    def recall_loss(self, peer_id: PeerId, covered_peers: Iterable[PeerId]) -> float:
        """Weighted recall lost by not reaching peers outside *covered_peers*.

        This equals the second term of the individual cost (Eq. 1) for the
        strategy whose covered peer set is *covered_peers*.
        """
        return self.total_weight(peer_id) - self.covered_weight(peer_id, covered_peers)

    def global_recall_loss(self, peer_id: PeerId, covered_peers: Iterable[PeerId]) -> float:
        """Globally-weighted recall loss for *peer_id* (workload-cost weighting)."""
        row = self._global[self.index_of(peer_id)]
        total = float(row.sum())
        indices = self.covered_indices(covered_peers)
        covered = float(row[indices].sum()) if indices.size else 0.0
        return total - covered

    def loss_matrix_for_clusters(self, membership: np.ndarray) -> np.ndarray:
        """Vectorised recall loss of every peer against every cluster.

        Parameters
        ----------
        membership:
            A ``(|P|, |C|)`` 0/1 matrix whose entry ``[j, k]`` is 1 when peer
            ``j`` belongs to cluster ``k``.

        Returns
        -------
        numpy.ndarray
            A ``(|P|, |C|)`` matrix whose entry ``[i, k]`` is the recall loss
            peer ``i`` would suffer if its strategy were exactly cluster ``k``
            (with peer ``i`` itself counted as covered — a peer always reaches
            its own content).
        """
        if membership.shape[0] != len(self._peer_order):
            raise ValueError(
                f"membership has {membership.shape[0]} rows, expected {len(self._peer_order)}"
            )
        covered = self._local @ membership
        own = np.diag(self._local)[:, None]
        # A peer that is not currently a member of cluster k would still reach
        # its own results after joining; add its own weight unless the cluster
        # already contains it (in which case the product already counted it).
        own_counted = membership * np.diag(self._local)[:, None]
        covered_adjusted = covered - own_counted + own
        totals = self._local.sum(axis=1, keepdims=True)
        return totals - covered_adjusted

    def __len__(self) -> int:
        return len(self._peer_order)

    def __repr__(self) -> str:
        return f"WeightedRecallMatrix(peers={len(self._peer_order)})"
