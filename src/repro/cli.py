"""Command-line interface for the reproduction.

Usage (after ``pip install -e .``)::

    python -m repro.cli discover   --scale quick --strategy selfish
    python -m repro.cli maintain   --scale quick --periods 3
    python -m repro.cli table1     --scale benchmark
    python -m repro.cli figure2    --scale quick
    python -m repro.cli report     --scale benchmark --output report.md

Every subcommand prints a plain-text table/series; ``report`` runs the whole
suite and renders the markdown that EXPERIMENTS.md is derived from.

The ``discover`` and ``maintain`` commands drive the :class:`repro.Simulation`
facade, and the ``--strategy``/``--initial``/``--scenario`` choices are read
from the component registries — a strategy registered through
:func:`repro.registry.register_strategy` before :func:`main` runs is
selectable by name.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

from repro.analysis.reporting import format_table
from repro.datasets.scenarios import SCENARIO_SAME_CATEGORY
from repro.dynamics.updates import update_workload_full
from repro.experiments.config import ExperimentConfig
from repro.experiments.figure1 import run_figure1
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.runner import render_report, run_all
from repro.errors import ReproError
from repro.experiments.table1 import run_table1
from repro.registry import initializer_registry, scenario_registry, strategy_registry
from repro.session import SessionConfig, Simulation

__all__ = ["main", "build_parser"]


def _add_scale_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        choices=ExperimentConfig.scales(),
        default="quick",
        help="experiment scale preset (default: quick)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser.

    Choices for strategies, scenarios and initial configurations come from
    the registries, so plugins registered before this call are selectable.
    """
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Recall-based cluster reformulation by selfish peers - reproduction CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    discover = subparsers.add_parser(
        "discover", help="form clusters from scratch with a relocation strategy"
    )
    _add_scale_argument(discover)
    discover.add_argument(
        "--strategy", choices=strategy_registry.names(), default="selfish"
    )
    discover.add_argument(
        "--scenario",
        choices=scenario_registry.names(),
        default=SCENARIO_SAME_CATEGORY,
        help="data/query scenario (default: same-category)",
    )
    discover.add_argument(
        "--initial",
        choices=initializer_registry.names(),
        default="singletons",
        help="initial configuration (paper's cases i-iv)",
    )

    maintain = subparsers.add_parser(
        "maintain", help="run periodic maintenance under workload drift"
    )
    _add_scale_argument(maintain)
    maintain.add_argument("--periods", type=int, default=3)
    maintain.add_argument(
        "--strategy", choices=strategy_registry.names(), default="selfish"
    )

    for name in ("table1", "figure1", "figure2", "figure3", "figure4"):
        sub = subparsers.add_parser(name, help=f"regenerate {name} of the paper")
        _add_scale_argument(sub)

    report = subparsers.add_parser("report", help="run the whole suite and render a report")
    _add_scale_argument(report)
    report.add_argument("--output", default=None, help="write the markdown report to this file")

    return parser


def _command_discover(arguments: argparse.Namespace) -> int:
    simulation = Simulation.from_config(
        SessionConfig(
            scenario=arguments.scenario,
            strategy=arguments.strategy,
            scale=arguments.scale,
            initial=arguments.initial,
        )
    )
    result = simulation.run()
    rows = [
        ("strategy", arguments.strategy),
        ("initial configuration", arguments.initial),
        ("converged", result.converged),
        ("rounds", result.rounds),
        ("clusters", result.cluster_count),
        ("social cost", round(result.final_social_cost, 3)),
        ("workload cost", round(result.final_workload_cost, 3)),
    ]
    if result.purity is not None:
        rows.append(("purity", round(result.purity, 3)))
    print(format_table(("metric", "value"), rows))
    return 0


def _command_maintain(arguments: argparse.Namespace) -> int:
    simulation = Simulation.from_config(
        SessionConfig(
            scenario=SCENARIO_SAME_CATEGORY,
            strategy=arguments.strategy,
            scale=arguments.scale,
            initial="category",
        )
    )
    data = simulation.data
    config = simulation.experiment_config
    categories = sorted({c for c in data.data_categories.values() if c})
    rng = random.Random(config.seed + 31)

    def drift(network, current_configuration):
        cluster_id = current_configuration.nonempty_clusters()[0]
        members = sorted(current_configuration.members(cluster_id), key=repr)
        victims = members[: max(1, len(members) // 4)]
        update_workload_full(network, victims, categories[-1], data.generator, rng=rng)

    updates = [None] + [drift] * max(0, arguments.periods - 1)
    result = simulation.run_maintenance(arguments.periods, updates=updates)
    rows = [
        (
            record.period,
            round(record.social_cost_before, 3),
            round(record.social_cost_after, 3),
            record.moves,
            record.rounds,
        )
        for record in result.periods
    ]
    print(format_table(("period", "SCost before", "SCost after", "moves", "rounds"), rows))
    return 0


def _command_experiment(arguments: argparse.Namespace) -> int:
    config = ExperimentConfig.from_scale(arguments.scale)
    runners = {
        "table1": lambda: run_table1(config).to_text(),
        "figure1": lambda: run_figure1(config).to_text(),
        "figure2": lambda: run_figure2(config).to_text(),
        "figure3": lambda: run_figure3(config).to_text(),
        "figure4": lambda: run_figure4(config).to_text(),
    }
    print(runners[arguments.command]())
    return 0


def _command_report(arguments: argparse.Namespace) -> int:
    config = ExperimentConfig.from_scale(arguments.scale)
    report = render_report(run_all(config), config=config)
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"report written to {arguments.output}")
    else:
        print(report)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    arguments = build_parser().parse_args(argv)
    commands = {
        "discover": _command_discover,
        "maintain": _command_maintain,
        "report": _command_report,
    }
    command = commands.get(arguments.command, _command_experiment)
    try:
        return command(arguments)
    except ReproError as error:
        # e.g. an incompatible scenario/initial combination ("uniform" has no
        # per-peer categories for the "category" initializer): report cleanly
        # instead of dumping a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
