"""Command-line interface for the reproduction.

Usage (after ``pip install -e .``)::

    python -m repro.cli discover   --scale quick --strategy selfish
    python -m repro.cli maintain   --scale quick --periods 3
    python -m repro.cli table1     --scale benchmark
    python -m repro.cli figure2    --scale quick
    python -m repro.cli report     --scale benchmark --output report.md

Every subcommand prints a plain-text table/series; ``report`` runs the whole
suite and renders the markdown that EXPERIMENTS.md is derived from.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

from repro.analysis.metrics import cluster_purity
from repro.analysis.reporting import format_table
from repro.datasets.scenarios import (
    SCENARIO_SAME_CATEGORY,
    build_scenario,
    category_configuration,
    initial_configuration,
)
from repro.dynamics.periodic import PeriodicMaintenanceLoop
from repro.dynamics.updates import update_workload_full
from repro.experiments.config import ExperimentConfig, build_strategy
from repro.experiments.figure1 import run_figure1
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.runner import render_report, run_all
from repro.experiments.table1 import run_table1
from repro.protocol.reformulation import ReformulationProtocol

__all__ = ["main", "build_parser"]

_SCALES = ("quick", "benchmark", "paper")


def _config_for(scale: str) -> ExperimentConfig:
    return getattr(ExperimentConfig, scale)()


def _add_scale_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        choices=_SCALES,
        default="quick",
        help="experiment scale preset (default: quick)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Recall-based cluster reformulation by selfish peers - reproduction CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    discover = subparsers.add_parser(
        "discover", help="form clusters from scratch with a relocation strategy"
    )
    _add_scale_argument(discover)
    discover.add_argument(
        "--strategy", choices=("selfish", "altruistic", "hybrid"), default="selfish"
    )
    discover.add_argument(
        "--initial",
        choices=("singletons", "random", "fewer", "more"),
        default="singletons",
        help="initial configuration (paper's cases i-iv)",
    )

    maintain = subparsers.add_parser(
        "maintain", help="run periodic maintenance under workload drift"
    )
    _add_scale_argument(maintain)
    maintain.add_argument("--periods", type=int, default=3)
    maintain.add_argument(
        "--strategy", choices=("selfish", "altruistic", "hybrid"), default="selfish"
    )

    for name in ("table1", "figure1", "figure2", "figure3", "figure4"):
        sub = subparsers.add_parser(name, help=f"regenerate {name} of the paper")
        _add_scale_argument(sub)

    report = subparsers.add_parser("report", help="run the whole suite and render a report")
    _add_scale_argument(report)
    report.add_argument("--output", default=None, help="write the markdown report to this file")

    return parser


def _command_discover(arguments: argparse.Namespace) -> int:
    config = _config_for(arguments.scale)
    data = build_scenario(SCENARIO_SAME_CATEGORY, config.scenario)
    configuration = initial_configuration(data, arguments.initial, seed=config.seed + 13)
    cost_model = data.network.cost_model(theta=config.theta(), alpha=config.alpha)
    protocol = ReformulationProtocol(
        cost_model, configuration, build_strategy(arguments.strategy)
    )
    result = protocol.run(max_rounds=config.max_rounds)
    rows = [
        ("strategy", arguments.strategy),
        ("initial configuration", arguments.initial),
        ("converged", result.converged and not result.cycle_detected),
        ("rounds", result.num_rounds),
        ("clusters", configuration.num_nonempty_clusters()),
        ("social cost", round(result.final_social_cost, 3)),
        ("workload cost", round(result.final_workload_cost, 3)),
        ("purity", round(cluster_purity(configuration, data.data_categories), 3)),
    ]
    print(format_table(("metric", "value"), rows))
    return 0


def _command_maintain(arguments: argparse.Namespace) -> int:
    config = _config_for(arguments.scale)
    data = build_scenario(SCENARIO_SAME_CATEGORY, config.scenario)
    configuration = category_configuration(data)
    loop = PeriodicMaintenanceLoop(
        data.network,
        configuration,
        build_strategy(arguments.strategy),
        alpha=config.alpha,
        theta=config.theta(),
        gain_threshold=config.maintenance_gain_threshold,
    )
    categories = sorted({c for c in data.data_categories.values() if c})
    rng = random.Random(config.seed + 31)

    def drift(network, current_configuration):
        cluster_id = current_configuration.nonempty_clusters()[0]
        members = sorted(current_configuration.members(cluster_id), key=repr)
        victims = members[: max(1, len(members) // 4)]
        update_workload_full(network, victims, categories[-1], data.generator, rng=rng)

    for period in range(arguments.periods):
        loop.run_period(drift if period > 0 else None)
    rows = [
        (
            record.period,
            round(record.social_cost_before, 3),
            round(record.social_cost_after, 3),
            record.moves,
            record.rounds,
        )
        for record in loop.records
    ]
    print(format_table(("period", "SCost before", "SCost after", "moves", "rounds"), rows))
    return 0


def _command_experiment(arguments: argparse.Namespace) -> int:
    config = _config_for(arguments.scale)
    runners = {
        "table1": lambda: run_table1(config).to_text(),
        "figure1": lambda: run_figure1(config).to_text(),
        "figure2": lambda: run_figure2(config).to_text(),
        "figure3": lambda: run_figure3(config).to_text(),
        "figure4": lambda: run_figure4(config).to_text(),
    }
    print(runners[arguments.command]())
    return 0


def _command_report(arguments: argparse.Namespace) -> int:
    config = _config_for(arguments.scale)
    report = render_report(run_all(config), config=config)
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"report written to {arguments.output}")
    else:
        print(report)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    arguments = build_parser().parse_args(argv)
    if arguments.command == "discover":
        return _command_discover(arguments)
    if arguments.command == "maintain":
        return _command_maintain(arguments)
    if arguments.command == "report":
        return _command_report(arguments)
    return _command_experiment(arguments)


if __name__ == "__main__":
    sys.exit(main())
