"""Command-line interface for the reproduction.

Usage (after ``pip install -e .`` the ``repro`` entry point is equivalent)::

    repro discover   --scale quick --strategy selfish
    repro maintain   --scale quick --periods 3
    repro maintain   --scale quick --periods 5 \
                     --dynamics '{"model": "churn", "options": {"departures": 2}}'
    repro traffic    --scale quick --after discover --workload zipf \
                     --num-events 200000 --router probe-k --router-options '{"k": 3}'
    repro table1     --scale benchmark --workers 4
    repro figure2    --scale quick
    repro report     --scale benchmark --output report.md
    repro sweep      --scale quick --strategy selfish --strategy altruistic \
                     --replications 8 --workers 4 --output sweep.jsonl
    repro sweep      --spec sweep.json --executor chunked-streaming \
                     --executor-options '{"max_workers": 8, "window": 16}'
    repro sweep      --spec sweep.json --workers 8 --store .sweep-store
    repro sweep      --scale quick --runner maintain --replications 5 \
                     --runner-options '{"periods": 3}' \
                     --dynamics '{"model": "workload-full", "options": {"peer_fraction": 0.2}}' \
                     --dynamics '{"model": "workload-full", "options": {"peer_fraction": 0.6}}'
    repro sweep      --spec sweep.json --store /shared/store \
                     --executor distributed --executor-options '{"workers": 4}'
    repro sweep-worker --store /shared/store
    repro sweep      --status --store /shared/store
    repro sweep      --prune-store --store /shared/store

Every subcommand prints a plain-text table/series; ``report`` runs the whole
suite and renders the markdown that EXPERIMENTS.md is derived from, and
``sweep`` fans a :class:`repro.sweep.SweepSpec` (from a JSON file or flags)
out over a pluggable executor (``--executor serial`` / ``process-pool`` /
``chunked-streaming``; ``--workers N`` is shorthand for a process pool),
streaming per-task progress and printing mean/stddev/CI summaries over the
replications.  With ``--store DIR`` every finished task is persisted under
the sha256 of its canonical config and re-runs skip what is already stored —
killed or sharded sweeps resume instead of recomputing (``--no-resume``
forces re-execution).  Failed tasks are retried per ``--retries`` with
deterministic backoff and ``--task-timeout`` bounds each attempt; tasks that
exhaust the budget are quarantined and reported instead of aborting the
sweep.  ``--faults`` (or the ``REPRO_SWEEP_FAULTS`` environment variable)
injects a deterministic :class:`repro.sweep.faults.FaultPlan` for chaos
testing, and ``--verify-store`` audits a result store for corrupt entries
(``--purge-corrupt`` removes them).

The ``distributed`` executor turns the store into a work queue: the
coordinator enqueues the grid and any number of ``repro sweep-worker``
daemons — spawned by the coordinator or started by hand on hosts sharing the
store directory — claim tasks through atomic lease files (see
:mod:`repro.sweep.distributed`).  ``repro sweep --status --store DIR``
reports queue depth, live workers and quarantine counts without touching
anything, and ``--prune-store`` garbage-collects orphaned scenario pickles
and stale queue/lease files left behind by killed workers.

The ``discover`` and ``maintain`` commands drive the :class:`repro.Simulation`
facade, and the ``--strategy``/``--initial``/``--scenario`` choices are read
from the component registries — a strategy registered through
:func:`repro.registry.register_strategy` before :func:`main` runs is
selectable by name.  Exogenous change is declared with ``--dynamics``, a
:class:`repro.dynamics.DynamicsSchedule` spec in JSON (inline, or ``@file``
to read a file) naming registered drift models; on ``sweep`` the flag is
repeatable and forms a grid axis.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, List, Optional

from repro.analysis.reporting import format_table
from repro.datasets.scenarios import SCENARIO_SAME_CATEGORY
from repro.events import EventHooks
from repro.experiments.config import ExperimentConfig
from repro.experiments.figure1 import run_figure1
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.runner import render_report, run_all
from repro.errors import ConfigurationError, ReproError
from repro.experiments.table1 import run_table1
from repro.registry import (
    executor_registry,
    initializer_registry,
    router_registry,
    scenario_registry,
    strategy_registry,
    theta_registry,
    workload_registry,
)
from repro.session import SessionConfig, Simulation
from repro.sweep import ResultStore, SweepSpec, run_sweep
from repro.sweep.executors import executor_from_any
import repro.traffic  # noqa: F401  (registers the built-in traffic workloads)

__all__ = ["main", "build_parser"]

#: The default drift of ``repro maintain``: from period 1 on, a quarter of the
#: perturbed cluster's peers switch their whole workload to another category.
DEFAULT_MAINTAIN_DYNAMICS = {
    "model": "workload-full",
    "options": {"peer_fraction": 0.25},
    "start": 1,
}


def _parse_json_argument(flag: str, value: str) -> Any:
    """Parse a JSON CLI value (inline JSON, or ``@path`` to read a file)."""
    candidate = value.strip()
    try:
        if candidate.startswith("@"):
            with open(candidate[1:], "r", encoding="utf-8") as handle:
                return json.load(handle)
        return json.loads(candidate)
    except (OSError, json.JSONDecodeError) as error:
        raise ConfigurationError(
            f"{flag} expects inline JSON or @file, got {value!r} ({error})"
        ) from None


def _add_scale_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        choices=ExperimentConfig.scales(),
        default="quick",
        help="experiment scale preset (default: quick)",
    )


def _add_kernel_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--kernel-backend",
        choices=("auto", "dense", "labels"),
        default=None,
        help="best-response kernel backend (default: auto — labels at large "
        "populations, dense otherwise)",
    )
    parser.add_argument(
        "--kernel-dtype",
        choices=("float64", "float32"),
        default=None,
        help="kernel array dtype (float32 halves memory at ~1e-3 relative "
        "cost accuracy; default: float64)",
    )


def _add_workers_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process count for the sweep engine (default: 1, results identical)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser.

    Choices for strategies, scenarios and initial configurations come from
    the registries, so plugins registered before this call are selectable.
    """
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Recall-based cluster reformulation by selfish peers - reproduction CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    discover = subparsers.add_parser(
        "discover", help="form clusters from scratch with a relocation strategy"
    )
    _add_scale_argument(discover)
    discover.add_argument(
        "--strategy", choices=strategy_registry.names(), default="selfish"
    )
    discover.add_argument(
        "--scenario",
        choices=scenario_registry.names(),
        default=SCENARIO_SAME_CATEGORY,
        help="data/query scenario (default: same-category)",
    )
    discover.add_argument(
        "--initial",
        choices=initializer_registry.names(),
        default="singletons",
        help="initial configuration (paper's cases i-iv)",
    )
    _add_kernel_arguments(discover)

    maintain = subparsers.add_parser(
        "maintain", help="run periodic maintenance under declarative drift"
    )
    _add_scale_argument(maintain)
    maintain.add_argument("--periods", type=int, default=3)
    maintain.add_argument(
        "--strategy", choices=strategy_registry.names(), default="selfish"
    )
    maintain.add_argument(
        "--dynamics",
        default=None,
        help="drift schedule spec as inline JSON or @file "
        "(default: workload-full on a quarter of the first cluster from period 1)",
    )
    _add_kernel_arguments(maintain)

    traffic = subparsers.add_parser(
        "traffic",
        help="serve a query workload against the clustered overlay and "
        "report latency/hops/bandwidth/recall distributions",
    )
    _add_scale_argument(traffic)
    traffic.add_argument(
        "--scenario",
        choices=scenario_registry.names(),
        default=SCENARIO_SAME_CATEGORY,
        help="data/query scenario (default: same-category)",
    )
    traffic.add_argument(
        "--initial",
        choices=initializer_registry.names(),
        default="category",
        help="cluster configuration the traffic hits (default: category)",
    )
    traffic.add_argument(
        "--strategy",
        choices=strategy_registry.names(),
        default="selfish",
        help="relocation strategy for --after discover/maintain",
    )
    traffic.add_argument(
        "--after",
        choices=("none", "discover", "maintain"),
        default="none",
        help="shape the clustering first: run the protocol to quiescence "
        "(discover) or --periods maintenance periods (maintain)",
    )
    traffic.add_argument(
        "--periods", type=int, default=1, help="maintenance periods for --after maintain"
    )
    traffic.add_argument(
        "--router",
        choices=router_registry.names(),
        default=None,
        help="query router (default: broadcast)",
    )
    traffic.add_argument(
        "--router-options",
        default=None,
        help='JSON (or @file) router options, e.g. \'{"k": 3}\' for --router probe-k',
    )
    traffic.add_argument(
        "--workload",
        choices=workload_registry.names(),
        default="uniform",
        help="arrival-pattern generator (default: uniform)",
    )
    traffic.add_argument(
        "--workload-options",
        default=None,
        help="JSON (or @file) generator options, "
        'e.g. \'{"exponent": 1.4}\' for --workload zipf',
    )
    traffic.add_argument(
        "--num-events", type=int, default=100_000, help="query events to serve"
    )
    traffic.add_argument(
        "--horizon", type=float, default=1.0, help="simulated horizon in seconds"
    )
    traffic.add_argument(
        "--link",
        default=None,
        help="JSON (or @file) LinkModel fields, "
        'e.g. \'{"hop_latency_ms": 2.0, "query_bytes": 256}\'',
    )
    traffic.add_argument("--seed", type=int, default=None, help="traffic stream seed")

    for name in ("table1", "figure1", "figure2", "figure3", "figure4"):
        sub = subparsers.add_parser(name, help=f"regenerate {name} of the paper")
        _add_scale_argument(sub)
        _add_workers_argument(sub)

    report = subparsers.add_parser("report", help="run the whole suite and render a report")
    _add_scale_argument(report)
    _add_workers_argument(report)
    report.add_argument("--output", default=None, help="write the markdown report to this file")

    sweep = subparsers.add_parser(
        "sweep",
        help="fan a sweep (scenarios x initials x strategies x thetas x seeds) "
        "out over a process pool",
    )
    sweep.add_argument(
        "--spec",
        default=None,
        help="path to a SweepSpec JSON file; replaces the axis/seed/scale/runner "
        "flags (--workers, --output and --no-progress still apply)",
    )
    _add_scale_argument(sweep)
    _add_workers_argument(sweep)
    sweep.add_argument(
        "--scenario",
        action="append",
        choices=scenario_registry.names(),
        default=None,
        help="scenario axis; repeat the flag for several values",
    )
    sweep.add_argument(
        "--initial",
        action="append",
        choices=initializer_registry.names(),
        default=None,
        help="initial-configuration axis; repeatable",
    )
    sweep.add_argument(
        "--strategy",
        action="append",
        choices=strategy_registry.names(),
        default=None,
        help="strategy axis; repeatable",
    )
    sweep.add_argument(
        "--theta",
        action="append",
        choices=theta_registry.names(),
        default=None,
        help="theta function axis; repeatable",
    )
    sweep.add_argument(
        "--seeds",
        default=None,
        help="comma-separated explicit seeds (e.g. 7,11,13); "
        "mutually exclusive with --replications",
    )
    sweep.add_argument(
        "--replications",
        type=int,
        default=None,
        help="number of seeds to derive from --base-seed via SeedSequence.spawn",
    )
    sweep.add_argument(
        "--base-seed", type=int, default=7, help="master entropy for derived seed streams"
    )
    sweep.add_argument(
        "--runner",
        default="discover",
        help="registered sweep runner applied to every task (default: discover)",
    )
    sweep.add_argument(
        "--runner-options",
        default=None,
        help="JSON (or @file) options passed to the runner of every grid task, "
        'e.g. \'{"periods": 5}\' for --runner maintain',
    )
    sweep.add_argument(
        "--dynamics",
        action="append",
        default=None,
        help="drift schedule spec (inline JSON or @file) forming a grid axis; "
        "repeat the flag for several grid points",
    )
    sweep.add_argument(
        "--workload",
        action="append",
        default=None,
        help="traffic workload axis (generator name, or JSON merged into the "
        "task's traffic config); repeatable; use with --runner traffic",
    )
    sweep.add_argument(
        "--metrics",
        default=None,
        help="comma-separated summary metrics (RunResult fields or runner "
        "extras, e.g. latency_p95,bandwidth_p99,recall_mean)",
    )
    sweep.add_argument(
        "--executor",
        choices=executor_registry.names(),
        default=None,
        help="sweep executor backend (overrides --workers); "
        "default: serial, or process-pool when --workers > 1",
    )
    sweep.add_argument(
        "--executor-options",
        default=None,
        help="JSON (or @file) options for --executor, "
        'e.g. \'{"max_workers": 4, "window": 8}\' for chunked-streaming',
    )
    sweep.add_argument(
        "--store",
        default=None,
        help="content-addressed result store directory: finished tasks are "
        "persisted by config hash and already-stored tasks are skipped on "
        "re-runs (resume)",
    )
    sweep.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="with --store: skip tasks whose results are already stored "
        "(--no-resume re-executes everything, still persisting)",
    )
    sweep.add_argument(
        "--retries",
        type=int,
        default=None,
        help="re-run a failed or timed-out task up to N extra times with "
        "deterministic backoff before quarantining it (default: the spec's "
        "retries field, or 0)",
    )
    sweep.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help="per-attempt wall-clock budget in seconds, enforced worker-side; "
        "a timed-out attempt counts as a failure (default: the spec's "
        "task_timeout field, or unlimited)",
    )
    sweep.add_argument(
        "--faults",
        default=None,
        help="deterministic chaos plan as inline JSON or @file "
        '(e.g. \'{"rules": [{"fault": "worker-kill", "index": 2}]}\'); '
        "overrides the REPRO_SWEEP_FAULTS environment variable",
    )
    sweep.add_argument(
        "--verify-store",
        action="store_true",
        help="with --store: audit every stored entry (readable JSON, hash "
        "matches the filename, result rebuilds) and report corrupt ones "
        "instead of running the sweep",
    )
    sweep.add_argument(
        "--purge-corrupt",
        action="store_true",
        help="with --verify-store: delete the corrupt entries so the next "
        "resume re-executes them",
    )
    sweep.add_argument(
        "--status",
        action="store_true",
        help="with --store: report queue depth (pending/claimed/done), live "
        "workers and quarantined counts instead of running a sweep; "
        "read-only",
    )
    sweep.add_argument(
        "--prune-store",
        action="store_true",
        help="with --store: garbage-collect orphaned scenario pickles and "
        "stale queue/lease/worker files left behind by killed workers "
        "(results and quarantine records are never touched)",
    )
    sweep.add_argument(
        "--stale-after",
        type=float,
        default=1800.0,
        help="with --prune-store: age in seconds before leases, failure "
        "records, worker files and temp files count as stale "
        "(default: 1800)",
    )
    sweep.add_argument(
        "--lease-timeout",
        type=float,
        default=None,
        help="with --status: heartbeat age in seconds before a lease or "
        "worker counts as expired (default: 30)",
    )
    sweep.add_argument(
        "--output", default=None, help="persist the sweep as JSONL to this file"
    )
    sweep.add_argument(
        "--no-progress", action="store_true", help="do not stream per-task progress lines"
    )

    worker = subparsers.add_parser(
        "sweep-worker",
        help="run a distributed-sweep worker daemon against a shared store: "
        "claim queued tasks through atomic leases, execute them under the "
        "coordinator's published retry/timeout policy, and write results "
        "into the store until stopped",
    )
    worker.add_argument(
        "--store",
        required=True,
        help="the shared result-store directory whose queue/ tier to drain",
    )
    worker.add_argument(
        "--worker-id",
        default=None,
        help="stable worker identity for leases and heartbeats "
        "(default: <hostname>-<pid>)",
    )
    worker.add_argument(
        "--poll-interval",
        type=float,
        default=0.2,
        help="seconds to sleep between claim attempts when the queue is "
        "empty (default: 0.2)",
    )
    worker.add_argument(
        "--lease-timeout",
        type=float,
        default=None,
        help="lease heartbeat budget in seconds; renewals happen at a "
        "fraction of it (default: 30, or the coordinator's published value)",
    )
    worker.add_argument(
        "--drain",
        action="store_true",
        help="exit once the queue is empty instead of polling forever",
    )
    worker.add_argument(
        "--max-tasks",
        type=int,
        default=None,
        help="exit after executing this many tasks (default: unlimited)",
    )

    return parser


def _command_discover(arguments: argparse.Namespace) -> int:
    simulation = Simulation.from_config(
        SessionConfig(
            scenario=arguments.scenario,
            strategy=arguments.strategy,
            scale=arguments.scale,
            initial=arguments.initial,
            kernel_backend=arguments.kernel_backend,
            kernel_dtype=arguments.kernel_dtype,
        )
    )
    result = simulation.run()
    rows = [
        ("strategy", arguments.strategy),
        ("initial configuration", arguments.initial),
        ("converged", result.converged),
        ("rounds", result.rounds),
        ("clusters", result.cluster_count),
        ("social cost", round(result.final_social_cost, 3)),
        ("workload cost", round(result.final_workload_cost, 3)),
    ]
    if result.purity is not None:
        rows.append(("purity", round(result.purity, 3)))
    print(format_table(("metric", "value"), rows))
    return 0


def _command_maintain(arguments: argparse.Namespace) -> int:
    if arguments.dynamics is not None:
        dynamics = _parse_json_argument("--dynamics", arguments.dynamics)
    else:
        dynamics = DEFAULT_MAINTAIN_DYNAMICS
    simulation = Simulation.from_config(
        SessionConfig(
            scenario=SCENARIO_SAME_CATEGORY,
            strategy=arguments.strategy,
            scale=arguments.scale,
            initial="category",
            dynamics=dynamics,
            kernel_backend=arguments.kernel_backend,
            kernel_dtype=arguments.kernel_dtype,
        )
    )
    result = simulation.run_maintenance(arguments.periods)
    rows = [
        (
            record.period,
            round(record.social_cost_before, 3),
            round(record.social_cost_after, 3),
            record.moves,
            record.rounds,
        )
        for record in result.periods
    ]
    print(format_table(("period", "SCost before", "SCost after", "moves", "rounds"), rows))
    return 0


def _command_traffic(arguments: argparse.Namespace) -> int:
    workload_options = (
        _parse_json_argument("--workload-options", arguments.workload_options)
        if arguments.workload_options is not None
        else None
    )
    router_options = (
        _parse_json_argument("--router-options", arguments.router_options)
        if arguments.router_options is not None
        else {}
    )
    link = (
        _parse_json_argument("--link", arguments.link)
        if arguments.link is not None
        else None
    )
    traffic_settings = {
        "workload": arguments.workload,
        "num_events": arguments.num_events,
        "horizon": arguments.horizon,
    }
    if workload_options is not None:
        traffic_settings["workload_options"] = workload_options
    if link is not None:
        traffic_settings["link"] = link
    if arguments.seed is not None:
        traffic_settings["seed"] = arguments.seed
    simulation = Simulation.from_config(
        SessionConfig(
            scenario=arguments.scenario,
            strategy=arguments.strategy,
            scale=arguments.scale,
            initial=arguments.initial,
            router=arguments.router,
            router_options=dict(router_options),
            traffic=traffic_settings,
        )
    )
    if arguments.after == "discover":
        simulation.run()
    elif arguments.after == "maintain":
        simulation.run_maintenance(arguments.periods)
    simulation.run_traffic()
    report = simulation.last_traffic_report
    assert report is not None
    rows = [
        ("workload", report.workload),
        ("router", report.router),
        ("events", report.events),
        ("events / simulated second", round(report.qps, 1)),
        ("clusters reached (messages)", report.query_messages),
        ("result messages", report.result_messages),
        ("result items", report.result_items),
        ("total bandwidth (bytes)", int(report.total_bandwidth_bytes)),
        ("wall seconds", round(report.wall_seconds, 3)),
    ]
    print(format_table(("metric", "value"), rows))
    print()
    print(report.summary_table())
    return 0


def _command_experiment(arguments: argparse.Namespace) -> int:
    config = ExperimentConfig.from_scale(arguments.scale)
    workers = arguments.workers
    runners = {
        "table1": lambda: run_table1(config, workers=workers).to_text(),
        "figure1": lambda: run_figure1(config, workers=workers).to_text(),
        "figure2": lambda: run_figure2(config, workers=workers).to_text(),
        "figure3": lambda: run_figure3(config, workers=workers).to_text(),
        "figure4": lambda: run_figure4(config, workers=workers).to_text(),
    }
    print(runners[arguments.command]())
    return 0


def _command_report(arguments: argparse.Namespace) -> int:
    config = ExperimentConfig.from_scale(arguments.scale)
    report = render_report(run_all(config, workers=arguments.workers), config=config)
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"report written to {arguments.output}")
    else:
        print(report)
    return 0


def _sweep_spec_from_arguments(arguments: argparse.Namespace) -> SweepSpec:
    """A :class:`SweepSpec` from ``--spec file.json`` or from the axis flags."""
    if arguments.spec is not None:
        with open(arguments.spec, "r", encoding="utf-8") as handle:
            return SweepSpec.from_dict(json.load(handle))
    seeds = None
    if arguments.seeds:
        try:
            seeds = tuple(int(part) for part in arguments.seeds.split(",") if part.strip())
        except ValueError:
            raise ConfigurationError(
                f"--seeds must be comma-separated integers, got {arguments.seeds!r}"
            ) from None
    dynamics = tuple(
        _parse_json_argument("--dynamics", value) for value in (arguments.dynamics or ())
    )
    workloads = tuple(
        _parse_json_argument("--workload", value) if value.lstrip().startswith(("{", "@")) else value
        for value in (arguments.workload or ())
    )
    runner_options = (
        _parse_json_argument("--runner-options", arguments.runner_options)
        if arguments.runner_options is not None
        else {}
    )
    return SweepSpec(
        scenarios=tuple(arguments.scenario or ()),
        initials=tuple(arguments.initial or ()),
        strategies=tuple(arguments.strategy or ()),
        thetas=tuple(arguments.theta or ()),
        dynamics=dynamics,
        workloads=workloads,
        scale=arguments.scale,
        seeds=seeds,
        replications=arguments.replications if arguments.replications is not None else 1,
        base_seed=arguments.base_seed,
        runner=arguments.runner,
        runner_options=dict(runner_options),
    )


def _sweep_executor_from_arguments(arguments: argparse.Namespace):
    """The executor object for ``--executor`` / ``--executor-options`` / ``--workers``."""
    spec: Any = arguments.executor
    if arguments.executor_options is not None:
        if arguments.executor is None:
            raise ConfigurationError("--executor-options requires --executor")
        options = _parse_json_argument("--executor-options", arguments.executor_options)
        spec = {"name": arguments.executor, "options": options}
    return executor_from_any(spec, arguments.workers)


def _verify_store(arguments: argparse.Namespace, store: Optional[ResultStore]) -> int:
    """``repro sweep --verify-store``: audit the store instead of sweeping."""
    if store is None:
        raise ConfigurationError("--verify-store requires --store")
    hooks = EventHooks()
    if not arguments.no_progress:
        hooks.on_store_corrupt(
            lambda event: print(
                f"corrupt store entry {event.task_hash[:12]}: {event.reason}"
                f"{' (purged)' if event.purged else ''}"
            )
        )
    verification = store.verify(purge=arguments.purge_corrupt, hooks=hooks)
    print(
        f"store {str(store.root)!r}: {verification.checked} entries checked, "
        f"{len(verification.corrupt)} corrupt, {verification.purged} purged"
    )
    return 0 if verification.ok or arguments.purge_corrupt else 1


def _sweep_status(arguments: argparse.Namespace, store: Optional[ResultStore]) -> int:
    """``repro sweep --status``: read-only queue/worker/store snapshot."""
    from repro.sweep.queue import DEFAULT_LEASE_TIMEOUT, TaskQueue

    if store is None:
        raise ConfigurationError("--status requires --store")
    lease_timeout = (
        arguments.lease_timeout
        if arguments.lease_timeout is not None
        else DEFAULT_LEASE_TIMEOUT
    )
    status = TaskQueue.for_store(store, lease_timeout=lease_timeout).status(store)
    rows = [
        ("pending tasks", status.pending),
        ("claimed tasks", status.claimed),
        ("  of which expired leases", status.expired),
        ("unprocessed failure records", status.failure_records),
        ("stored results", status.stored),
        ("quarantined tasks", status.quarantined),
        ("workers registered", len(status.workers)),
        ("workers live", status.live_workers),
        ("stop requested", status.stop_requested),
    ]
    print(format_table(("metric", "value"), rows))
    for worker in status.workers:
        state = "live" if worker.live else "stale"
        print(f"worker {worker.worker_id}: {state} (heartbeat {worker.age:.1f}s ago)")
    return 0


def _prune_store(arguments: argparse.Namespace, store: Optional[ResultStore]) -> int:
    """``repro sweep --prune-store``: garbage-collect caches and queue debris."""
    if store is None:
        raise ConfigurationError("--prune-store requires --store")
    report = store.prune(stale_after=arguments.stale_after)
    print(
        f"store {str(store.root)!r}: pruned {report.removed} files "
        f"({report.scenarios_removed}/{report.scenarios_checked} scenario pickles, "
        f"{report.queue_files_removed} queue files, "
        f"{report.worker_files_removed} worker files, "
        f"{report.temp_files_removed} temp files)"
    )
    return 0


def _command_sweep(arguments: argparse.Namespace) -> int:
    store = ResultStore.from_any(arguments.store)
    if arguments.verify_store:
        return _verify_store(arguments, store)
    if arguments.status:
        return _sweep_status(arguments, store)
    if arguments.prune_store:
        return _prune_store(arguments, store)
    spec = _sweep_spec_from_arguments(arguments)
    executor = _sweep_executor_from_arguments(arguments)
    faults = (
        _parse_json_argument("--faults", arguments.faults)
        if arguments.faults is not None
        else None
    )
    hooks = EventHooks()
    if not arguments.no_progress:
        hooks.on_task_loaded(
            lambda event: print(
                f"[{event.completed}/{event.total}] {event.task.label()}: "
                f"loaded from store ({event.task_hash[:12]})"
            )
        )
        hooks.on_task_finished(
            lambda event: print(
                f"[{event.completed}/{event.total}] {event.task.label()}: "
                f"SCost={event.result.final_social_cost:.3f} "
                f"rounds={event.result.rounds} ({event.duration:.2f}s)"
            )
        )
        hooks.on_task_failed(
            lambda event: print(
                f"task {event.index} ({event.task.label()}) attempt "
                f"{event.attempt} failed: {event.error.get('type', 'Exception')}: "
                f"{event.error.get('message', '')}"
            )
        )
        hooks.on_task_retried(
            lambda event: print(
                f"task {event.index} ({event.task.label()}): retrying as "
                f"attempt {event.attempt} after {event.delay:.2f}s backoff"
            )
        )
        hooks.on_task_quarantined(
            lambda event: print(
                f"task {event.index} ({event.task.label()}): quarantined after "
                f"{event.failure.attempts} attempt"
                f"{'s' if event.failure.attempts != 1 else ''} "
                f"({event.failure.error_type}: {event.failure.message})"
            )
        )
        hooks.on_shm_degraded(
            lambda event: print(
                f"task {event.index}: shared-memory tier degraded for "
                f"scenario {event.scenario_key[:12]} (task still ran)"
            )
        )
        hooks.on_sweep_end(
            lambda event: print(
                f"sweep finished: {event.total} tasks "
                f"({event.executed} executed, {event.loaded} loaded"
                + (f", {event.quarantined} quarantined" if event.quarantined else "")
                + f") in {event.duration:.2f}s "
                f"({event.workers} worker{'s' if event.workers != 1 else ''}, "
                f"{event.executor})"
            )
        )
    result = run_sweep(
        spec,
        executor=executor,
        hooks=hooks,
        jsonl_path=arguments.output,
        store=store,
        resume=arguments.resume,
        retries=arguments.retries,
        task_timeout=arguments.task_timeout,
        faults=faults,
    )
    print()
    if arguments.metrics:
        metrics = tuple(
            part.strip() for part in arguments.metrics.split(",") if part.strip()
        )
        print(result.summary_table(metrics=metrics))
    else:
        print(result.summary_table())
    if result.failures:
        print(
            f"\n{len(result.failures)} task"
            f"{'s' if len(result.failures) != 1 else ''} quarantined: "
            + ", ".join(str(failure.index) for failure in result.failures)
        )
    if arguments.output:
        print(f"\nsweep persisted to {arguments.output}")
    if store is not None:
        print(f"store {str(store.root)!r}: {len(store)} stored results")
    return 0


def _command_sweep_worker(arguments: argparse.Namespace) -> int:
    """``repro sweep-worker``: a distributed-sweep worker daemon."""
    from repro.sweep.distributed import run_worker
    from repro.sweep.faults import mark_worker_process
    from repro.sweep.queue import DEFAULT_LEASE_TIMEOUT, TaskQueue

    store = ResultStore(arguments.store)
    lease_timeout = arguments.lease_timeout
    if lease_timeout is None:
        # Fall back to the coordinator's published policy, then the default.
        config = TaskQueue.for_store(store).read_config()
        try:
            lease_timeout = float(config.get("lease_timeout", DEFAULT_LEASE_TIMEOUT))
        except (TypeError, ValueError):
            lease_timeout = DEFAULT_LEASE_TIMEOUT
    # This process exists to run sweep tasks: injected worker-kill faults
    # take the real os._exit path here (in-process callers never do).
    mark_worker_process()
    executed = run_worker(
        store,
        worker_id=arguments.worker_id,
        poll_interval=arguments.poll_interval,
        drain=arguments.drain,
        max_tasks=arguments.max_tasks,
        lease_timeout=lease_timeout,
    )
    print(f"worker exiting: {executed} task{'s' if executed != 1 else ''} executed")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    arguments = build_parser().parse_args(argv)
    commands = {
        "discover": _command_discover,
        "maintain": _command_maintain,
        "traffic": _command_traffic,
        "report": _command_report,
        "sweep": _command_sweep,
        "sweep-worker": _command_sweep_worker,
    }
    command = commands.get(arguments.command, _command_experiment)
    try:
        return command(arguments)
    except ReproError as error:
        # e.g. an incompatible scenario/initial combination ("uniform" has no
        # per-peer categories for the "category" initializer): report cleanly
        # instead of dumping a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
