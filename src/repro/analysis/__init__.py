"""Analysis utilities: clustering metrics, convergence tracking, reporting."""

from repro.analysis.convergence import ConvergenceTracker, relative_change
from repro.analysis.metrics import (
    cluster_entropy,
    cluster_purity,
    cluster_size_distribution,
    rand_index,
)
from repro.analysis.reporting import (
    SummaryStats,
    format_markdown_table,
    format_series,
    format_table,
    summary_statistics,
)

__all__ = [
    "ConvergenceTracker",
    "relative_change",
    "cluster_purity",
    "cluster_entropy",
    "cluster_size_distribution",
    "rand_index",
    "format_table",
    "format_markdown_table",
    "format_series",
    "SummaryStats",
    "summary_statistics",
]
