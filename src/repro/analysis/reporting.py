"""Plain-text reporting helpers for tables, series and distributions.

The benchmark harness prints the rows and series the paper reports (Table 1
and Figures 1-4).  These helpers render them as aligned plain-text tables /
two-column series so the output is readable both on a terminal and in
``EXPERIMENTS.md``.  :class:`DistributionSummary` condenses a large sample
(e.g. the per-query latencies of a :class:`repro.traffic` run) into
percentiles plus a fixed-bin histogram, all JSON-safe.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

__all__ = [
    "format_table",
    "format_series",
    "format_markdown_table",
    "SummaryStats",
    "summary_statistics",
    "DistributionSummary",
    "distribution_summary",
]


def _stringify(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned plain-text table."""
    string_rows: List[List[str]] = [[_stringify(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in string_rows:
        for column, cell in enumerate(row):
            if column < len(widths):
                widths[column] = max(widths[column], len(cell))
            else:
                widths.append(len(cell))
    lines = []
    header_line = "  ".join(header.ljust(widths[column]) for column, header in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * widths[column] for column in range(len(headers))))
    for row in string_rows:
        lines.append(
            "  ".join(cell.ljust(widths[column]) for column, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_markdown_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a GitHub-flavoured markdown table (used to build EXPERIMENTS.md)."""
    lines = ["| " + " | ".join(str(header) for header in headers) + " |"]
    lines.append("|" + "|".join("---" for _header in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(_stringify(cell) for cell in row) + " |")
    return "\n".join(lines)


def format_series(name: str, series: Mapping[object, object]) -> str:
    """Render an x/y series (one figure curve) as two aligned columns."""
    rows = [(x, y) for x, y in series.items()]
    return f"{name}\n" + format_table(["x", "y"], rows)


@dataclass(frozen=True)
class SummaryStats:
    """Mean / spread summary of one metric over sweep replications."""

    count: int
    mean: float
    stddev: float
    ci_low: float
    ci_high: float

    @property
    def ci_half_width(self) -> float:
        """Half-width of the confidence interval around the mean."""
        return (self.ci_high - self.ci_low) / 2.0

    def as_sequence(self) -> Sequence[object]:
        """``(n, mean, stddev, ci_low, ci_high)`` for tabular rendering."""
        return (self.count, self.mean, self.stddev, self.ci_low, self.ci_high)


@dataclass(frozen=True)
class DistributionSummary:
    """Percentile/histogram condensation of one metric over many observations.

    Built by :func:`distribution_summary` from the raw per-event samples of a
    traffic run; only scalars and plain lists, so it serialises as-is.
    """

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float
    #: ``len(bin_counts) + 1`` bin edges spanning ``[minimum, maximum]``.
    bin_edges: Tuple[float, ...] = ()
    bin_counts: Tuple[int, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable mapping mirroring the dataclass fields."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "bin_edges": list(self.bin_edges),
            "bin_counts": list(self.bin_counts),
        }

    @classmethod
    def from_dict(cls, mapping: Mapping[str, Any]) -> "DistributionSummary":
        """Rebuild a summary from its :meth:`to_dict` form."""
        return cls(
            count=int(mapping["count"]),
            mean=float(mapping["mean"]),
            minimum=float(mapping["min"]),
            maximum=float(mapping["max"]),
            p50=float(mapping["p50"]),
            p95=float(mapping["p95"]),
            p99=float(mapping["p99"]),
            bin_edges=tuple(float(edge) for edge in mapping.get("bin_edges", ())),
            bin_counts=tuple(int(count) for count in mapping.get("bin_counts", ())),
        )

    def as_row(self) -> Sequence[object]:
        """``(n, mean, p50, p95, p99, max)`` for tabular rendering."""
        return (self.count, self.mean, self.p50, self.p95, self.p99, self.maximum)


def distribution_summary(values: Iterable[float], *, bins: int = 20) -> DistributionSummary:
    """Summarise a sample as mean, p50/p95/p99 percentiles and a histogram.

    Percentiles use numpy's default linear interpolation; the histogram has
    *bins* equal-width bins over ``[min, max]`` (a single degenerate bin when
    all values coincide).  Raises :class:`ValueError` on an empty sample.
    """
    import numpy as np

    data = np.asarray(
        values if isinstance(values, np.ndarray) else list(values), dtype=float
    ).ravel()
    if data.size == 0:
        raise ValueError("distribution_summary requires at least one value")
    if bins < 1:
        raise ValueError(f"bins must be at least 1, got {bins}")
    p50, p95, p99 = np.percentile(data, (50.0, 95.0, 99.0))
    try:
        counts, edges = np.histogram(data, bins=bins)
    except ValueError:
        # Near-constant data: the sample range is a few float ulps wide, so
        # the equal bin width underflows the float spacing and numpy refuses.
        # Treat it like the exactly-constant case numpy handles itself: widen
        # the range by ±0.5 around the (degenerate) sample.
        counts, edges = np.histogram(
            data, bins=bins, range=(float(data.min()) - 0.5, float(data.max()) + 0.5)
        )
    return DistributionSummary(
        count=int(data.size),
        mean=float(data.mean()),
        minimum=float(data.min()),
        maximum=float(data.max()),
        p50=float(p50),
        p95=float(p95),
        p99=float(p99),
        bin_edges=tuple(float(edge) for edge in edges),
        bin_counts=tuple(int(count) for count in counts),
    )


#: z quantile for a two-sided 95% normal confidence interval.
_Z_95 = 1.959963984540054


def summary_statistics(values: Iterable[float], *, confidence: float = 0.95) -> SummaryStats:
    """Mean, sample stddev and a normal-approximation confidence interval.

    The CI is ``mean ± z * stddev / sqrt(n)`` with the normal quantile (the
    sweeps this summarises run tens of replications, where the difference to
    the t-distribution is negligible and no SciPy dependency is needed).
    Only ``confidence=0.95`` is supported.
    """
    data = [float(value) for value in values]
    if not data:
        raise ValueError("summary_statistics requires at least one value")
    if confidence != 0.95:
        raise ValueError(f"only confidence=0.95 is supported, got {confidence}")
    count = len(data)
    mean = math.fsum(data) / count
    if count == 1:
        return SummaryStats(count=1, mean=mean, stddev=0.0, ci_low=mean, ci_high=mean)
    variance = math.fsum((value - mean) ** 2 for value in data) / (count - 1)
    stddev = math.sqrt(variance)
    half_width = _Z_95 * stddev / math.sqrt(count)
    return SummaryStats(
        count=count,
        mean=mean,
        stddev=stddev,
        ci_low=mean - half_width,
        ci_high=mean + half_width,
    )
