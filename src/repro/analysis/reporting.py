"""Plain-text reporting helpers for tables and series.

The benchmark harness prints the rows and series the paper reports (Table 1
and Figures 1-4).  These helpers render them as aligned plain-text tables /
two-column series so the output is readable both on a terminal and in
``EXPERIMENTS.md``.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass
from typing import List

__all__ = [
    "format_table",
    "format_series",
    "format_markdown_table",
    "SummaryStats",
    "summary_statistics",
]


def _stringify(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned plain-text table."""
    string_rows: List[List[str]] = [[_stringify(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in string_rows:
        for column, cell in enumerate(row):
            if column < len(widths):
                widths[column] = max(widths[column], len(cell))
            else:
                widths.append(len(cell))
    lines = []
    header_line = "  ".join(header.ljust(widths[column]) for column, header in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * widths[column] for column in range(len(headers))))
    for row in string_rows:
        lines.append(
            "  ".join(cell.ljust(widths[column]) for column, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_markdown_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a GitHub-flavoured markdown table (used to build EXPERIMENTS.md)."""
    lines = ["| " + " | ".join(str(header) for header in headers) + " |"]
    lines.append("|" + "|".join("---" for _header in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(_stringify(cell) for cell in row) + " |")
    return "\n".join(lines)


def format_series(name: str, series: Mapping[object, object]) -> str:
    """Render an x/y series (one figure curve) as two aligned columns."""
    rows = [(x, y) for x, y in series.items()]
    return f"{name}\n" + format_table(["x", "y"], rows)


@dataclass(frozen=True)
class SummaryStats:
    """Mean / spread summary of one metric over sweep replications."""

    count: int
    mean: float
    stddev: float
    ci_low: float
    ci_high: float

    @property
    def ci_half_width(self) -> float:
        """Half-width of the confidence interval around the mean."""
        return (self.ci_high - self.ci_low) / 2.0

    def as_sequence(self) -> Sequence[object]:
        """``(n, mean, stddev, ci_low, ci_high)`` for tabular rendering."""
        return (self.count, self.mean, self.stddev, self.ci_low, self.ci_high)


#: z quantile for a two-sided 95% normal confidence interval.
_Z_95 = 1.959963984540054


def summary_statistics(values: Iterable[float], *, confidence: float = 0.95) -> SummaryStats:
    """Mean, sample stddev and a normal-approximation confidence interval.

    The CI is ``mean ± z * stddev / sqrt(n)`` with the normal quantile (the
    sweeps this summarises run tens of replications, where the difference to
    the t-distribution is negligible and no SciPy dependency is needed).
    Only ``confidence=0.95`` is supported.
    """
    data = [float(value) for value in values]
    if not data:
        raise ValueError("summary_statistics requires at least one value")
    if confidence != 0.95:
        raise ValueError(f"only confidence=0.95 is supported, got {confidence}")
    count = len(data)
    mean = math.fsum(data) / count
    if count == 1:
        return SummaryStats(count=1, mean=mean, stddev=0.0, ci_low=mean, ci_high=mean)
    variance = math.fsum((value - mean) ** 2 for value in data) / (count - 1)
    stddev = math.sqrt(variance)
    half_width = _Z_95 * stddev / math.sqrt(count)
    return SummaryStats(
        count=count,
        mean=mean,
        stddev=stddev,
        ci_low=mean - half_width,
        ci_high=mean + half_width,
    )
