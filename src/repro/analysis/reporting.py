"""Plain-text reporting helpers for tables and series.

The benchmark harness prints the rows and series the paper reports (Table 1
and Figures 1-4).  These helpers render them as aligned plain-text tables /
two-column series so the output is readable both on a terminal and in
``EXPERIMENTS.md``.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import List

__all__ = ["format_table", "format_series", "format_markdown_table"]


def _stringify(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned plain-text table."""
    string_rows: List[List[str]] = [[_stringify(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in string_rows:
        for column, cell in enumerate(row):
            if column < len(widths):
                widths[column] = max(widths[column], len(cell))
            else:
                widths.append(len(cell))
    lines = []
    header_line = "  ".join(header.ljust(widths[column]) for column, header in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * widths[column] for column in range(len(headers))))
    for row in string_rows:
        lines.append(
            "  ".join(cell.ljust(widths[column]) for column, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_markdown_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a GitHub-flavoured markdown table (used to build EXPERIMENTS.md)."""
    lines = ["| " + " | ".join(str(header) for header in headers) + " |"]
    lines.append("|" + "|".join("---" for _header in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(_stringify(cell) for cell in row) + " |")
    return "\n".join(lines)


def format_series(name: str, series: Mapping[object, object]) -> str:
    """Render an x/y series (one figure curve) as two aligned columns."""
    rows = [(x, y) for x, y in series.items()]
    return f"{name}\n" + format_table(["x", "y"], rows)
