"""Cluster-quality metrics used by the experiment reports.

Besides the paper's own cost measures (social and workload cost, reported
normalised by the number of peers), the analysis layer computes standard
external clustering metrics against the ground-truth data categories of the
synthetic corpus: purity, entropy and the Rand index.  The algorithms never
see categories; these metrics only describe how well the recall-driven game
rediscovers the category structure (the paper's "cluster discovery"
observation in Section 4.1).
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Mapping
from typing import Dict, Optional

from repro.peers.configuration import ClusterConfiguration

__all__ = [
    "cluster_size_distribution",
    "cluster_purity",
    "cluster_entropy",
    "rand_index",
]

PeerId = Hashable
ClusterId = Hashable


def cluster_size_distribution(configuration: ClusterConfiguration) -> Dict[ClusterId, int]:
    """Sizes of all non-empty clusters."""
    return configuration.sizes()


def _label_counts_per_cluster(
    configuration: ClusterConfiguration, labels: Mapping[PeerId, Optional[str]]
) -> Dict[ClusterId, Dict[str, int]]:
    counts: Dict[ClusterId, Dict[str, int]] = {}
    for cluster_id in configuration.nonempty_clusters():
        cluster_counts: Dict[str, int] = {}
        for peer_id in configuration.members(cluster_id):
            label = labels.get(peer_id)
            if label is None:
                continue
            cluster_counts[label] = cluster_counts.get(label, 0) + 1
        counts[cluster_id] = cluster_counts
    return counts


def cluster_purity(
    configuration: ClusterConfiguration, labels: Mapping[PeerId, Optional[str]]
) -> float:
    """Weighted purity: fraction of peers that share their cluster's majority label.

    Peers without a label (scenario 3 has none) are ignored; returns 0.0 when
    no peer is labelled.
    """
    counts = _label_counts_per_cluster(configuration, labels)
    labelled = sum(sum(cluster_counts.values()) for cluster_counts in counts.values())
    if labelled == 0:
        return 0.0
    majority = sum(
        max(cluster_counts.values()) for cluster_counts in counts.values() if cluster_counts
    )
    return majority / labelled


def cluster_entropy(
    configuration: ClusterConfiguration, labels: Mapping[PeerId, Optional[str]]
) -> float:
    """Size-weighted average label entropy of the clusters (0 = perfectly pure)."""
    counts = _label_counts_per_cluster(configuration, labels)
    labelled = sum(sum(cluster_counts.values()) for cluster_counts in counts.values())
    if labelled == 0:
        return 0.0
    total_entropy = 0.0
    for cluster_counts in counts.values():
        cluster_total = sum(cluster_counts.values())
        if cluster_total == 0:
            continue
        entropy = 0.0
        for count in cluster_counts.values():
            probability = count / cluster_total
            entropy -= probability * math.log2(probability)
        total_entropy += (cluster_total / labelled) * entropy
    return total_entropy


def rand_index(
    configuration: ClusterConfiguration, labels: Mapping[PeerId, Optional[str]]
) -> float:
    """Rand index between the cluster partition and the label partition.

    Considers only labelled peers; returns 1.0 when fewer than two labelled
    peers exist (every partition of at most one element agrees with itself).
    """
    peers = [peer_id for peer_id in configuration.peer_ids() if labels.get(peer_id) is not None]
    if len(peers) < 2:
        return 1.0
    agreements = 0
    pairs = 0
    cluster_of = {peer_id: configuration.cluster_of(peer_id) for peer_id in peers}
    for index, left in enumerate(peers):
        for right in peers[index + 1 :]:
            pairs += 1
            same_cluster = cluster_of[left] == cluster_of[right]
            same_label = labels[left] == labels[right]
            if same_cluster == same_label:
                agreements += 1
    return agreements / pairs
