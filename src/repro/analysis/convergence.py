"""Convergence bookkeeping for protocol and dynamics runs.

The paper reports, per run, whether an equilibrium was reached and after how
many rounds.  :class:`ConvergenceTracker` watches a sequence of configuration
snapshots (or cost values) and classifies the run as converged, cycling, or
still moving; it is shared by the experiment drivers and by the tests that
assert convergence behaviour.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

__all__ = ["ConvergenceTracker", "relative_change"]


def relative_change(previous: float, current: float) -> float:
    """Relative change between two cost values (0 when both are 0)."""
    if previous == 0.0 and current == 0.0:
        return 0.0
    denominator = max(abs(previous), abs(current))
    return abs(current - previous) / denominator


class ConvergenceTracker:
    """Tracks configuration signatures and cost values across rounds."""

    def __init__(self, *, cost_tolerance: float = 1e-9) -> None:
        self.cost_tolerance = cost_tolerance
        self._signatures: List[Tuple] = []
        self._costs: List[float] = []
        self._cycle_start: Optional[int] = None

    def observe(self, signature: Tuple, cost: float) -> None:
        """Record the configuration *signature* and *cost* after one round."""
        if signature in self._signatures and self._cycle_start is None:
            self._cycle_start = self._signatures.index(signature)
        self._signatures.append(signature)
        self._costs.append(cost)

    @property
    def rounds_observed(self) -> int:
        """Number of observations recorded so far."""
        return len(self._signatures)

    @property
    def cycle_detected(self) -> bool:
        """``True`` when a configuration signature repeated."""
        return self._cycle_start is not None

    @property
    def cycle_length(self) -> Optional[int]:
        """Length of the detected cycle (``None`` when no cycle was seen)."""
        if self._cycle_start is None:
            return None
        return len(self._signatures) - 1 - self._cycle_start

    def is_stable(self, window: int = 2) -> bool:
        """``True`` when the last *window* observations have (numerically) equal cost."""
        if len(self._costs) < window:
            return False
        recent = self._costs[-window:]
        return all(
            relative_change(recent[index], recent[index + 1]) <= self.cost_tolerance
            for index in range(len(recent) - 1)
        )

    def cost_trace(self) -> List[float]:
        """The recorded cost values in observation order."""
        return list(self._costs)

    def __repr__(self) -> str:
        return (
            f"ConvergenceTracker(rounds={self.rounds_observed}, "
            f"cycle={self.cycle_detected})"
        )
