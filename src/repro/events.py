"""Observer/event hooks for protocol rounds and maintenance periods.

The reformulation protocol and the periodic maintenance loop publish three
events while they run:

* :data:`ROUND_END` — after every executed protocol round, with the round's
  :class:`~repro.protocol.rounds.RoundResult` and the costs of the resulting
  configuration;
* :data:`RELOCATION_GRANTED` — for every granted (and applied) relocation;
* :data:`PERIOD_END` — after every maintenance period, with its
  :class:`~repro.dynamics.periodic.PeriodRecord`;
* :data:`DRIFT_APPLIED` — for every exogenous drift a
  :class:`~repro.dynamics.schedule.DynamicsSchedule` applied at the start of
  a period, carrying the model's :class:`~repro.dynamics.models.DriftReport`.

The traffic simulator (:mod:`repro.traffic`) publishes two events while it
drains a query-event stream:

* :data:`QUERY_ROUTED` — after every routed *batch* of query events (the
  simulator is batched by design; per-event callbacks would dominate the
  run), with the batch's aggregate messages/results and its time window;
* :data:`TRAFFIC_SUMMARY` — once at the end of a run, carrying the final
  :class:`~repro.traffic.report.TrafficReport`.

The sweep engine (:mod:`repro.sweep`) publishes three more events from the
coordinating process while a sweep runs:

* :data:`TASK_STARTED` — when a task is submitted for execution (under
  ``workers > 1`` every task is submitted to the pool up front, so these
  arrive in a burst; it is not a worker-pickup signal);
* :data:`TASK_FINISHED` — when a task's result arrives (in completion order,
  which under a parallel executor need not be task order);
* :data:`TASK_SKIPPED` — when resume finds a task's content hash already in
  the result store and will not execute it;
* :data:`TASK_LOADED` — immediately after ``task_skipped``, carrying the
  stored :class:`~repro.session.result.RunResult` that replaces the run;
* :data:`SWEEP_END` — once, after every task completed, loaded or was
  quarantined.

The fault-tolerance layer (:mod:`repro.sweep.faults`) adds failure events:

* :data:`TASK_FAILED` — one execution attempt of a task failed (exception,
  worker-side timeout, or worker crash), with the structured error payload;
* :data:`TASK_RETRIED` — immediately after a ``task_failed`` whose task will
  be re-enqueued, with the attempt number the retry will run as and the
  deterministic backoff delay;
* :data:`TASK_QUARANTINED` — a task exhausted its retry budget and the sweep
  continues without it (the failure also lands in ``SweepResult.failures``);
* :data:`SHM_DEGRADED` — a task fell back from the shared-memory scenario
  tier to the ordinary per-worker build path (results are unaffected);
* :data:`STORE_CORRUPT` — ``ResultStore.verify()`` found an unreadable or
  hash-mismatched store entry;
* :data:`LEASE_RECLAIMED` — the distributed coordinator
  (:mod:`repro.sweep.distributed`) declared a worker dead (its lease
  heartbeat expired) and requeued or quarantined the claimed task; a
  matching ``task_failed`` (kind ``crash``) precedes it.

The executor event ordering contract (which executor emits what, when) is
documented in :mod:`repro.sweep.executors`.

Instrumentation (cost traces, convergence analysis, benchmark probes)
subscribes to these events instead of picking apart the post-hoc trace lists,
so it sees the run as it happens and works identically for discovery runs
and maintenance periods::

    hooks = EventHooks()
    hooks.on_round_end(lambda event: print(event.round_number, event.social_cost))
    protocol = ReformulationProtocol(cost_model, configuration, strategy, hooks=hooks)
    protocol.run()

Subscriber exceptions are not swallowed: observers are part of the caller's
code and a broken observer should fail loudly rather than silently corrupt
an experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List

if TYPE_CHECKING:  # imported for annotations only; avoids runtime cycles
    from repro.dynamics.models import DriftReport
    from repro.dynamics.periodic import PeriodRecord
    from repro.protocol.reformulation import ProtocolResult
    from repro.protocol.rounds import GrantedMove, RoundResult

__all__ = [
    "ROUND_END",
    "RELOCATION_GRANTED",
    "PERIOD_END",
    "DRIFT_APPLIED",
    "QUERY_ROUTED",
    "TRAFFIC_SUMMARY",
    "TASK_STARTED",
    "TASK_FINISHED",
    "TASK_SKIPPED",
    "TASK_LOADED",
    "TASK_FAILED",
    "TASK_RETRIED",
    "TASK_QUARANTINED",
    "SHM_DEGRADED",
    "STORE_CORRUPT",
    "LEASE_RECLAIMED",
    "SWEEP_END",
    "RoundEndEvent",
    "RelocationGrantedEvent",
    "PeriodEndEvent",
    "DriftAppliedEvent",
    "QueryRoutedEvent",
    "TrafficSummaryEvent",
    "TaskStartedEvent",
    "TaskFinishedEvent",
    "TaskSkippedEvent",
    "TaskLoadedEvent",
    "TaskFailedEvent",
    "TaskRetriedEvent",
    "TaskQuarantinedEvent",
    "ShmDegradedEvent",
    "StoreCorruptEvent",
    "LeaseReclaimedEvent",
    "SweepEndEvent",
    "EventHooks",
    "CostTraceRecorder",
]

ROUND_END = "round_end"
RELOCATION_GRANTED = "relocation_granted"
PERIOD_END = "period_end"
DRIFT_APPLIED = "drift_applied"
QUERY_ROUTED = "query_routed"
TRAFFIC_SUMMARY = "traffic_summary"
TASK_STARTED = "task_started"
TASK_FINISHED = "task_finished"
TASK_SKIPPED = "task_skipped"
TASK_LOADED = "task_loaded"
TASK_FAILED = "task_failed"
TASK_RETRIED = "task_retried"
TASK_QUARANTINED = "task_quarantined"
SHM_DEGRADED = "shm_degraded"
STORE_CORRUPT = "store_corrupt"
LEASE_RECLAIMED = "lease_reclaimed"
SWEEP_END = "sweep_end"

#: An event callback; receives the event dataclass as its only argument.
EventCallback = Callable[[Any], None]


@dataclass(frozen=True)
class RoundEndEvent:
    """Published after every executed protocol round."""

    round_number: int
    result: "RoundResult"
    social_cost: float
    workload_cost: float
    cluster_count: int


@dataclass(frozen=True)
class RelocationGrantedEvent:
    """Published for every relocation granted (and applied) during a round."""

    round_number: int
    move: "GrantedMove"


@dataclass(frozen=True)
class PeriodEndEvent:
    """Published after every maintenance period."""

    record: "PeriodRecord"
    protocol_result: "ProtocolResult"


@dataclass(frozen=True)
class DriftAppliedEvent:
    """Published for every drift a schedule applied at the start of a period."""

    period: int
    report: "DriftReport"


@dataclass(frozen=True)
class QueryRoutedEvent:
    """Published after the traffic simulator routed one batch of query events.

    The simulator resolves whole batches against the recall matrix, so this
    is the finest-grained signal it can emit without giving the vectorised
    hot path back to Python; ``events`` counts the queries in the batch.
    """

    batch_index: int
    events: int
    time_start: float
    time_end: float
    query_messages: int
    result_messages: int
    result_items: int


@dataclass(frozen=True)
class TrafficSummaryEvent:
    """Published once when a traffic run finished, with its final report."""

    report: Any  # a repro.traffic.report.TrafficReport (Any avoids a runtime cycle)


@dataclass(frozen=True)
class TaskStartedEvent:
    """Published when the sweep engine submits a task for execution.

    With ``workers > 1`` all tasks are submitted to the pool up front, so
    these events arrive in one burst before the first ``task_finished`` —
    they signal enqueueing, not a worker picking the task up.
    """

    index: int
    task: Any  # a repro.sweep.spec.SweepTask (Any avoids a runtime cycle)
    total: int
    #: Execution attempt this start is for (1 on the first run; retried and
    #: crash-requeued tasks emit one ``task_started`` per attempt).
    attempt: int = 1


@dataclass(frozen=True)
class TaskFinishedEvent:
    """Published when a sweep task's result arrives at the coordinator."""

    index: int
    task: Any
    result: Any  # the task's RunResult
    total: int
    completed: int
    duration: float  # worker-side wall-clock seconds for this task
    #: Attempt that produced the result (> 1 when the task was retried).
    attempt: int = 1


@dataclass(frozen=True)
class TaskSkippedEvent:
    """Published when resume found a task's hash in the store and skips it."""

    index: int
    task: Any  # a repro.sweep.spec.SweepTask
    total: int
    task_hash: str  # the task's sha256 content hash


@dataclass(frozen=True)
class TaskLoadedEvent:
    """Published when a skipped task's stored result is loaded in place of a run."""

    index: int
    task: Any
    result: Any  # the stored RunResult
    total: int
    completed: int
    task_hash: str
    duration: float  # worker seconds of the original run that produced the result


@dataclass(frozen=True)
class TaskFailedEvent:
    """Published when one execution attempt of a sweep task failed.

    ``error`` is the structured failure payload (``type``, ``message``,
    ``kind`` of ``exception``/``timeout``/``crash``, ``injected``,
    ``traceback``).  Whether the task will be re-enqueued is carried by
    ``will_retry``; a ``task_retried`` or ``task_quarantined`` event follows.
    """

    index: int
    task: Any  # a repro.sweep.spec.SweepTask
    total: int
    attempt: int
    error: Dict[str, Any]
    will_retry: bool


@dataclass(frozen=True)
class TaskRetriedEvent:
    """Published when a failed task is re-enqueued for another attempt."""

    index: int
    task: Any
    total: int
    #: Attempt number the retry will execute as.
    attempt: int
    #: Deterministic backoff seconds slept before the retry is submitted.
    delay: float


@dataclass(frozen=True)
class TaskQuarantinedEvent:
    """Published when a task exhausted its retry budget and was quarantined.

    The sweep completes without the task; ``failure`` is the terminal
    :class:`~repro.sweep.faults.TaskFailure` (also surfaced in
    ``SweepResult.failures`` and, when a store is attached, recorded under
    the task's canonical hash in the store's quarantine tier).
    """

    index: int
    task: Any
    total: int
    failure: Any  # a repro.sweep.faults.TaskFailure


@dataclass(frozen=True)
class ShmDegradedEvent:
    """Published when a task fell back from the shared-memory scenario tier.

    The task still ran (against a privately built scenario), so results are
    unaffected — this is an observability signal that the zero-copy path was
    lost for ``scenario_key``, e.g. because a segment was unlinked mid-sweep.
    """

    index: int
    task: Any
    scenario_key: str


@dataclass(frozen=True)
class LeaseReclaimedEvent:
    """Published when the distributed coordinator reclaimed an expired lease.

    The worker holding the claimed task stopped heartbeating for longer
    than the lease timeout; the attempt was charged one crash against
    ``RetryPolicy.crash_requeues`` and the task was requeued
    (``will_retry``) or quarantined.  If the worker was merely slow and
    still finishes, its result is byte-identical to the re-run's, so the
    reclaim is an observability signal, never a correctness one.
    """

    index: int
    task: Any  # a repro.sweep.spec.SweepTask
    total: int
    #: Attempt number the reclaimed lease was executing as.
    attempt: int
    #: Worker id that held the expired lease (``"unknown"`` when unreadable).
    worker: str
    #: Whether the task was requeued (``False`` = crash budget exhausted).
    will_retry: bool


@dataclass(frozen=True)
class StoreCorruptEvent:
    """Published by ``ResultStore.verify()`` for each corrupt store entry."""

    task_hash: str
    path: str
    reason: str
    #: Whether ``verify(purge=True)`` removed the entry.
    purged: bool = False


@dataclass(frozen=True)
class SweepEndEvent:
    """Published once after the last task of a sweep completed (or was loaded)."""

    total: int
    duration: float  # coordinator wall-clock seconds for the whole sweep
    workers: int
    #: Tasks actually executed this run (``total`` minus store loads).
    executed: int = 0
    #: Tasks whose results were loaded from the content-addressed store.
    loaded: int = 0
    #: ``describe()`` string of the executor that ran the sweep.
    executor: str = "serial"
    #: Tasks that exhausted their retry budget and have no result.
    quarantined: int = 0


class EventHooks:
    """A minimal synchronous publish/subscribe hub for simulation events."""

    def __init__(self) -> None:
        self._subscribers: Dict[str, List[EventCallback]] = {}

    def subscribe(self, event: str, callback: EventCallback) -> Callable[[], None]:
        """Register *callback* for *event*; returns an unsubscribe function."""
        callbacks = self._subscribers.setdefault(event, [])
        callbacks.append(callback)

        def unsubscribe() -> None:
            try:
                callbacks.remove(callback)
            except ValueError:
                pass  # already unsubscribed

        return unsubscribe

    # Convenience registrars for the three built-in events.

    def on_round_end(self, callback: EventCallback) -> Callable[[], None]:
        """Subscribe to :data:`ROUND_END` (receives a :class:`RoundEndEvent`)."""
        return self.subscribe(ROUND_END, callback)

    def on_relocation_granted(self, callback: EventCallback) -> Callable[[], None]:
        """Subscribe to :data:`RELOCATION_GRANTED` (receives a :class:`RelocationGrantedEvent`)."""
        return self.subscribe(RELOCATION_GRANTED, callback)

    def on_period_end(self, callback: EventCallback) -> Callable[[], None]:
        """Subscribe to :data:`PERIOD_END` (receives a :class:`PeriodEndEvent`)."""
        return self.subscribe(PERIOD_END, callback)

    def on_drift_applied(self, callback: EventCallback) -> Callable[[], None]:
        """Subscribe to :data:`DRIFT_APPLIED` (receives a :class:`DriftAppliedEvent`)."""
        return self.subscribe(DRIFT_APPLIED, callback)

    def on_query_routed(self, callback: EventCallback) -> Callable[[], None]:
        """Subscribe to :data:`QUERY_ROUTED` (receives a :class:`QueryRoutedEvent`)."""
        return self.subscribe(QUERY_ROUTED, callback)

    def on_traffic_summary(self, callback: EventCallback) -> Callable[[], None]:
        """Subscribe to :data:`TRAFFIC_SUMMARY` (receives a :class:`TrafficSummaryEvent`)."""
        return self.subscribe(TRAFFIC_SUMMARY, callback)

    def on_task_started(self, callback: EventCallback) -> Callable[[], None]:
        """Subscribe to :data:`TASK_STARTED` (receives a :class:`TaskStartedEvent`)."""
        return self.subscribe(TASK_STARTED, callback)

    def on_task_finished(self, callback: EventCallback) -> Callable[[], None]:
        """Subscribe to :data:`TASK_FINISHED` (receives a :class:`TaskFinishedEvent`)."""
        return self.subscribe(TASK_FINISHED, callback)

    def on_task_skipped(self, callback: EventCallback) -> Callable[[], None]:
        """Subscribe to :data:`TASK_SKIPPED` (receives a :class:`TaskSkippedEvent`)."""
        return self.subscribe(TASK_SKIPPED, callback)

    def on_task_loaded(self, callback: EventCallback) -> Callable[[], None]:
        """Subscribe to :data:`TASK_LOADED` (receives a :class:`TaskLoadedEvent`)."""
        return self.subscribe(TASK_LOADED, callback)

    def on_task_failed(self, callback: EventCallback) -> Callable[[], None]:
        """Subscribe to :data:`TASK_FAILED` (receives a :class:`TaskFailedEvent`)."""
        return self.subscribe(TASK_FAILED, callback)

    def on_task_retried(self, callback: EventCallback) -> Callable[[], None]:
        """Subscribe to :data:`TASK_RETRIED` (receives a :class:`TaskRetriedEvent`)."""
        return self.subscribe(TASK_RETRIED, callback)

    def on_task_quarantined(self, callback: EventCallback) -> Callable[[], None]:
        """Subscribe to :data:`TASK_QUARANTINED` (receives a :class:`TaskQuarantinedEvent`)."""
        return self.subscribe(TASK_QUARANTINED, callback)

    def on_shm_degraded(self, callback: EventCallback) -> Callable[[], None]:
        """Subscribe to :data:`SHM_DEGRADED` (receives a :class:`ShmDegradedEvent`)."""
        return self.subscribe(SHM_DEGRADED, callback)

    def on_store_corrupt(self, callback: EventCallback) -> Callable[[], None]:
        """Subscribe to :data:`STORE_CORRUPT` (receives a :class:`StoreCorruptEvent`)."""
        return self.subscribe(STORE_CORRUPT, callback)

    def on_lease_reclaimed(self, callback: EventCallback) -> Callable[[], None]:
        """Subscribe to :data:`LEASE_RECLAIMED` (receives a :class:`LeaseReclaimedEvent`)."""
        return self.subscribe(LEASE_RECLAIMED, callback)

    def on_sweep_end(self, callback: EventCallback) -> Callable[[], None]:
        """Subscribe to :data:`SWEEP_END` (receives a :class:`SweepEndEvent`)."""
        return self.subscribe(SWEEP_END, callback)

    def emit(self, event: str, payload: Any) -> None:
        """Deliver *payload* to every subscriber of *event*, in subscription order."""
        for callback in tuple(self._subscribers.get(event, ())):
            callback(payload)

    def subscriber_count(self, event: str) -> int:
        """Number of live subscriptions for *event*."""
        return len(self._subscribers.get(event, ()))

    def __repr__(self) -> str:
        counts = {event: len(callbacks) for event, callbacks in self._subscribers.items() if callbacks}
        return f"EventHooks(subscribers={counts})"


@dataclass
class CostTraceRecorder:
    """An observer that accumulates per-round cost traces from events.

    Equivalent to reading ``ProtocolResult``'s trace lists after the fact,
    but usable live (progress displays, convergence monitors) and across
    maintenance periods, where a fresh protocol result is produced per
    period::

        recorder = CostTraceRecorder()
        recorder.attach(hooks)
    """

    social_cost: List[float] = field(default_factory=list)
    workload_cost: List[float] = field(default_factory=list)
    cluster_count: List[int] = field(default_factory=list)
    moves: List["GrantedMove"] = field(default_factory=list)

    def attach(self, hooks: EventHooks) -> "CostTraceRecorder":
        """Subscribe this recorder to *hooks* and return it."""
        hooks.on_round_end(self._record_round)
        hooks.on_relocation_granted(self._record_move)
        return self

    def _record_round(self, event: RoundEndEvent) -> None:
        self.social_cost.append(event.social_cost)
        self.workload_cost.append(event.workload_cost)
        self.cluster_count.append(event.cluster_count)

    def _record_move(self, event: RelocationGrantedEvent) -> None:
        self.moves.append(event.move)
