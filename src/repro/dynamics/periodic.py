"""Periodic maintenance loop: observation periods interleaved with protocol runs.

The paper's relocation strategies are *periodic*: every period ``T`` each peer
observes where its results come from (and whom it serves), then the
reformulation protocol runs one maintenance pass.  :class:`PeriodicMaintenanceLoop`
drives that loop end-to-end:

1. optionally apply the period's exogenous changes (workload drift, content
   drift, churn) — declaratively through a
   :class:`~repro.dynamics.schedule.DynamicsSchedule` of registered drift
   models (each application publishes a ``drift_applied`` event), or through
   the deprecated raw-callback interface,
2. simulate the period's query traffic over the overlay (collecting the
   per-peer observations the strategies need),
3. rebuild the cost model against the updated network state,
4. run the reformulation protocol until it quiesces,
5. record the social/workload cost before and after maintenance.

The loop works with both the observation-driven ("observed") and the oracle
("exact") strategy modes; in the latter case the query simulation can be
skipped to save time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.theta import ThetaFunction
from repro.dynamics.schedule import DynamicsSchedule
from repro.events import (
    DRIFT_APPLIED,
    PERIOD_END,
    DriftAppliedEvent,
    EventHooks,
    PeriodEndEvent,
)
from repro.overlay.messages import MessageBus
from repro.overlay.routing import QueryRouter
from repro.overlay.simulator import OverlaySimulator
from repro.peers.configuration import ClusterConfiguration
from repro.peers.network import PeerNetwork
from repro.protocol.reformulation import ProtocolResult, ReformulationProtocol
from repro.strategies.base import RelocationStrategy

__all__ = ["PeriodRecord", "PeriodicMaintenanceLoop"]

#: Callback applying one period's exogenous changes.  It receives the network
#: and the configuration and may mutate both (e.g. apply updates, churn).
#: Deprecated in favour of registered drift models scheduled through a
#: :class:`~repro.dynamics.schedule.DynamicsSchedule` — callbacks cannot be
#: serialised, so sweeps cannot express them.
UpdateCallback = Callable[[PeerNetwork, ClusterConfiguration], None]


@dataclass
class PeriodRecord:
    """What happened during one maintenance period."""

    period: int
    social_cost_before: float
    social_cost_after: float
    workload_cost_after: float
    moves: int
    rounds: int
    converged: bool
    queries_routed: int = 0

    @property
    def improvement(self) -> float:
        """Reduction of the normalised social cost achieved by this period's maintenance."""
        return self.social_cost_before - self.social_cost_after


class PeriodicMaintenanceLoop:
    """Drives periods of (change, observation, maintenance) over a network."""

    def __init__(
        self,
        network: PeerNetwork,
        configuration: ClusterConfiguration,
        strategy: RelocationStrategy,
        *,
        alpha: float = 1.0,
        theta: Optional[ThetaFunction] = None,
        gain_threshold: float = 0.001,
        allow_cluster_creation: bool = False,
        restrict_to_nonempty: bool = True,
        max_rounds_per_period: int = 100,
        simulate_queries: Optional[bool] = None,
        router_factory: Optional[Callable[[PeerNetwork], QueryRouter]] = None,
        hooks: Optional[EventHooks] = None,
        schedule: Optional[DynamicsSchedule] = None,
        kernel_backend: Optional[str] = None,
        kernel_dtype: Optional[str] = None,
    ) -> None:
        self.network = network
        self.configuration = configuration
        self.strategy = strategy
        self.alpha = alpha
        self.theta = theta
        #: Kernel backend/dtype forwarded to every period's protocol run
        #: (``None`` -> automatic backend by population, float64).
        self.kernel_backend = kernel_backend
        self.kernel_dtype = kernel_dtype
        self.gain_threshold = gain_threshold
        self.allow_cluster_creation = allow_cluster_creation
        self.restrict_to_nonempty = restrict_to_nonempty
        self.max_rounds_per_period = max_rounds_per_period
        # Observation-driven strategies need the query simulation; oracle
        # strategies do not, unless explicitly requested.
        if simulate_queries is None:
            simulate_queries = getattr(strategy, "mode", "exact") == "observed"
        self.simulate_queries = simulate_queries
        self.router_factory = router_factory
        #: Event hub shared with the per-period protocol runs, so round and
        #: relocation events flow from maintenance too; ``period_end`` fires
        #: here after every period.
        self.hooks = hooks if hooks is not None else EventHooks()
        #: Declarative dynamics applied at the start of every period (one
        #: ``drift_applied`` event per applied model); ``None`` = no drift.
        #: The schedule must already be bound to the scenario data/seed
        #: (:meth:`DynamicsSchedule.bind`) — ``Simulation.run_maintenance``
        #: does this automatically.
        self.schedule = schedule
        self.records: List[PeriodRecord] = []
        self.bus = MessageBus()

    # -- internals ---------------------------------------------------------------

    def _cost_model(self):
        matrix_mode = "factored" if self.kernel_backend == "labels" else None
        return self.network.cost_model(
            theta=self.theta, alpha=self.alpha, matrix_mode=matrix_mode
        )

    def _run_observation(self) -> Optional[OverlaySimulator]:
        if not self.simulate_queries:
            return None
        router = self.router_factory(self.network) if self.router_factory else None
        simulator = OverlaySimulator(self.network, self.configuration, router=router, bus=self.bus)
        simulator.run_period()
        return simulator

    # -- public API ------------------------------------------------------------------

    def run_period(self, update: Optional[UpdateCallback] = None) -> PeriodRecord:
        """Run one full period: apply the scheduled drift (and *update*), observe, maintain, record."""
        period_index = len(self.records)
        if self.schedule is not None:
            reports = self.schedule.apply_period(
                self.network, self.configuration, period_index
            )
            for report in reports:
                self.hooks.emit(
                    DRIFT_APPLIED, DriftAppliedEvent(period=period_index, report=report)
                )
            if reports:
                self.network.invalidate()
        if update is not None:
            update(self.network, self.configuration)
            self.network.invalidate()

        simulator = self._run_observation()
        cost_model = self._cost_model()
        before = cost_model.social_cost(self.configuration, normalized=True)

        protocol = ReformulationProtocol(
            cost_model,
            self.configuration,
            self.strategy,
            gain_threshold=self.gain_threshold,
            allow_cluster_creation=self.allow_cluster_creation,
            restrict_to_nonempty=self.restrict_to_nonempty,
            bus=self.bus,
            hooks=self.hooks,
            kernel_backend=self.kernel_backend,
            kernel_dtype=self.kernel_dtype,
        )
        statistics = simulator.statistics if simulator is not None else None
        result: ProtocolResult = protocol.run(
            max_rounds=self.max_rounds_per_period, statistics=statistics
        )

        record = PeriodRecord(
            period=len(self.records),
            social_cost_before=before,
            social_cost_after=cost_model.social_cost(self.configuration, normalized=True),
            workload_cost_after=cost_model.workload_cost(self.configuration, normalized=True),
            moves=result.total_moves,
            rounds=result.num_rounds,
            converged=result.converged and not result.cycle_detected,
            queries_routed=0 if simulator is None else sum(
                stats.recall_tracker.queries_observed()
                for stats in simulator.statistics.values()
            ),
        )
        self.records.append(record)
        self.hooks.emit(PERIOD_END, PeriodEndEvent(record=record, protocol_result=result))
        return record

    def run(
        self,
        periods: int,
        *,
        updates: Optional[List[Optional[UpdateCallback]]] = None,
    ) -> List[PeriodRecord]:
        """Run *periods* consecutive periods.

        ``updates[i]`` (if given) is applied before period ``i`` — the
        deprecated raw-callback interface; prefer a declarative
        :class:`~repro.dynamics.schedule.DynamicsSchedule` passed to the
        constructor (callbacks cannot cross sweep process boundaries).
        """
        if periods < 0:
            raise ValueError(f"periods must be non-negative, got {periods}")
        if updates is not None and len(updates) < periods:
            raise ValueError("updates must provide one (possibly None) entry per period")
        for period in range(periods):
            update = updates[period] if updates is not None else None
            self.run_period(update)
        return list(self.records)

    def social_cost_trace(self) -> List[float]:
        """Normalised social cost after each completed period."""
        return [record.social_cost_after for record in self.records]

    def __repr__(self) -> str:
        return (
            f"PeriodicMaintenanceLoop(strategy={self.strategy!r}, "
            f"periods={len(self.records)})"
        )
