"""Peer churn: joins and departures.

Churn is one of the change sources the paper lists ("topology updates as
peers enter and leave the system").  The helpers keep the network and the
cluster configuration consistent: a departing peer is removed from both, a
joining peer is added to the network and placed either into a named cluster
or into the cluster that a quick selfish evaluation prefers.
"""

from __future__ import annotations

import random
from collections.abc import Hashable, Sequence
from typing import List, Optional

from repro.dynamics.updates import _validate_rng

from repro.core.costs import CostModel
from repro.errors import ConfigurationError, DatasetError
from repro.peers.configuration import ClusterConfiguration
from repro.peers.network import PeerNetwork
from repro.peers.peer import Peer

__all__ = ["remove_peers", "add_peer", "random_departures"]

PeerId = Hashable
ClusterId = Hashable


def remove_peers(
    network: PeerNetwork,
    configuration: ClusterConfiguration,
    peer_ids: Sequence[PeerId],
) -> List[Peer]:
    """Remove *peer_ids* from both the network and the configuration; return the peers."""
    removed: List[Peer] = []
    for peer_id in peer_ids:
        if peer_id in configuration:
            configuration.remove_peer(peer_id)
        removed.append(network.remove_peer(peer_id))
    return removed


def random_departures(
    network: PeerNetwork,
    configuration: ClusterConfiguration,
    count: int,
    *,
    rng: random.Random,
) -> List[Peer]:
    """Remove *count* uniformly random peers (a simple churn burst).

    The *rng* is mandatory: churn must be reproducible under the sweep
    engine's spawned seed streams, so no implicit randomness is allowed.
    """
    rng = _validate_rng(rng)
    if count < 0:
        raise DatasetError(f"count must be non-negative, got {count}")
    if count > len(network):
        raise DatasetError(
            f"cannot remove {count} peers from a network of {len(network)}"
        )
    victims = rng.sample(network.peer_ids(), count)
    return remove_peers(network, configuration, victims)


def add_peer(
    network: PeerNetwork,
    configuration: ClusterConfiguration,
    peer: Peer,
    *,
    cluster_id: Optional[ClusterId] = None,
    cost_model: Optional[CostModel] = None,
) -> ClusterId:
    """Add *peer* to the network and place it in a cluster.

    If *cluster_id* is given the peer joins that cluster; otherwise the peer
    joins the non-empty cluster a selfish evaluation prefers (requires a
    *cost_model* built over the network *after* the peer was added — one is
    constructed on the fly when not supplied).  Returns the chosen cluster.
    """
    network.add_peer(peer)
    if cluster_id is not None:
        configuration.assign(peer.peer_id, cluster_id)
        return cluster_id

    candidates = configuration.nonempty_clusters() or configuration.empty_clusters()
    if not candidates:
        raise ConfigurationError("the configuration has no cluster slot for the joining peer")
    model = cost_model if cost_model is not None else network.cost_model(use_matrix=False)
    best_cluster = min(
        candidates,
        key=lambda candidate: (
            model.prospective_pcost(peer.peer_id, candidate, configuration),
            repr(candidate),
        ),
    )
    configuration.assign(peer.peer_id, best_cluster)
    return best_cluster
